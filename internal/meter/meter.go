// Package meter provides resource metering for workload execution.
//
// Every ConfBench workload runs real Go code while recording its
// resource consumption in a Context: abstract CPU operations, bytes
// allocated and touched, I/O traffic, syscalls, and log lines. The
// machine model (internal/cpumodel) converts these counters into
// virtual time, and TEE backends (internal/tee) charge confidential-
// computing overheads on top of them. Metering keeps benchmark runs
// deterministic and fast while the work performed stays genuine.
package meter

import (
	"fmt"
	"sort"
	"sync"
)

// Counter identifies one metered resource dimension.
type Counter int

// Metered resource dimensions.
const (
	// CPUOps counts abstract arithmetic/logic operations executed.
	CPUOps Counter = iota + 1
	// FPOps counts floating-point operations (Whetstone-style work).
	FPOps
	// BytesAllocated counts heap bytes requested by the workload.
	BytesAllocated
	// BytesTouched counts bytes read or written in memory (working-set
	// pressure; drives TEE memory encryption/integrity charges).
	BytesTouched
	// IOReadBytes counts bytes read from storage devices.
	IOReadBytes
	// IOWriteBytes counts bytes written to storage devices.
	IOWriteBytes
	// NetBytes counts bytes moved over the (virtual) network.
	NetBytes
	// Syscalls counts kernel entries (each may become a TEE exit).
	Syscalls
	// ContextSwitches counts scheduler context switches.
	ContextSwitches
	// ProcessSpawns counts process (or process-like) creations.
	ProcessSpawns
	// LogLines counts emitted log lines (console I/O).
	LogLines
	// FileOps counts file-metadata operations (create/unlink/mkdir).
	FileOps
	// PageFaults counts first-touch page faults (RMP/TDX accept cost).
	PageFaults
)

var counterNames = map[Counter]string{
	CPUOps:          "cpu-ops",
	FPOps:           "fp-ops",
	BytesAllocated:  "bytes-allocated",
	BytesTouched:    "bytes-touched",
	IOReadBytes:     "io-read-bytes",
	IOWriteBytes:    "io-write-bytes",
	NetBytes:        "net-bytes",
	Syscalls:        "syscalls",
	ContextSwitches: "context-switches",
	ProcessSpawns:   "process-spawns",
	LogLines:        "log-lines",
	FileOps:         "file-ops",
	PageFaults:      "page-faults",
}

// String returns the canonical lowercase name of the counter.
func (c Counter) String() string {
	if s, ok := counterNames[c]; ok {
		return s
	}
	return fmt.Sprintf("counter(%d)", int(c))
}

// AllCounters returns every defined counter in a stable order.
func AllCounters() []Counter {
	out := make([]Counter, 0, len(counterNames))
	for c := range counterNames {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Context accumulates resource usage for a single workload execution.
// It is safe for concurrent use; workloads that fan out goroutines may
// share one Context.
type Context struct {
	mu     sync.Mutex
	counts map[Counter]uint64
}

// NewContext returns an empty metering context.
func NewContext() *Context {
	return &Context{counts: make(map[Counter]uint64, 16)}
}

// Add increments counter c by n. Negative increments are ignored.
func (m *Context) Add(c Counter, n int64) {
	if n <= 0 {
		return
	}
	m.mu.Lock()
	m.counts[c] += uint64(n)
	m.mu.Unlock()
}

// Get returns the current value of counter c.
func (m *Context) Get(c Counter) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counts[c]
}

// CPU records n abstract CPU operations.
func (m *Context) CPU(n int64) { m.Add(CPUOps, n) }

// FP records n floating-point operations.
func (m *Context) FP(n int64) { m.Add(FPOps, n) }

// Alloc records a heap allocation of n bytes. The bytes are also
// counted as touched, since Go zeroes allocations.
func (m *Context) Alloc(n int64) {
	m.Add(BytesAllocated, n)
	m.Add(BytesTouched, n)
}

// Touch records n bytes of memory traffic (reads or writes).
func (m *Context) Touch(n int64) { m.Add(BytesTouched, n) }

// ReadIO records an n-byte storage read plus the syscall driving it.
func (m *Context) ReadIO(n int64) {
	m.Add(IOReadBytes, n)
	m.Add(Syscalls, 1)
}

// WriteIO records an n-byte storage write plus the syscall driving it.
func (m *Context) WriteIO(n int64) {
	m.Add(IOWriteBytes, n)
	m.Add(Syscalls, 1)
}

// Syscall records n kernel entries.
func (m *Context) Syscall(n int64) { m.Add(Syscalls, n) }

// Log records n emitted log lines (each one write syscall).
func (m *Context) Log(n int64) {
	m.Add(LogLines, n)
	m.Add(Syscalls, n)
}

// FileOp records n file metadata operations (each one syscall).
func (m *Context) FileOp(n int64) {
	m.Add(FileOps, n)
	m.Add(Syscalls, n)
}

// Spawn records n process creations.
func (m *Context) Spawn(n int64) {
	m.Add(ProcessSpawns, n)
	m.Add(Syscalls, 3*n) // fork+exec+wait style triple
}

// Switch records n context switches.
func (m *Context) Switch(n int64) { m.Add(ContextSwitches, n) }

// Fault records n first-touch page faults.
func (m *Context) Fault(n int64) { m.Add(PageFaults, n) }

// Snapshot returns a copy of all counters.
func (m *Context) Snapshot() Usage {
	m.mu.Lock()
	defer m.mu.Unlock()
	u := make(Usage, len(m.counts))
	for c, v := range m.counts {
		u[c] = v
	}
	return u
}

// Reset zeroes all counters.
func (m *Context) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.counts = make(map[Counter]uint64, 16)
}

// Merge adds every counter of u into the context.
func (m *Context) Merge(u Usage) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for c, v := range u {
		m.counts[c] += v
	}
}

// Usage is an immutable snapshot of counter values.
type Usage map[Counter]uint64

// Get returns the value of counter c (0 when absent).
func (u Usage) Get(c Counter) uint64 { return u[c] }

// Add returns a new Usage holding the element-wise sum of u and v.
func (u Usage) Add(v Usage) Usage {
	out := make(Usage, len(u)+len(v))
	for c, x := range u {
		out[c] = x
	}
	for c, x := range v {
		out[c] += x
	}
	return out
}

// Scale returns a new Usage with every counter multiplied by f.
// Negative factors are treated as zero.
func (u Usage) Scale(f float64) Usage {
	if f < 0 {
		f = 0
	}
	out := make(Usage, len(u))
	for c, x := range u {
		out[c] = uint64(float64(x) * f)
	}
	return out
}

// String renders the non-zero counters in stable order.
func (u Usage) String() string {
	keys := make([]Counter, 0, len(u))
	for c := range u {
		if u[c] != 0 {
			keys = append(keys, c)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	s := ""
	for i, c := range keys {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s=%d", c, u[c])
	}
	return s
}
