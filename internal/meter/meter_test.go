package meter

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestCounterNames(t *testing.T) {
	for _, c := range AllCounters() {
		if c.String() == "" || c.String()[0] == 'c' && c.String() == "counter(0)" {
			t.Errorf("counter %d has no name", c)
		}
	}
	if got := Counter(999).String(); got != "counter(999)" {
		t.Errorf("unknown counter name = %q", got)
	}
}

func TestAllCountersSortedAndComplete(t *testing.T) {
	cs := AllCounters()
	if len(cs) != 13 {
		t.Fatalf("AllCounters returned %d counters, want 13", len(cs))
	}
	for i := 1; i < len(cs); i++ {
		if cs[i-1] >= cs[i] {
			t.Errorf("counters not strictly sorted at %d", i)
		}
	}
}

func TestAddAndGet(t *testing.T) {
	m := NewContext()
	m.Add(CPUOps, 10)
	m.Add(CPUOps, 5)
	if got := m.Get(CPUOps); got != 15 {
		t.Errorf("Get = %d, want 15", got)
	}
}

func TestNegativeAddIgnored(t *testing.T) {
	m := NewContext()
	m.Add(CPUOps, -5)
	m.Add(CPUOps, 0)
	if got := m.Get(CPUOps); got != 0 {
		t.Errorf("negative/zero adds should be ignored, got %d", got)
	}
}

func TestHelperMethods(t *testing.T) {
	m := NewContext()
	m.CPU(1)
	m.FP(2)
	m.Alloc(100)
	m.Touch(50)
	m.ReadIO(200)
	m.WriteIO(300)
	m.Syscall(4)
	m.Log(3)
	m.FileOp(2)
	m.Spawn(1)
	m.Switch(5)
	m.Fault(6)

	u := m.Snapshot()
	checks := map[Counter]uint64{
		CPUOps:          1,
		FPOps:           2,
		BytesAllocated:  100,
		BytesTouched:    150, // alloc also touches
		IOReadBytes:     200,
		IOWriteBytes:    300,
		LogLines:        3,
		FileOps:         2,
		ProcessSpawns:   1,
		ContextSwitches: 5,
		PageFaults:      6,
		// read + write + 4 explicit + 3 log + 2 fileop + 3 spawn = 14
		Syscalls: 14,
	}
	for c, want := range checks {
		if got := u.Get(c); got != want {
			t.Errorf("%s = %d, want %d", c, got, want)
		}
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	m := NewContext()
	m.CPU(1)
	u := m.Snapshot()
	m.CPU(100)
	if u.Get(CPUOps) != 1 {
		t.Error("snapshot mutated by later additions")
	}
}

func TestReset(t *testing.T) {
	m := NewContext()
	m.CPU(10)
	m.Reset()
	if m.Get(CPUOps) != 0 {
		t.Error("Reset did not zero counters")
	}
}

func TestMerge(t *testing.T) {
	m := NewContext()
	m.CPU(10)
	m.Merge(Usage{CPUOps: 5, FPOps: 7})
	if m.Get(CPUOps) != 15 || m.Get(FPOps) != 7 {
		t.Errorf("merge result cpu=%d fp=%d", m.Get(CPUOps), m.Get(FPOps))
	}
}

func TestConcurrentAdd(t *testing.T) {
	m := NewContext()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.CPU(1)
			}
		}()
	}
	wg.Wait()
	if got := m.Get(CPUOps); got != 8000 {
		t.Errorf("concurrent adds lost updates: %d, want 8000", got)
	}
}

func TestUsageAdd(t *testing.T) {
	a := Usage{CPUOps: 1, FPOps: 2}
	b := Usage{CPUOps: 10, Syscalls: 3}
	sum := a.Add(b)
	if sum.Get(CPUOps) != 11 || sum.Get(FPOps) != 2 || sum.Get(Syscalls) != 3 {
		t.Errorf("Add = %v", sum)
	}
	// Inputs untouched.
	if a.Get(CPUOps) != 1 || b.Get(CPUOps) != 10 {
		t.Error("Add mutated inputs")
	}
}

func TestUsageScale(t *testing.T) {
	u := Usage{CPUOps: 100}
	if got := u.Scale(2.5).Get(CPUOps); got != 250 {
		t.Errorf("Scale(2.5) = %d", got)
	}
	if got := u.Scale(-1).Get(CPUOps); got != 0 {
		t.Errorf("negative scale = %d, want 0", got)
	}
}

func TestUsageAddCommutative(t *testing.T) {
	f := func(a1, a2, b1, b2 uint32) bool {
		a := Usage{CPUOps: uint64(a1), FPOps: uint64(a2)}
		b := Usage{CPUOps: uint64(b1), Syscalls: uint64(b2)}
		ab, ba := a.Add(b), b.Add(a)
		for _, c := range AllCounters() {
			if ab.Get(c) != ba.Get(c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUsageString(t *testing.T) {
	u := Usage{CPUOps: 5, Syscalls: 2}
	s := u.String()
	if s != "cpu-ops=5 syscalls=2" {
		t.Errorf("String = %q", s)
	}
	if (Usage{}).String() != "" {
		t.Error("empty usage should render empty")
	}
}
