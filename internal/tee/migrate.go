package tee

import (
	"errors"
	"fmt"
	"time"
)

// Live-migration errors shared by the backends.
var (
	// ErrNotLive is returned when a guest offered for export is not
	// tracked as live on this backend — it was launched elsewhere or
	// already destroyed.
	ErrNotLive = errors.New("tee: guest not live on this backend")
	// ErrBadMigrationState is returned when a migration image's opaque
	// state does not decode as this backend's serialization.
	ErrBadMigrationState = errors.New("tee: undecodable migration state")
	// ErrMeasurementSize is returned when a migration image carries a
	// measurement of the wrong length for the platform.
	ErrMeasurementSize = errors.New("tee: bad measurement length")
)

// MigrationImage is a running guest's transferable state, captured by
// ExportLive on the source host and replayed by ImportLive on the
// destination. Unlike GuestImage (a reusable template any number of
// guests restore from), a MigrationImage describes one specific live
// guest mid-flight: its launch measurement travels in the clear so the
// destination can gate resume on re-verifying it, while State is the
// backend-private serialization of everything needed to rebuild the
// guest (TD attributes and page set, SNP policy and RMP donation
// shape, realm personalization and granule count).
type MigrationImage struct {
	// Kind is the TEE platform; imports are kind-checked like
	// restores.
	Kind Kind
	// MemoryMB is the guest memory size.
	MemoryMB int
	// Measurement is the launch measurement the destination re-derives
	// and verifies before resuming: MRTD for TDX, the launch digest
	// for SEV-SNP, the RIM for CCA.
	Measurement []byte
	// State is the backend-private serialized guest state. Only the
	// backend kind that produced it can decode it.
	State []byte
	// ExportCost is the source-side virtual cost of the capture,
	// amortized over the pre-copy phase while the source keeps
	// serving.
	ExportCost time.Duration
	// ResumeCost is the destination-side virtual blackout cost of
	// rebuilding and entering the guest — the dominant term of
	// migration downtime, priced like a warm restore (far below a
	// cold boot).
	ResumeCost time.Duration
}

// Validate checks that the image is importable on a backend of kind k.
func (img *MigrationImage) Validate(k Kind) error {
	if img == nil {
		return ErrNilImage
	}
	if img.Kind != k {
		return fmt.Errorf("%w: image is %q, backend is %q", ErrImageKind, img.Kind, k)
	}
	if len(img.Measurement) != MeasurementSize {
		return fmt.Errorf("%w: got %d bytes, want %d", ErrMeasurementSize,
			len(img.Measurement), MeasurementSize)
	}
	return nil
}

// MeasurementSize is the byte length of the launch measurements all
// three platforms carry (SHA-384: MRTD, SNP launch digest, CCA RIM).
const MeasurementSize = 48

// Migrator is implemented by backends that support live migration of
// running confidential guests. ExportLive captures a tracked guest's
// state without stopping it — the source keeps serving until the
// migration engine cuts traffic over — and ImportLive rebuilds a
// running guest from a verified image on the destination.
//
// The engine's attestation gate relies on ImportLive re-deriving the
// platform measurement from the imported state: re-exporting the
// imported guest must reproduce the original Measurement bit-for-bit,
// so a destination can prove the resumed guest matches what the
// source sealed.
type Migrator interface {
	ExportLive(g Guest) (*MigrationImage, error)
	ImportLive(img *MigrationImage, cfg GuestConfig) (Guest, error)
}
