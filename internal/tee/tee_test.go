package tee

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"confbench/internal/cpumodel"
	"confbench/internal/faultplane"
	"confbench/internal/meter"
)

func TestKindValidity(t *testing.T) {
	for _, k := range []Kind{KindNone, KindTDX, KindSEV, KindCCA} {
		if !k.Valid() {
			t.Errorf("%q should be valid", k)
		}
	}
	if Kind("sgx").Valid() {
		t.Error("sgx should be invalid")
	}
	if KindNone.Secure() {
		t.Error("none is not secure")
	}
	if !KindTDX.Secure() || !KindSEV.Secure() || !KindCCA.Secure() {
		t.Error("TEE kinds should be secure")
	}
}

func TestGuestConfigDefaults(t *testing.T) {
	c := GuestConfig{}.WithDefaults()
	if c.MemoryMB <= 0 || c.VCPUs <= 0 || c.Name == "" {
		t.Errorf("defaults not applied: %+v", c)
	}
	big := GuestConfig{MemoryMB: 1 << 20}.WithDefaults()
	if big.MemoryMB > 4096 {
		t.Errorf("memory not clamped: %d", big.MemoryMB)
	}
}

func testUsage() meter.Usage {
	return meter.Usage{
		meter.CPUOps:       1_000_000,
		meter.BytesTouched: 4 << 20,
		meter.IOReadBytes:  1 << 20,
		meter.Syscalls:     1000,
	}
}

func TestNormalCostModelIsIdentity(t *testing.T) {
	u := testUsage()
	host := cpumodel.XeonGold5515
	base := host.Cost(u)
	cm := NormalCostModel()
	cm.JitterStd = 0 // isolate the factors
	charge := cm.Apply(u, base, rand.New(rand.NewSource(1)))
	if charge.Total != base.Total() {
		t.Errorf("normal model changed cost: %v vs %v", charge.Total, base.Total())
	}
	if charge.Exits != 0 {
		t.Errorf("normal model produced %d exits", charge.Exits)
	}
}

func TestCostModelFactorsApply(t *testing.T) {
	u := meter.Usage{meter.IOReadBytes: 1 << 20}
	host := cpumodel.XeonGold5515
	base := host.Cost(u)
	cm := NormalCostModel()
	cm.IOReadFactor = 3
	cm.JitterStd = 0
	charge := cm.Apply(u, base, rand.New(rand.NewSource(1)))
	want := 3 * base.Total()
	if diff := charge.Total - want; diff < -time.Nanosecond || diff > time.Nanosecond {
		t.Errorf("io factor: got %v, want %v", charge.Total, want)
	}
}

func TestExitCharges(t *testing.T) {
	u := meter.Usage{meter.Syscalls: 1000, meter.ContextSwitches: 500}
	host := cpumodel.XeonGold5515
	base := host.Cost(u)
	cm := NormalCostModel()
	cm.JitterStd = 0
	cm.ExitNs = 10_000
	cm.ExitsPerSys = 0.5
	cm.ExitsPerSwitch = 1.0
	charge := cm.Apply(u, base, rand.New(rand.NewSource(1)))
	if charge.Exits != 1000 { // 500 from syscalls + 500 from switches
		t.Errorf("exits = %d, want 1000", charge.Exits)
	}
	wantExtra := time.Duration(1000 * 10_000)
	if got := charge.Total - base.Total(); got != wantExtra {
		t.Errorf("exit charge = %v, want %v", got, wantExtra)
	}
}

func TestPageAcceptCharges(t *testing.T) {
	u := meter.Usage{meter.PageFaults: 100}
	host := cpumodel.XeonGold5515
	base := host.Cost(u)
	cm := NormalCostModel()
	cm.JitterStd = 0
	cm.PageAcceptNs = 1000
	charge := cm.Apply(u, base, rand.New(rand.NewSource(1)))
	if got := charge.Total - base.Total(); got != 100*time.Microsecond/1 {
		t.Errorf("accept charge = %v", got)
	}
}

func TestJitterBounded(t *testing.T) {
	u := testUsage()
	host := cpumodel.XeonGold5515
	base := host.Cost(u)
	cm := NormalCostModel()
	cm.JitterStd = 0.05
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		charge := cm.Apply(u, base, rng)
		ratio := float64(charge.Total) / float64(base.Total())
		if ratio < 1-4*0.05-1e-9 || ratio > 1+4*0.05+1e-9 {
			t.Fatalf("jitter out of ±4σ bounds: %v", ratio)
		}
	}
}

func TestCacheBonusIsStablePerSignature(t *testing.T) {
	u := testUsage()
	host := cpumodel.XeonGold5515
	base := host.Cost(u)
	cm := CostModel{CPUFactor: 1, MemFactor: 1, CacheBonusProb: 1, CacheBonusMag: 0.2}
	cm = cm.WithSalt(42)
	rng := rand.New(rand.NewSource(1))
	first := cm.Apply(u, base, rng)
	second := cm.Apply(u, base, rng)
	if first.Total != second.Total {
		t.Errorf("bonus not stable: %v vs %v", first.Total, second.Total)
	}
	if first.Total >= base.Total() {
		t.Errorf("bonus did not discount: %v vs base %v", first.Total, base.Total())
	}
	// A different salt may select a different magnitude but the model
	// must stay deterministic for it too.
	other := cm.WithSalt(43)
	o1 := other.Apply(u, base, rng)
	o2 := other.Apply(u, base, rng)
	if o1.Total != o2.Total {
		t.Error("bonus not stable under different salt")
	}
}

func TestModelGuestLifecycle(t *testing.T) {
	g := NewModelGuest(ModelGuestConfig{
		IDPrefix: "t",
		Kind:     KindTDX,
		Secure:   true,
		Model:    NormalCostModel(),
		BootBase: time.Second,
		Seed:     1,
		Report:   func(_ context.Context, nonce []byte) ([]byte, error) { return append([]byte("ev:"), nonce...), nil },
	})
	if g.ID() == "" || g.Kind() != KindTDX || !g.Secure() {
		t.Errorf("guest metadata wrong: %s %s %v", g.ID(), g.Kind(), g.Secure())
	}
	if g.BootCost() < time.Second {
		t.Errorf("boot cost %v", g.BootCost())
	}
	ev, err := g.AttestationReport(context.Background(), []byte("n"))
	if err != nil || string(ev) != "ev:n" {
		t.Errorf("report = %q, %v", ev, err)
	}
	if err := g.Destroy(); err != nil {
		t.Fatal(err)
	}
	if !g.Destroyed() {
		t.Error("not marked destroyed")
	}
	if _, err := g.AttestationReport(context.Background(), []byte("n")); !errors.Is(err, ErrGuestDestroyed) {
		t.Errorf("want ErrGuestDestroyed, got %v", err)
	}
	if err := g.Destroy(); err != nil {
		t.Error("Destroy should be idempotent")
	}
}

func TestModelGuestNonSecureAttestation(t *testing.T) {
	g := NewModelGuest(ModelGuestConfig{IDPrefix: "n", Kind: KindNone, Model: NormalCostModel()})
	if _, err := g.AttestationReport(context.Background(), nil); !errors.Is(err, ErrNotSecure) {
		t.Errorf("want ErrNotSecure, got %v", err)
	}
}

func TestModelGuestNoAttestationHardware(t *testing.T) {
	g := NewModelGuest(ModelGuestConfig{IDPrefix: "r", Kind: KindCCA, Secure: true, Model: NormalCostModel()})
	if _, err := g.AttestationReport(context.Background(), nil); !errors.Is(err, ErrNoAttestation) {
		t.Errorf("want ErrNoAttestation, got %v", err)
	}
}

// TestModelGuestFaultDegradation: TEE-layer faults have no error
// channel — an injected fault at tee.transition or tee.bounce_io
// degrades the priced virtual time instead. A faulted guest must
// charge exactly its fault-free total plus the accumulated
// FaultDelay, and must label the charge with the fault kind.
func TestModelGuestFaultDegradation(t *testing.T) {
	// A model that produces exits (arming the transition point) for
	// the syscall-heavy usage below.
	cm := NormalCostModel()
	cm.JitterStd = 0
	cm.ExitNs = 10_000
	cm.ExitsPerSys = 1

	mkGuest := func(plane *faultplane.Plane) *ModelGuest {
		return NewModelGuest(ModelGuestConfig{
			IDPrefix: "chaos",
			Kind:     KindSEV,
			Secure:   true,
			Model:    cm,
			Seed:     11,
			Faults:   plane,
			Host:     "sev-snp-host",
		})
	}

	plane := faultplane.New(3)
	const slow = 5 * time.Millisecond
	if err := plane.Register(faultplane.Spec{
		Point:       faultplane.PointTEETransition,
		Kind:        faultplane.KindLatency,
		Host:        "sev-snp-host",
		Probability: 1,
		Latency:     slow,
	}); err != nil {
		t.Fatal(err)
	}
	if err := plane.Register(faultplane.Spec{
		Point:       faultplane.PointTEEBounceIO,
		Kind:        faultplane.KindSlowIO,
		Host:        "sev-snp-host",
		Probability: 1,
		Latency:     slow,
	}); err != nil {
		t.Fatal(err)
	}

	u := meter.Usage{meter.Syscalls: 1000, meter.IOReadBytes: 1 << 20}
	base := cpumodel.XeonGold5515.Cost(u)

	clean := mkGuest(nil).Price(u, base)
	if clean.Fault != "" || clean.FaultDelay != 0 {
		t.Fatalf("fault-free charge carries fault: %+v", clean)
	}

	faulted := mkGuest(plane).Price(u, base)
	if faulted.Fault != string(faultplane.KindLatency) {
		t.Errorf("fault label = %q, want %q (first injection wins)", faulted.Fault, faultplane.KindLatency)
	}
	// Both points matched with Probability 1, so both latencies stack.
	if faulted.FaultDelay != 2*slow {
		t.Errorf("fault delay = %v, want %v", faulted.FaultDelay, 2*slow)
	}
	if faulted.Total != clean.Total+faulted.FaultDelay {
		t.Errorf("degraded total = %v, want clean %v + delay %v", faulted.Total, clean.Total, faulted.FaultDelay)
	}
	if got := len(plane.History()); got != 2 {
		t.Errorf("injections recorded = %d, want 2", got)
	}

	// A host that does not match the filter prices fault-free.
	other := NewModelGuest(ModelGuestConfig{
		IDPrefix: "other",
		Kind:     KindSEV,
		Secure:   true,
		Model:    cm,
		Seed:     11,
		Faults:   plane,
		Host:     "sev-snp-host-2",
	})
	if ch := other.Price(u, base); ch.Fault != "" || ch.Total != clean.Total {
		t.Errorf("unmatched host degraded: %+v (clean total %v)", ch, clean.Total)
	}
}

func TestGuestIDsUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		id := NextGuestID("x")
		if seen[id] {
			t.Fatalf("duplicate guest id %s", id)
		}
		seen[id] = true
	}
}

type fakeBackend struct{ kind Kind }

func (f *fakeBackend) Kind() Kind                              { return f.kind }
func (f *fakeBackend) Name() string                            { return string(f.kind) }
func (f *fakeBackend) HostProfile() cpumodel.Profile           { return cpumodel.XeonGold5515 }
func (f *fakeBackend) Launch(GuestConfig) (Guest, error)       { return nil, nil }
func (f *fakeBackend) LaunchNormal(GuestConfig) (Guest, error) { return nil, nil }

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(&fakeBackend{kind: KindTDX}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(&fakeBackend{kind: KindSEV}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Lookup(KindTDX); err != nil {
		t.Error(err)
	}
	if _, err := r.Lookup(KindCCA); err == nil {
		t.Error("unregistered kind should error")
	}
	kinds := r.Kinds()
	if len(kinds) != 2 || kinds[0] != KindSEV || kinds[1] != KindTDX {
		t.Errorf("Kinds = %v", kinds)
	}
}

func TestRegistryRejectsInvalid(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(nil); err == nil {
		t.Error("nil backend should be rejected")
	}
	if err := r.Register(&fakeBackend{kind: KindNone}); err == nil {
		t.Error("none kind should be rejected")
	}
	if err := r.Register(&fakeBackend{kind: Kind("bogus")}); err == nil {
		t.Error("bogus kind should be rejected")
	}
}
