package cca

import (
	"fmt"
	"sync"
	"time"

	"confbench/internal/cpumodel"
	"confbench/internal/faultplane"
	"confbench/internal/obs"
	"confbench/internal/tee"
)

// Options configures the CCA backend.
type Options struct {
	// Host is the machine profile; defaults to cpumodel.FVPNeoverse,
	// the FVP simulator model.
	Host cpumodel.Profile
	// RMMVersion labels the realm management monitor build.
	RMMVersion string
	// Seed drives deterministic noise.
	Seed int64
	// Obs is the metrics registry the RMM and guests report to (nil =
	// the process-wide default).
	Obs *obs.Registry
	// Faults is the fault plane guests evaluate at the TEE injection
	// points (nil = fault-free).
	Faults *faultplane.Plane
}

// Backend implements tee.Backend for ARM CCA on the FVP simulator.
//
// Matching the paper's setup, *both* the realm and the "normal" VM run
// inside the simulator (two layers of abstraction), so LaunchNormal
// also exhibits elevated jitter, and ratios compare realm-in-FVP
// against normal-VM-in-FVP.
type Backend struct {
	host   cpumodel.Profile
	rmm    *RMM
	obsreg *obs.Registry
	faults *faultplane.Plane

	mu       sync.Mutex
	nextSeed int64
	nextPA   uint64
	// live maps running guest IDs to their migration handles — the
	// realm id plus the personalization value and granule count a
	// destination needs to rebuild the realm around the sealed RIM.
	live map[string]ccaLive
}

// ccaLive is the migration handle of one running realm.
type ccaLive struct {
	realmID uint64
	rpv     []byte
	pages   int
}

var (
	_ tee.Backend     = (*Backend)(nil)
	_ tee.Snapshotter = (*Backend)(nil)
	_ tee.Migrator    = (*Backend)(nil)
)

// NewBackend boots an FVP instance with an RMM loaded in the realm
// world.
func NewBackend(opts Options) (*Backend, error) {
	if opts.Host.Name == "" {
		opts.Host = cpumodel.FVPNeoverse
	}
	if err := opts.Host.Validate(); err != nil {
		return nil, err
	}
	rmm := NewRMM(opts.RMMVersion)
	if opts.Obs != nil {
		rmm.SetObsRegistry(opts.Obs)
	}
	return &Backend{
		host:     opts.Host,
		rmm:      rmm,
		obsreg:   opts.Obs,
		faults:   opts.Faults,
		nextSeed: opts.Seed + 1,
		nextPA:   GranuleSize, // skip granule 0
		live:     make(map[string]ccaLive),
	}, nil
}

// Kind implements tee.Backend.
func (b *Backend) Kind() tee.Kind { return tee.KindCCA }

// Name implements tee.Backend.
func (b *Backend) Name() string {
	return fmt.Sprintf("ARM CCA (%s, FVP simulator) on %s", b.rmm.Version(), b.host.Name)
}

// HostProfile implements tee.Backend.
func (b *Backend) HostProfile() cpumodel.Profile { return b.host }

// Monitor exposes the RMM for inspection in tests.
func (b *Backend) Monitor() *RMM { return b.rmm }

func (b *Backend) alloc(pages int) (base uint64, seed int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	base = b.nextPA
	b.nextPA += uint64(pages+1) * GranuleSize
	b.nextSeed++
	return base, b.nextSeed
}

// CostModel returns the realm cost model. The paper finds CCA's
// overheads dominated by the simulation stack: every world switch is
// expensive, I/O crosses two abstraction layers, and run-to-run
// variance is much higher than on the bare-metal TEEs (longer whiskers
// in Fig. 8). The DBMS suite — syscall- and I/O-heavy — reaches up to
// ~10× (§IV-C).
func (b *Backend) CostModel() tee.CostModel {
	return tee.CostModel{
		CPUFactor:      1.18,
		MemFactor:      1.48,
		AllocFactor:    1.90,
		IOReadFactor:   4.10,
		IOWriteFactor:  4.60,
		NetFactor:      3.80,
		LogFactor:      3.40,
		FileOpFactor:   4.20,
		CtxSwitchFac:   3.10,
		SpawnFactor:    2.60,
		SyscallFactor:  16.0,
		ExitNs:         26000,
		ExitsPerSys:    0.08,
		ExitsPerSwitch: 1.0,
		PageAcceptNs:   1300,
		StartupNs:      6.5e9,
		CacheBonusProb: 0.02,
		CacheBonusMag:  0.08,
		JitterStd:      0.085,
		// Realm-image reuse skips the measured data-granule build but
		// still pays the simulator for delegation replay; everything is
		// slower under the FVP, including restores.
		SnapshotPageNs: 1.5e6,
		RestoreBaseNs:  900e6,
		RestorePageNs:  0.50e6,
	}
}

// normalCostModel is the normal-VM-in-FVP model: no realm charges but
// visibly higher jitter than bare metal, since it also runs under the
// simulator.
func normalCostModel() tee.CostModel {
	cm := tee.NormalCostModel()
	cm.JitterStd = 0.045
	return cm
}

// bootBaseNs is the in-simulator VM boot cost.
const bootBaseNs = 9.5e9

// Launch implements tee.Backend: delegate granules, create the realm,
// populate it with measured data granules, and activate it.
func (b *Backend) Launch(cfg tee.GuestConfig) (tee.Guest, error) {
	cfg = cfg.WithDefaults()
	pages := cfg.MemoryMB // one granule per MiB stands in for the image
	base, seed := b.alloc(pages)
	if cfg.Seed != 0 {
		seed = cfg.Seed
	}

	realmID, err := b.rmm.RMIRealmCreate([]byte(cfg.Name))
	if err != nil {
		return nil, fmt.Errorf("cca launch: %w", err)
	}
	for i := 0; i < pages; i++ {
		pa := base + uint64(i)*GranuleSize
		if err := b.rmm.RMIGranuleDelegate(pa); err != nil {
			return nil, fmt.Errorf("cca launch: %w", err)
		}
		content := []byte(fmt.Sprintf("realm-image:%s:%d", cfg.Name, i))
		if err := b.rmm.RMIDataCreate(realmID, pa, content); err != nil {
			return nil, fmt.Errorf("cca launch: %w", err)
		}
	}
	if err := b.rmm.RMIRealmActivate(realmID); err != nil {
		return nil, fmt.Errorf("cca launch: %w", err)
	}
	rpv := make([]byte, len(cfg.Name))
	copy(rpv, cfg.Name)
	return b.guestForRealm(ccaLive{realmID: realmID, rpv: rpv, pages: pages}, cfg, seed, 0, false), nil
}

// forgetRealm drops the live-tracking entry of a destroyed realm.
func (b *Backend) forgetRealm(realmID uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for gid, h := range b.live {
		if h.realmID == realmID {
			delete(b.live, gid)
		}
	}
}

// guestForRealm wraps an active realm into a ModelGuest and tracks it
// live so ExportLive can find its migration handle.
//
// The FVP lacks the hardware support attestation requires (§IV-B: "We
// leave out CCA as the simulator lacks the required hardware
// support"), so no Report hook is set and AttestationReport returns
// tee.ErrNoAttestation — the migration gate verifies the RIM via
// RSI_MEASUREMENT_READ instead.
func (b *Backend) guestForRealm(h ccaLive, cfg tee.GuestConfig, seed int64, bootOverride time.Duration, restored bool) tee.Guest {
	rmm := b.rmm
	g := tee.NewModelGuest(tee.ModelGuestConfig{
		IDPrefix:         "realm",
		Kind:             tee.KindCCA,
		Secure:           true,
		Model:            b.CostModel(),
		BootBase:         bootBaseNs,
		BootCostOverride: bootOverride,
		Restored:         restored,
		Seed:             seed,
		Obs:              b.obsreg,
		Faults:           b.faults,
		Host:             cfg.Name,
		Destroy: func() error {
			b.forgetRealm(h.realmID)
			return rmm.RMIRealmDestroy(h.realmID)
		},
	})
	b.mu.Lock()
	b.live[g.ID()] = h
	b.mu.Unlock()
	return g
}

// realmImage is the backend-private payload of a CCA guest image: the
// sealed RIM and personalization value to import, and the granule count
// to re-delegate.
type realmImage struct {
	rim   [MeasurementSize]byte
	rpv   []byte
	pages int
}

// Snapshot implements tee.Snapshotter: one full measured realm build
// whose RIM is captured, then destroyed and its granules undelegated.
// Restores reuse the image instead of re-measuring.
func (b *Backend) Snapshot(cfg tee.GuestConfig) (*tee.GuestImage, error) {
	cfg = cfg.WithDefaults()
	pages := cfg.MemoryMB
	base, _ := b.alloc(pages)

	realmID, err := b.rmm.RMIRealmCreate([]byte(cfg.Name))
	if err != nil {
		return nil, fmt.Errorf("cca snapshot: %w", err)
	}
	for i := 0; i < pages; i++ {
		pa := base + uint64(i)*GranuleSize
		if err := b.rmm.RMIGranuleDelegate(pa); err != nil {
			return nil, fmt.Errorf("cca snapshot: %w", err)
		}
		content := []byte(fmt.Sprintf("realm-image:%s:%d", cfg.Name, i))
		if err := b.rmm.RMIDataCreate(realmID, pa, content); err != nil {
			return nil, fmt.Errorf("cca snapshot: %w", err)
		}
	}
	realm, err := b.rmm.RealmByID(realmID)
	if err != nil {
		return nil, fmt.Errorf("cca snapshot: %w", err)
	}
	rim := realm.RIM()
	// The template realm's only job was producing the RIM; tear it down
	// and return its granules to the normal world.
	if err := b.rmm.RMIRealmDestroy(realmID); err != nil {
		return nil, fmt.Errorf("cca snapshot: %w", err)
	}
	for i := 0; i < pages; i++ {
		pa := base + uint64(i)*GranuleSize
		if err := b.rmm.RMIGranuleUndelegate(pa); err != nil {
			return nil, fmt.Errorf("cca snapshot: %w", err)
		}
	}

	cm := b.CostModel()
	rpv := make([]byte, len(cfg.Name))
	copy(rpv, cfg.Name)
	return &tee.GuestImage{
		Kind:        tee.KindCCA,
		MemoryMB:    cfg.MemoryMB,
		SizeBytes:   int64(cfg.MemoryMB) << 20,
		CaptureCost: time.Duration(bootBaseNs) + cm.BootCost() + cm.SnapshotCost(pages),
		RestoreCost: cm.RestoreCost(pages),
		Payload:     &realmImage{rim: rim, rpv: rpv, pages: pages},
	}, nil
}

// Restore implements tee.Snapshotter: fresh granules are delegated to a
// realm created directly active with the image's sealed RIM — the
// measured data-granule build is skipped.
func (b *Backend) Restore(img *tee.GuestImage, cfg tee.GuestConfig) (tee.Guest, error) {
	if err := img.Validate(tee.KindCCA); err != nil {
		return nil, fmt.Errorf("cca restore: %w", err)
	}
	ri, ok := img.Payload.(*realmImage)
	if !ok {
		return nil, fmt.Errorf("cca restore: %w", tee.ErrImagePayload)
	}
	cfg = cfg.WithDefaults()
	base, seed := b.alloc(ri.pages)
	if cfg.Seed != 0 {
		seed = cfg.Seed
	}
	pas := make([]uint64, ri.pages)
	for i := range pas {
		pas[i] = base + uint64(i)*GranuleSize
	}
	realmID, err := b.rmm.RMIRealmImport(ri.rpv, ri.rim, pas)
	if err != nil {
		return nil, fmt.Errorf("cca restore: %w", err)
	}
	rpv := make([]byte, len(ri.rpv))
	copy(rpv, ri.rpv)
	return b.guestForRealm(ccaLive{realmID: realmID, rpv: rpv, pages: ri.pages}, cfg, seed, img.RestoreCost, true), nil
}

// LaunchNormal implements tee.Backend: a non-secure VM, still inside
// the FVP simulator.
func (b *Backend) LaunchNormal(cfg tee.GuestConfig) (tee.Guest, error) {
	cfg = cfg.WithDefaults()
	_, seed := b.alloc(0)
	if cfg.Seed != 0 {
		seed = cfg.Seed
	}
	return tee.NewModelGuest(tee.ModelGuestConfig{
		IDPrefix: "fvp-vm",
		Kind:     tee.KindNone,
		Secure:   false,
		Model:    normalCostModel(),
		BootBase: bootBaseNs,
		Seed:     seed,
		Obs:      b.obsreg,
	}), nil
}
