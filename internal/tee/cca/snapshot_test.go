package cca

import (
	"errors"
	"testing"

	"confbench/internal/tee"
)

func TestBackendSnapshotRestore(t *testing.T) {
	b, err := NewBackend(Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	cfg := tee.GuestConfig{Name: "runtime", MemoryMB: 8}

	img, err := b.Snapshot(cfg)
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if img.Kind != tee.KindCCA || img.MemoryMB != 8 {
		t.Fatalf("image identity: kind=%s mem=%d", img.Kind, img.MemoryMB)
	}
	// The template realm's granules went back to the normal world.
	if got := b.rmm.DelegatedGranules(); got != 0 {
		t.Fatalf("granules still delegated after snapshot: %d", got)
	}

	cold, err := b.Launch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cold.Destroy()
	warm, err := b.Restore(img, cfg)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	defer warm.Destroy()

	if got := warm.BootCost(); got != img.RestoreCost {
		t.Errorf("warm boot = %v, want restore cost %v", got, img.RestoreCost)
	}
	if cold.BootCost() < 3*warm.BootCost() {
		t.Errorf("cold boot %v not >= 3x warm boot %v", cold.BootCost(), warm.BootCost())
	}

	// The imported realm carries the image's sealed RIM unchanged.
	// (Unlike TDX/SEV, a cold launch's RIM differs: RMI_DATA_CREATE
	// extends over host granule addresses, which each launch allocates
	// afresh — image reuse is exactly what keeps it stable.)
	ri, ok := img.Payload.(*realmImage)
	if !ok {
		t.Fatalf("payload type %T", img.Payload)
	}
	// Realm IDs allocate in order: snapshot template=1 (destroyed),
	// cold launch=2, restore=3.
	realm, err := b.rmm.RealmByID(3)
	if err != nil {
		t.Fatalf("restored realm: %v", err)
	}
	if realm.State() != RealmActive {
		t.Errorf("restored realm state = %s, want active", realm.State())
	}
	if realm.RIM() != ri.rim {
		t.Error("restored realm RIM differs from the image")
	}
	if realm.GranuleCount() != ri.pages {
		t.Errorf("restored realm granules = %d, want %d", realm.GranuleCount(), ri.pages)
	}
}

func TestBackendRestoreRejectsForeignImage(t *testing.T) {
	b, err := NewBackend(Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	wrong := &tee.GuestImage{Kind: tee.KindTDX, MemoryMB: 8}
	if _, err := b.Restore(wrong, tee.GuestConfig{}); !errors.Is(err, tee.ErrImageKind) {
		t.Errorf("wrong kind: %v", err)
	}
	badPayload := &tee.GuestImage{Kind: tee.KindCCA, MemoryMB: 8, Payload: []byte("nope")}
	if _, err := b.Restore(badPayload, tee.GuestConfig{}); !errors.Is(err, tee.ErrImagePayload) {
		t.Errorf("bad payload: %v", err)
	}
}

func TestRMIRealmImportRejectsDelegatedGranules(t *testing.T) {
	m := NewRMM("")
	if err := m.RMIGranuleDelegate(GranuleSize); err != nil {
		t.Fatal(err)
	}
	var rim [MeasurementSize]byte
	if _, err := m.RMIRealmImport(nil, rim, []uint64{GranuleSize}); !errors.Is(err, ErrGranuleDelegated) {
		t.Errorf("import over delegated granule: %v", err)
	}
	if _, err := m.RMIRealmImport(nil, rim, []uint64{GranuleSize + 1}); err == nil {
		t.Error("import with unaligned granule succeeded")
	}
}
