// Package cca simulates the ARM Confidential Compute Architecture for
// ConfBench.
//
// CCA adds the realm and root worlds to TrustZone's normal and secure
// worlds. Confidential VMs (realms) and the Realm Management Monitor
// (RMM) live in the realm world: the host drives realm lifecycle
// through the Realm Management Interface (RMI) and realms request
// services — attestation, memory management — through the Realm
// Services Interface (RSI). This package models granule delegation,
// the realm state machine, and the Realm Initial Measurement (RIM).
//
// As in the paper, no CCA silicon exists: realms run inside a model of
// the ARM Fixed Virtual Platform (FVP) simulator (backend.go). That
// simulation layer is what produces CCA's large and noisy overheads,
// and — matching §IV-B — it lacks the hardware needed for attestation
// and for perf counters, so AttestationReport returns
// tee.ErrNoAttestation and monitoring falls back to a custom script
// path (internal/perfmon).
package cca

import (
	"crypto/sha512"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"confbench/internal/obs"
)

// GranuleSize is the delegation granularity (4 KiB granules).
const GranuleSize = 4096

// MeasurementSize is the RIM length (SHA-384 as in RMM spec usage).
const MeasurementSize = sha512.Size384

// RMM/RMI/RSI errors.
var (
	ErrGranuleDelegated   = errors.New("cca: granule already delegated")
	ErrGranuleUndelegated = errors.New("cca: granule not delegated")
	ErrGranuleInUse       = errors.New("cca: granule assigned to a realm")
	ErrRealmNotFound      = errors.New("cca: no such realm")
	ErrRealmState         = errors.New("cca: operation illegal in current realm state")
)

// RealmState is the lifecycle state of a realm.
type RealmState int

// Realm lifecycle states.
const (
	RealmNew RealmState = iota + 1
	RealmActive
	RealmDestroyed
)

// String names the state.
func (s RealmState) String() string {
	switch s {
	case RealmNew:
		return "new"
	case RealmActive:
		return "active"
	case RealmDestroyed:
		return "destroyed"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Realm is one confidential VM in the realm world.
type Realm struct {
	id    uint64
	state RealmState
	// rim is the Realm Initial Measurement, extended by each
	// RMI_DATA_CREATE before activation.
	rim [MeasurementSize]byte
	// rpv is the Realm Personalization Value.
	rpv [64]byte
	// granules holds the physical granules mapped into the realm.
	granules map[uint64]bool
	// rsiCalls counts RSI service requests from the realm.
	rsiCalls uint64
}

// ID returns the realm identifier.
func (r *Realm) ID() uint64 { return r.id }

// State returns the lifecycle state.
func (r *Realm) State() RealmState { return r.state }

// RIM returns the Realm Initial Measurement.
func (r *Realm) RIM() [MeasurementSize]byte { return r.rim }

// GranuleCount returns the number of granules mapped into the realm.
func (r *Realm) GranuleCount() int { return len(r.granules) }

// RSICalls returns the number of RSI calls issued by the realm.
func (r *Realm) RSICalls() uint64 { return r.rsiCalls }

type granule struct {
	delegated bool
	realmID   uint64 // 0 when delegated but unassigned
}

// RMM is the Realm Management Monitor: it owns stage-2 translation for
// realms, tracks granule delegation, and implements the RMI (host
// side) and RSI (realm side) interfaces.
type RMM struct {
	mu        sync.Mutex
	version   string
	granules  map[uint64]*granule
	realms    map[uint64]*Realm
	recs      map[uint64]*REC
	nextID    uint64
	nextRecID uint64

	// calls counts RMI and RSI invocations the monitor served.
	calls *obs.Counter
}

// NewRMM boots a Realm Management Monitor.
func NewRMM(version string) *RMM {
	if version == "" {
		version = "RMM-1.0-rel0"
	}
	return &RMM{
		version:   version,
		granules:  make(map[uint64]*granule, 256),
		realms:    make(map[uint64]*Realm, 4),
		recs:      make(map[uint64]*REC, 8),
		nextID:    1,
		nextRecID: 1,
		calls:     obs.Default().Counter("confbench_tee_rmm_calls_total", "tee", "cca"),
	}
}

// SetObsRegistry points the monitor's call counter at reg instead of
// the process-wide default. Call before serving traffic.
func (m *RMM) SetObsRegistry(reg *obs.Registry) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.calls = obs.OrDefault(reg).Counter("confbench_tee_rmm_calls_total", "tee", "cca")
}

// Version returns the RMM release string.
func (m *RMM) Version() string { return m.version }

func granuleIndex(pa uint64) (uint64, error) {
	if pa%GranuleSize != 0 {
		return 0, fmt.Errorf("cca: address %#x not granule aligned", pa)
	}
	return pa / GranuleSize, nil
}

// --- RMI (host interface) ---

// RMIGranuleDelegate moves a granule from the normal world to the
// realm world (RMI_GRANULE_DELEGATE).
func (m *RMM) RMIGranuleDelegate(pa uint64) error {
	idx, err := granuleIndex(pa)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.calls.Inc()
	if g, ok := m.granules[idx]; ok && g.delegated {
		return ErrGranuleDelegated
	}
	m.granules[idx] = &granule{delegated: true}
	return nil
}

// RMIGranuleUndelegate returns a granule to the normal world. A
// granule still assigned to a realm cannot leave the realm world.
func (m *RMM) RMIGranuleUndelegate(pa uint64) error {
	idx, err := granuleIndex(pa)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.calls.Inc()
	g, ok := m.granules[idx]
	if !ok || !g.delegated {
		return ErrGranuleUndelegated
	}
	if g.realmID != 0 {
		return ErrGranuleInUse
	}
	delete(m.granules, idx)
	return nil
}

// RMIRealmCreate creates a realm with the given personalization value
// (RMI_REALM_CREATE).
func (m *RMM) RMIRealmCreate(rpv []byte) (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.calls.Inc()
	id := m.nextID
	m.nextID++
	r := &Realm{
		id:       id,
		state:    RealmNew,
		granules: make(map[uint64]bool, 64),
	}
	copy(r.rpv[:], rpv)
	// The RIM starts from the realm parameters (here: the RPV).
	h := sha512.New384()
	h.Write([]byte("RMI_REALM_CREATE"))
	h.Write(r.rpv[:])
	copy(r.rim[:], h.Sum(nil))
	m.realms[id] = r
	return id, nil
}

func (m *RMM) realm(id uint64) (*Realm, error) {
	r, ok := m.realms[id]
	if !ok {
		return nil, ErrRealmNotFound
	}
	return r, nil
}

// RMIDataCreate maps a delegated granule into a new realm and extends
// the RIM with its content (RMI_DATA_CREATE). Only legal before
// activation.
func (m *RMM) RMIDataCreate(realmID, pa uint64, content []byte) error {
	idx, err := granuleIndex(pa)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.calls.Inc()
	r, err := m.realm(realmID)
	if err != nil {
		return err
	}
	if r.state != RealmNew {
		return fmt.Errorf("%w: data create in %s", ErrRealmState, r.state)
	}
	g, ok := m.granules[idx]
	if !ok || !g.delegated {
		return ErrGranuleUndelegated
	}
	if g.realmID != 0 {
		return ErrGranuleInUse
	}
	g.realmID = realmID
	r.granules[idx] = true

	h := sha512.New384()
	h.Write(r.rim[:])
	h.Write([]byte("RMI_DATA_CREATE"))
	var ipa [8]byte
	binary.LittleEndian.PutUint64(ipa[:], pa)
	h.Write(ipa[:])
	d := sha512.Sum384(content)
	h.Write(d[:])
	copy(r.rim[:], h.Sum(nil))
	return nil
}

// RMIRealmActivate seals the RIM and makes the realm runnable
// (RMI_REALM_ACTIVATE).
func (m *RMM) RMIRealmActivate(realmID uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.calls.Inc()
	r, err := m.realm(realmID)
	if err != nil {
		return err
	}
	if r.state != RealmNew {
		return fmt.Errorf("%w: activate in %s", ErrRealmState, r.state)
	}
	r.state = RealmActive
	return nil
}

// RMIRealmImport rebuilds a realm from a saved image: the granules are
// delegated and assigned without per-granule RIM extension, and the
// realm is created directly in the active state carrying the image's
// sealed measurement. This is the realm-image-reuse path warm pools
// rely on — the expensive measured build is skipped.
func (m *RMM) RMIRealmImport(rpv []byte, rim [MeasurementSize]byte, granulePAs []uint64) (uint64, error) {
	indices := make([]uint64, len(granulePAs))
	for i, pa := range granulePAs {
		idx, err := granuleIndex(pa)
		if err != nil {
			return 0, err
		}
		indices[i] = idx
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.calls.Inc()
	for _, idx := range indices {
		if g, ok := m.granules[idx]; ok && g.delegated {
			return 0, ErrGranuleDelegated
		}
	}
	id := m.nextID
	m.nextID++
	r := &Realm{
		id:       id,
		state:    RealmActive,
		rim:      rim,
		granules: make(map[uint64]bool, len(indices)),
	}
	copy(r.rpv[:], rpv)
	for _, idx := range indices {
		m.granules[idx] = &granule{delegated: true, realmID: id}
		r.granules[idx] = true
	}
	m.realms[id] = r
	return id, nil
}

// RMIRealmDestroy tears the realm down, detaching its granules (they
// stay delegated until undelegated individually).
func (m *RMM) RMIRealmDestroy(realmID uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.calls.Inc()
	r, err := m.realm(realmID)
	if err != nil {
		return err
	}
	for idx := range r.granules {
		if g, ok := m.granules[idx]; ok {
			g.realmID = 0
		}
	}
	r.state = RealmDestroyed
	r.granules = nil
	delete(m.realms, realmID)
	return nil
}

// --- RSI (realm interface) ---

// RSIHostCall records a hypercall from the realm to the host
// (RSI_HOST_CALL); the cost model prices world switches.
func (m *RMM) RSIHostCall(realmID uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.calls.Inc()
	r, err := m.realm(realmID)
	if err != nil {
		return err
	}
	if r.state != RealmActive {
		return fmt.Errorf("%w: host call in %s", ErrRealmState, r.state)
	}
	r.rsiCalls++
	return nil
}

// RSIMeasurementRead returns the RIM to the realm
// (RSI_MEASUREMENT_READ with index 0).
func (m *RMM) RSIMeasurementRead(realmID uint64) ([MeasurementSize]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.calls.Inc()
	r, err := m.realm(realmID)
	if err != nil {
		return [MeasurementSize]byte{}, err
	}
	if r.state != RealmActive {
		return [MeasurementSize]byte{}, fmt.Errorf("%w: measurement read in %s", ErrRealmState, r.state)
	}
	r.rsiCalls++
	return r.rim, nil
}

// RealmByID returns the realm for inspection in tests.
func (m *RMM) RealmByID(id uint64) (*Realm, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.realm(id)
}

// DelegatedGranules returns the number of granules in the realm world.
func (m *RMM) DelegatedGranules() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n int
	for _, g := range m.granules {
		if g.delegated {
			n++
		}
	}
	return n
}
