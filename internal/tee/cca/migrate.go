package cca

import (
	"encoding/base64"
	"encoding/json"
	"fmt"

	"confbench/internal/tee"
)

// realmState is the serialized form of a migrating realm: the
// personalization value and granule count to rebuild it around the
// sealed RIM (which travels in the image's Measurement field, where
// the destination's attestation gate verifies it).
type realmState struct {
	RPV   string `json:"rpv"` // base64 personalization value
	Pages int    `json:"pages"`
}

// ExportLive implements tee.Migrator — the CCA realm handoff: the
// realm keeps running while its RIM (read back via
// RSI_MEASUREMENT_READ, the realm-world measurement interface), its
// personalization value, and its granule count are captured for the
// destination to rebuild.
func (b *Backend) ExportLive(g tee.Guest) (*tee.MigrationImage, error) {
	if g == nil {
		return nil, fmt.Errorf("cca export: %w", tee.ErrNotLive)
	}
	b.mu.Lock()
	h, ok := b.live[g.ID()]
	b.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("cca export %s: %w", g.ID(), tee.ErrNotLive)
	}
	rim, err := b.rmm.RSIMeasurementRead(h.realmID)
	if err != nil {
		return nil, fmt.Errorf("cca export: %w", err)
	}
	state, err := json.Marshal(realmState{
		RPV:   base64.StdEncoding.EncodeToString(h.rpv),
		Pages: h.pages,
	})
	if err != nil {
		return nil, fmt.Errorf("cca export: %w", err)
	}
	cm := b.CostModel()
	return &tee.MigrationImage{
		Kind:        tee.KindCCA,
		MemoryMB:    h.pages, // one granule per MiB stands in for the image
		Measurement: append([]byte(nil), rim[:]...),
		State:       state,
		ExportCost:  cm.SnapshotCost(h.pages),
		ResumeCost:  cm.RestoreCost(h.pages),
	}, nil
}

// ImportLive implements tee.Migrator: fresh granules are delegated to
// a realm created directly active around the streamed RIM — the
// measured data-granule build is skipped, like a restore. The imported
// guest is tracked live, so re-exporting it reproduces the RIM for the
// destination's attestation gate.
func (b *Backend) ImportLive(img *tee.MigrationImage, cfg tee.GuestConfig) (tee.Guest, error) {
	if err := img.Validate(tee.KindCCA); err != nil {
		return nil, fmt.Errorf("cca import: %w", err)
	}
	var st realmState
	if err := json.Unmarshal(img.State, &st); err != nil {
		return nil, fmt.Errorf("cca import: %w: %v", tee.ErrBadMigrationState, err)
	}
	rpv, err := base64.StdEncoding.DecodeString(st.RPV)
	if err != nil {
		return nil, fmt.Errorf("cca import: %w: %v", tee.ErrBadMigrationState, err)
	}
	if st.Pages < 0 || st.Pages > 1<<20 {
		return nil, fmt.Errorf("cca import: %w: %d pages", tee.ErrBadMigrationState, st.Pages)
	}
	cfg = cfg.WithDefaults()
	base, seed := b.alloc(st.Pages)
	if cfg.Seed != 0 {
		seed = cfg.Seed
	}
	pas := make([]uint64, st.Pages)
	for i := range pas {
		pas[i] = base + uint64(i)*GranuleSize
	}
	var rim [MeasurementSize]byte
	copy(rim[:], img.Measurement)
	realmID, err := b.rmm.RMIRealmImport(rpv, rim, pas)
	if err != nil {
		return nil, fmt.Errorf("cca import: %w", err)
	}
	return b.guestForRealm(ccaLive{realmID: realmID, rpv: rpv, pages: st.Pages}, cfg, seed, img.ResumeCost, true), nil
}
