package cca

import (
	"context"
	"errors"
	"testing"

	"confbench/internal/meter"
	"confbench/internal/tee"
)

func TestGranuleDelegation(t *testing.T) {
	m := NewRMM("")
	const pa = GranuleSize
	if err := m.RMIGranuleDelegate(pa); err != nil {
		t.Fatal(err)
	}
	if err := m.RMIGranuleDelegate(pa); !errors.Is(err, ErrGranuleDelegated) {
		t.Errorf("double delegate: %v", err)
	}
	if err := m.RMIGranuleUndelegate(pa); err != nil {
		t.Fatal(err)
	}
	if err := m.RMIGranuleUndelegate(pa); !errors.Is(err, ErrGranuleUndelegated) {
		t.Errorf("double undelegate: %v", err)
	}
}

func TestGranuleUnalignedRejected(t *testing.T) {
	m := NewRMM("")
	if err := m.RMIGranuleDelegate(123); err == nil {
		t.Error("unaligned granule accepted")
	}
}

func TestRealmLifecycle(t *testing.T) {
	m := NewRMM("")
	id, err := m.RMIRealmCreate([]byte("rpv"))
	if err != nil {
		t.Fatal(err)
	}
	const pa = GranuleSize
	if err := m.RMIGranuleDelegate(pa); err != nil {
		t.Fatal(err)
	}
	if err := m.RMIDataCreate(id, pa, []byte("image")); err != nil {
		t.Fatal(err)
	}
	if err := m.RMIRealmActivate(id); err != nil {
		t.Fatal(err)
	}
	// Data create after activation is illegal.
	if err := m.RMIGranuleDelegate(2 * GranuleSize); err != nil {
		t.Fatal(err)
	}
	if err := m.RMIDataCreate(id, 2*GranuleSize, []byte("late")); !errors.Is(err, ErrRealmState) {
		t.Errorf("late data create: %v", err)
	}
	if err := m.RMIRealmDestroy(id); err != nil {
		t.Fatal(err)
	}
	if _, err := m.RealmByID(id); !errors.Is(err, ErrRealmNotFound) {
		t.Errorf("realm survives destroy: %v", err)
	}
}

func TestDataCreateRequiresDelegatedGranule(t *testing.T) {
	m := NewRMM("")
	id, _ := m.RMIRealmCreate(nil)
	if err := m.RMIDataCreate(id, GranuleSize, []byte("x")); !errors.Is(err, ErrGranuleUndelegated) {
		t.Errorf("undelegated data create: %v", err)
	}
}

func TestGranuleCannotLeaveRealmWorldWhileInUse(t *testing.T) {
	m := NewRMM("")
	id, _ := m.RMIRealmCreate(nil)
	const pa = GranuleSize
	_ = m.RMIGranuleDelegate(pa)
	_ = m.RMIDataCreate(id, pa, []byte("x"))
	if err := m.RMIGranuleUndelegate(pa); !errors.Is(err, ErrGranuleInUse) {
		t.Errorf("undelegate in-use granule: %v", err)
	}
	_ = m.RMIRealmDestroy(id)
	if err := m.RMIGranuleUndelegate(pa); err != nil {
		t.Errorf("undelegate after destroy: %v", err)
	}
}

func TestGranuleCannotServeTwoRealms(t *testing.T) {
	m := NewRMM("")
	id1, _ := m.RMIRealmCreate([]byte("a"))
	id2, _ := m.RMIRealmCreate([]byte("b"))
	const pa = GranuleSize
	_ = m.RMIGranuleDelegate(pa)
	if err := m.RMIDataCreate(id1, pa, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := m.RMIDataCreate(id2, pa, []byte("y")); !errors.Is(err, ErrGranuleInUse) {
		t.Errorf("shared granule: %v", err)
	}
}

func TestRIMDependsOnContentAndRPV(t *testing.T) {
	build := func(rpv string, contents ...string) [MeasurementSize]byte {
		m := NewRMM("")
		id, _ := m.RMIRealmCreate([]byte(rpv))
		for i, c := range contents {
			pa := uint64(i+1) * GranuleSize
			_ = m.RMIGranuleDelegate(pa)
			_ = m.RMIDataCreate(id, pa, []byte(c))
		}
		_ = m.RMIRealmActivate(id)
		r, _ := m.RealmByID(id)
		return r.RIM()
	}
	if build("p", "a") == build("p", "b") {
		t.Error("different content, same RIM")
	}
	if build("p", "a") == build("q", "a") {
		t.Error("different RPV, same RIM")
	}
	if build("p", "a", "b") != build("p", "a", "b") {
		t.Error("identical builds differ")
	}
}

func TestRSIRequiresActiveRealm(t *testing.T) {
	m := NewRMM("")
	id, _ := m.RMIRealmCreate(nil)
	if err := m.RSIHostCall(id); !errors.Is(err, ErrRealmState) {
		t.Errorf("host call before activate: %v", err)
	}
	_ = m.RMIRealmActivate(id)
	if err := m.RSIHostCall(id); err != nil {
		t.Fatal(err)
	}
	if _, err := m.RSIMeasurementRead(id); err != nil {
		t.Fatal(err)
	}
	r, _ := m.RealmByID(id)
	if r.RSICalls() != 2 {
		t.Errorf("RSI calls = %d, want 2", r.RSICalls())
	}
}

func TestBackendLaunch(t *testing.T) {
	b, err := NewBackend(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if b.Kind() != tee.KindCCA {
		t.Errorf("kind = %v", b.Kind())
	}
	g, err := b.Launch(tee.GuestConfig{Name: "realm", MemoryMB: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Destroy()
	if b.Monitor().DelegatedGranules() != 8 {
		t.Errorf("delegated granules = %d", b.Monitor().DelegatedGranules())
	}
	// Per §IV-B the FVP lacks attestation hardware support.
	if _, err := g.AttestationReport(context.Background(), []byte("n")); !errors.Is(err, tee.ErrNoAttestation) {
		t.Errorf("CCA attestation should be unsupported, got %v", err)
	}
}

func TestRealmVariabilityExceedsBareMetal(t *testing.T) {
	b, _ := NewBackend(Options{Seed: 1})
	realm, _ := b.Launch(tee.GuestConfig{MemoryMB: 4})
	defer realm.Destroy()
	normal, _ := b.LaunchNormal(tee.GuestConfig{MemoryMB: 4})
	defer normal.Destroy()

	u := meter.Usage{meter.CPUOps: 10_000_000, meter.BytesTouched: 4 << 20}
	base := b.HostProfile().Cost(u)
	spread := func(g tee.Guest) float64 {
		lo, hi := 1e18, 0.0
		for i := 0; i < 50; i++ {
			v := g.Price(u, base).Total.Seconds()
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		return (hi - lo) / lo
	}
	// Fig. 8: secure whiskers are longer than normal ones.
	if spread(realm) <= spread(normal) {
		t.Error("realm runs should vary more than normal-VM runs")
	}
}

func TestRealmCostExceedsNormal(t *testing.T) {
	b, _ := NewBackend(Options{Seed: 2})
	realm, _ := b.Launch(tee.GuestConfig{MemoryMB: 4})
	defer realm.Destroy()
	normal, _ := b.LaunchNormal(tee.GuestConfig{MemoryMB: 4})
	defer normal.Destroy()
	u := meter.Usage{meter.Syscalls: 10_000, meter.IOWriteBytes: 4 << 20}
	base := b.HostProfile().Cost(u)
	var rSum, nSum float64
	for i := 0; i < 20; i++ {
		rSum += realm.Price(u, base).Total.Seconds()
		nSum += normal.Price(u, base).Total.Seconds()
	}
	if rSum < 3*nSum {
		t.Errorf("syscall/IO work should be ≥3x in realm: %v vs %v", rSum, nSum)
	}
}

func TestRECLifecycle(t *testing.T) {
	m := NewRMM("")
	id, _ := m.RMIRealmCreate([]byte("r"))
	recID, err := m.RMIRecCreate(id)
	if err != nil {
		t.Fatal(err)
	}
	// Entering before the realm is active must fail.
	if err := m.RMIRecEnter(recID); !errors.Is(err, ErrRealmInactive) {
		t.Errorf("enter into inactive realm: %v", err)
	}
	if err := m.RMIRealmActivate(id); err != nil {
		t.Fatal(err)
	}
	if err := m.RMIRecEnter(recID); err != nil {
		t.Fatal(err)
	}
	// Double entry while running is illegal.
	if err := m.RMIRecEnter(recID); !errors.Is(err, ErrRECState) {
		t.Errorf("double enter: %v", err)
	}
	// Destroy while running is illegal.
	if err := m.RMIRecDestroy(recID); !errors.Is(err, ErrRECState) {
		t.Errorf("destroy running rec: %v", err)
	}
	if err := m.RecExit(recID); err != nil {
		t.Fatal(err)
	}
	rec, err := m.RECByID(recID)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Entries() != 1 || rec.Exits() != 1 || rec.State() != RECReady {
		t.Errorf("rec counters = %d/%d state %v", rec.Entries(), rec.Exits(), rec.State())
	}
	if err := m.RMIRecDestroy(recID); err != nil {
		t.Fatal(err)
	}
	if _, err := m.RECByID(recID); !errors.Is(err, ErrRECNotFound) {
		t.Errorf("rec survives destroy: %v", err)
	}
}

func TestRECEnterExitCycles(t *testing.T) {
	m := NewRMM("")
	id, _ := m.RMIRealmCreate(nil)
	_ = m.RMIRealmActivate(id)
	recID, err := m.RMIRecCreate(id)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := m.RMIRecEnter(recID); err != nil {
			t.Fatal(err)
		}
		if err := m.RecExit(recID); err != nil {
			t.Fatal(err)
		}
	}
	rec, _ := m.RECByID(recID)
	if rec.Entries() != 50 || rec.Exits() != 50 {
		t.Errorf("cycles = %d/%d", rec.Entries(), rec.Exits())
	}
}

func TestRECRequiresRealm(t *testing.T) {
	m := NewRMM("")
	if _, err := m.RMIRecCreate(99); !errors.Is(err, ErrRealmNotFound) {
		t.Errorf("rec for missing realm: %v", err)
	}
	if err := m.RecExit(7); !errors.Is(err, ErrRECNotFound) {
		t.Errorf("exit unknown rec: %v", err)
	}
}
