package cca

import (
	"errors"
	"fmt"
)

// REC errors.
var (
	ErrRECNotFound   = errors.New("cca: no such REC")
	ErrRECState      = errors.New("cca: operation illegal in current REC state")
	ErrRealmInactive = errors.New("cca: realm not active")
)

// RECState is the run state of a realm execution context.
type RECState int

// REC states.
const (
	RECReady RECState = iota + 1
	RECRunning
	RECDestroyed
)

// String names the state.
func (s RECState) String() string {
	switch s {
	case RECReady:
		return "ready"
	case RECRunning:
		return "running"
	case RECDestroyed:
		return "destroyed"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// REC is a Realm Execution Context — the vCPU-like unit the host
// schedules into a realm with RMI_REC_ENTER. Exits back to the host
// (the world switches the CCA cost model prices) are counted per REC.
type REC struct {
	id      uint64
	realmID uint64
	state   RECState
	entries uint64
	exits   uint64
}

// ID returns the REC identifier.
func (r *REC) ID() uint64 { return r.id }

// RealmID returns the owning realm.
func (r *REC) RealmID() uint64 { return r.realmID }

// State returns the run state.
func (r *REC) State() RECState { return r.state }

// Entries returns the number of RMI_REC_ENTER calls.
func (r *REC) Entries() uint64 { return r.entries }

// Exits returns the number of realm exits back to the host.
func (r *REC) Exits() uint64 { return r.exits }

// RMIRecCreate creates a REC for an active realm (RMI_REC_CREATE must
// happen before activation on real hardware; the simulation allows it
// for realms in either New or Active state and tracks it per realm).
func (m *RMM) RMIRecCreate(realmID uint64) (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, err := m.realm(realmID)
	if err != nil {
		return 0, err
	}
	if r.state == RealmDestroyed {
		return 0, fmt.Errorf("%w: rec create in %s", ErrRealmState, r.state)
	}
	id := m.nextRecID
	m.nextRecID++
	m.recs[id] = &REC{id: id, realmID: realmID, state: RECReady}
	return id, nil
}

func (m *RMM) rec(id uint64) (*REC, error) {
	rec, ok := m.recs[id]
	if !ok {
		return nil, ErrRECNotFound
	}
	return rec, nil
}

// RMIRecEnter schedules the REC into its realm (RMI_REC_ENTER). The
// realm must be active and the REC not already running.
func (m *RMM) RMIRecEnter(recID uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, err := m.rec(recID)
	if err != nil {
		return err
	}
	if rec.state != RECReady {
		return fmt.Errorf("%w: enter in %s", ErrRECState, rec.state)
	}
	realm, err := m.realm(rec.realmID)
	if err != nil {
		return err
	}
	if realm.state != RealmActive {
		return ErrRealmInactive
	}
	rec.state = RECRunning
	rec.entries++
	return nil
}

// RecExit records the REC leaving the realm back to the host (a realm
// exit: hypercall, interrupt, or fault).
func (m *RMM) RecExit(recID uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, err := m.rec(recID)
	if err != nil {
		return err
	}
	if rec.state != RECRunning {
		return fmt.Errorf("%w: exit in %s", ErrRECState, rec.state)
	}
	rec.state = RECReady
	rec.exits++
	return nil
}

// RMIRecDestroy tears a REC down (RMI_REC_DESTROY); running RECs must
// exit first.
func (m *RMM) RMIRecDestroy(recID uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, err := m.rec(recID)
	if err != nil {
		return err
	}
	if rec.state == RECRunning {
		return fmt.Errorf("%w: destroy while running", ErrRECState)
	}
	rec.state = RECDestroyed
	delete(m.recs, recID)
	return nil
}

// RECByID returns the REC for inspection in tests.
func (m *RMM) RECByID(id uint64) (*REC, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rec(id)
}
