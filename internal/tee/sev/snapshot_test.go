package sev

import (
	"context"
	"errors"
	"testing"

	"confbench/internal/tee"
)

func TestBackendSnapshotRestore(t *testing.T) {
	b, err := NewBackend(Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	cfg := tee.GuestConfig{Name: "runtime", MemoryMB: 8}

	img, err := b.Snapshot(cfg)
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if img.Kind != tee.KindSEV || img.MemoryMB != 8 {
		t.Fatalf("image identity: kind=%s mem=%d", img.Kind, img.MemoryMB)
	}
	// The template guest is decommissioned after capture; its RMP pages
	// must not linger.
	snp, ok := img.Payload.(*snpImage)
	if !ok {
		t.Fatalf("payload type %T", img.Payload)
	}
	if snp.pages != 8 {
		t.Fatalf("image pages = %d, want 8", snp.pages)
	}

	cold, err := b.Launch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cold.Destroy()
	warm, err := b.Restore(img, cfg)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	defer warm.Destroy()

	if got := warm.BootCost(); got != img.RestoreCost {
		t.Errorf("warm boot = %v, want restore cost %v", got, img.RestoreCost)
	}
	if cold.BootCost() < 3*warm.BootCost() {
		t.Errorf("cold boot %v not >= 3x warm boot %v", cold.BootCost(), warm.BootCost())
	}

	// The imported launch digest is what the restored guest attests
	// with, and it matches an identically-configured cold launch.
	raw, err := warm.AttestationReport(context.Background(), []byte("warm-nonce"))
	if err != nil {
		t.Fatalf("restored attestation: %v", err)
	}
	rep, err := UnmarshalReport(raw)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Measurement != snp.digest {
		t.Error("restored guest reports a different measurement than the image")
	}
	coldRaw, err := cold.AttestationReport(context.Background(), []byte("cold-nonce"))
	if err != nil {
		t.Fatal(err)
	}
	coldRep, err := UnmarshalReport(coldRaw)
	if err != nil {
		t.Fatal(err)
	}
	if coldRep.Measurement != rep.Measurement {
		t.Error("restored measurement differs from an identically-configured cold launch")
	}

	// The restore replayed the full page donation (snapshot=1, cold
	// launch=2, restore=3 in allocation order), and destroying the
	// restored guest reclaims it.
	const warmASID = 3
	if got := b.rmp.AssignedPages(warmASID); got != snp.pages {
		t.Errorf("restored rmp pages = %d, want %d", got, snp.pages)
	}
	if err := warm.Destroy(); err != nil {
		t.Fatal(err)
	}
	if got := b.rmp.AssignedPages(warmASID); got != 0 {
		t.Errorf("rmp pages after destroy = %d, want 0", got)
	}
}

func TestBackendRestoreRejectsForeignImage(t *testing.T) {
	b, err := NewBackend(Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	wrong := &tee.GuestImage{Kind: tee.KindCCA, MemoryMB: 8}
	if _, err := b.Restore(wrong, tee.GuestConfig{}); !errors.Is(err, tee.ErrImageKind) {
		t.Errorf("wrong kind: %v", err)
	}
	badPayload := &tee.GuestImage{Kind: tee.KindSEV, MemoryMB: 8, Payload: 42}
	if _, err := b.Restore(badPayload, tee.GuestConfig{}); !errors.Is(err, tee.ErrImagePayload) {
		t.Errorf("bad payload: %v", err)
	}
}

func TestLaunchImportConflicts(t *testing.T) {
	sp, err := NewAMDSP(1)
	if err != nil {
		t.Fatal(err)
	}
	var digest [MeasurementSize]byte
	if err := sp.LaunchStart(1, 0); err != nil {
		t.Fatal(err)
	}
	// An ASID mid-launch cannot be the target of an import.
	if err := sp.LaunchImport(1, 0, digest); err == nil {
		t.Error("import over in-progress launch succeeded")
	}
	if err := sp.LaunchImport(2, 0, digest); err != nil {
		t.Fatalf("import on fresh asid: %v", err)
	}
	// The imported context is finished: attestation works immediately.
	if _, err := sp.GuestRequestReport(2, 0, []byte("n")); err != nil {
		t.Errorf("report after import: %v", err)
	}
}
