// Package sev simulates AMD Secure Encrypted Virtualization with
// Secure Nested Paging (SEV-SNP) for ConfBench.
//
// Per §II of the paper, SEV-SNP extends SEV's VM memory encryption
// with strong integrity protection enforced through the Reverse Map
// Table (RMP), which tracks the owner of every physical page; Virtual
// Machine Privilege Levels (VMPLs) split a guest's memory into four
// privilege tiers; and each SNP guest can request an attestation
// report from the firmware, signed by the AMD-SP secure coprocessor.
// This package models all three structures, and backend.go expresses
// the performance profile (cheaper I/O than TDX via shared pages,
// slightly costlier CPU/memory path) as a tee.CostModel.
package sev

import (
	"errors"
	"fmt"
	"sync"

	"confbench/internal/obs"
)

// PageSize is the RMP granularity.
const PageSize = 4096

// NumVMPLs is the number of virtual machine privilege levels.
const NumVMPLs = 4

// VMPL permission bits.
const (
	PermRead uint8 = 1 << iota
	PermWrite
	PermExecUser
	PermExecSuper
)

// RMP errors.
var (
	ErrPageAssigned    = errors.New("sev: page already assigned in RMP")
	ErrPageNotAssigned = errors.New("sev: page not assigned to any guest")
	ErrWrongOwner      = errors.New("sev: RMP owner mismatch")
	ErrDoubleValidate  = errors.New("sev: page already validated")
	ErrNotValidated    = errors.New("sev: page not validated")
	ErrBadVMPL         = errors.New("sev: VMPL out of range")
	ErrVMPLDenied      = errors.New("sev: access denied by VMPL permissions")
)

// RMPEntry describes the ownership and validation state of one page.
type RMPEntry struct {
	// ASID is the owning guest's address-space ID (0 = hypervisor).
	ASID uint32
	// Assigned marks the page as guest-private.
	Assigned bool
	// Validated is set by the guest's PVALIDATE.
	Validated bool
	// Perms holds the per-VMPL permission masks.
	Perms [NumVMPLs]uint8
	// Immutable marks firmware pages (metadata, VMSA).
	Immutable bool
}

// RMP is the Reverse Map Table: one entry per physical page. It
// enforces the single-owner invariant that gives SNP its integrity
// guarantees.
type RMP struct {
	mu      sync.Mutex
	entries map[uint64]*RMPEntry

	// ops counts RMP operations (RMPUPDATE, PVALIDATE, hardware walks).
	ops *obs.Counter
}

// NewRMP returns an empty reverse map table.
func NewRMP() *RMP {
	return &RMP{
		entries: make(map[uint64]*RMPEntry, 256),
		ops:     obs.Default().Counter("confbench_tee_rmp_ops_total", "tee", "sev-snp"),
	}
}

// SetObsRegistry points the RMP's operation counter at reg instead of
// the process-wide default. Call before serving traffic.
func (r *RMP) SetObsRegistry(reg *obs.Registry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ops = obs.OrDefault(reg).Counter("confbench_tee_rmp_ops_total", "tee", "sev-snp")
}

func pfn(pa uint64) (uint64, error) {
	if pa%PageSize != 0 {
		return 0, fmt.Errorf("sev: address %#x not page aligned", pa)
	}
	return pa / PageSize, nil
}

// Assign transitions a hypervisor page to guest-private state for the
// guest with the given ASID (RMPUPDATE issued by the hypervisor). The
// page must not already be assigned — reassignment without a reclaim
// is exactly the remapping attack SNP blocks.
func (r *RMP) Assign(pa uint64, asid uint32) error {
	n, err := pfn(pa)
	if err != nil {
		return err
	}
	if asid == 0 {
		return fmt.Errorf("sev: cannot assign to hypervisor ASID 0")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ops.Inc()
	if e, ok := r.entries[n]; ok && e.Assigned {
		return fmt.Errorf("%w: page %#x owned by ASID %d", ErrPageAssigned, pa, e.ASID)
	}
	r.entries[n] = &RMPEntry{
		ASID:     asid,
		Assigned: true,
		Perms:    [NumVMPLs]uint8{PermRead | PermWrite | PermExecUser | PermExecSuper},
	}
	return nil
}

// Validate marks the page as validated by its guest (PVALIDATE).
// Double validation fails, defeating replay of stale mappings.
func (r *RMP) Validate(pa uint64, asid uint32) error {
	n, err := pfn(pa)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ops.Inc()
	e, ok := r.entries[n]
	if !ok || !e.Assigned {
		return ErrPageNotAssigned
	}
	if e.ASID != asid {
		return fmt.Errorf("%w: page %#x owned by ASID %d, not %d", ErrWrongOwner, pa, e.ASID, asid)
	}
	if e.Validated {
		return ErrDoubleValidate
	}
	e.Validated = true
	return nil
}

// Check verifies that the guest with asid may access the page at pa
// from privilege level vmpl with the requested permission mask. This
// is the hardware walk performed on every nested page table hit.
func (r *RMP) Check(pa uint64, asid uint32, vmpl int, perm uint8) error {
	if vmpl < 0 || vmpl >= NumVMPLs {
		return ErrBadVMPL
	}
	n, err := pfn(pa)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ops.Inc()
	e, ok := r.entries[n]
	if !ok || !e.Assigned {
		return ErrPageNotAssigned
	}
	if e.ASID != asid {
		return fmt.Errorf("%w: page %#x", ErrWrongOwner, pa)
	}
	if !e.Validated {
		return ErrNotValidated
	}
	if e.Perms[vmpl]&perm != perm {
		return fmt.Errorf("%w: vmpl %d perms %#x, need %#x", ErrVMPLDenied, vmpl, e.Perms[vmpl], perm)
	}
	return nil
}

// SetVMPL adjusts the permission mask of a lower privilege level.
// Only VMPL0 software may do this (RMPADJUST).
func (r *RMP) SetVMPL(pa uint64, asid uint32, vmpl int, perm uint8) error {
	if vmpl <= 0 || vmpl >= NumVMPLs {
		return fmt.Errorf("%w: RMPADJUST targets VMPL1..3, got %d", ErrBadVMPL, vmpl)
	}
	n, err := pfn(pa)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[n]
	if !ok || !e.Assigned || e.ASID != asid {
		return ErrPageNotAssigned
	}
	e.Perms[vmpl] = perm
	return nil
}

// Reclaim returns a guest page to the hypervisor (page becomes shared
// again; validation state is wiped).
func (r *RMP) Reclaim(pa uint64, asid uint32) error {
	n, err := pfn(pa)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[n]
	if !ok || !e.Assigned {
		return ErrPageNotAssigned
	}
	if e.ASID != asid {
		return ErrWrongOwner
	}
	delete(r.entries, n)
	return nil
}

// ReclaimAll releases every page owned by asid and returns the count.
func (r *RMP) ReclaimAll(asid uint32) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	var n int
	for k, e := range r.entries {
		if e.ASID == asid {
			delete(r.entries, k)
			n++
		}
	}
	return n
}

// AssignedPages returns the number of private pages owned by asid.
func (r *RMP) AssignedPages(asid uint32) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	var n int
	for _, e := range r.entries {
		if e.ASID == asid && e.Assigned {
			n++
		}
	}
	return n
}
