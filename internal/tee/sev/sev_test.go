package sev

import (
	"context"
	"errors"
	"testing"

	"confbench/internal/meter"
	"confbench/internal/tee"
)

func TestRMPSingleOwnerInvariant(t *testing.T) {
	r := NewRMP()
	const pa = 4096
	if err := r.Assign(pa, 1); err != nil {
		t.Fatal(err)
	}
	// Re-assigning an owned page (the remapping attack) must fail.
	if err := r.Assign(pa, 2); !errors.Is(err, ErrPageAssigned) {
		t.Errorf("reassign: %v", err)
	}
	if err := r.Reclaim(pa, 1); err != nil {
		t.Fatal(err)
	}
	if err := r.Assign(pa, 2); err != nil {
		t.Errorf("assign after reclaim: %v", err)
	}
}

func TestRMPValidateOnce(t *testing.T) {
	r := NewRMP()
	const pa = 8192
	_ = r.Assign(pa, 1)
	if err := r.Validate(pa, 1); err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(pa, 1); !errors.Is(err, ErrDoubleValidate) {
		t.Errorf("double validate: %v", err)
	}
}

func TestRMPValidateWrongOwner(t *testing.T) {
	r := NewRMP()
	_ = r.Assign(4096, 1)
	if err := r.Validate(4096, 2); !errors.Is(err, ErrWrongOwner) {
		t.Errorf("wrong owner validate: %v", err)
	}
}

func TestRMPCheck(t *testing.T) {
	r := NewRMP()
	const pa = 4096
	_ = r.Assign(pa, 1)
	// Unvalidated page cannot be used.
	if err := r.Check(pa, 1, 0, PermRead); !errors.Is(err, ErrNotValidated) {
		t.Errorf("check unvalidated: %v", err)
	}
	_ = r.Validate(pa, 1)
	if err := r.Check(pa, 1, 0, PermRead|PermWrite); err != nil {
		t.Errorf("vmpl0 access: %v", err)
	}
	// Other guests cannot touch the page.
	if err := r.Check(pa, 2, 0, PermRead); !errors.Is(err, ErrWrongOwner) {
		t.Errorf("cross-guest access: %v", err)
	}
	// Lower VMPLs start with no permissions.
	if err := r.Check(pa, 1, 2, PermRead); !errors.Is(err, ErrVMPLDenied) {
		t.Errorf("vmpl2 default: %v", err)
	}
	if err := r.Check(pa, 1, 7, PermRead); !errors.Is(err, ErrBadVMPL) {
		t.Errorf("bad vmpl: %v", err)
	}
}

func TestRMPAdjust(t *testing.T) {
	r := NewRMP()
	const pa = 4096
	_ = r.Assign(pa, 1)
	_ = r.Validate(pa, 1)
	if err := r.SetVMPL(pa, 1, 2, PermRead); err != nil {
		t.Fatal(err)
	}
	if err := r.Check(pa, 1, 2, PermRead); err != nil {
		t.Errorf("vmpl2 read after adjust: %v", err)
	}
	if err := r.Check(pa, 1, 2, PermWrite); !errors.Is(err, ErrVMPLDenied) {
		t.Errorf("vmpl2 write: %v", err)
	}
	// RMPADJUST cannot target VMPL0.
	if err := r.SetVMPL(pa, 1, 0, PermRead); !errors.Is(err, ErrBadVMPL) {
		t.Errorf("adjust vmpl0: %v", err)
	}
}

func TestRMPReclaimAll(t *testing.T) {
	r := NewRMP()
	for i := 0; i < 5; i++ {
		_ = r.Assign(uint64(i)*PageSize+PageSize, 7)
	}
	_ = r.Assign(100*PageSize, 8)
	if n := r.ReclaimAll(7); n != 5 {
		t.Errorf("reclaimed %d, want 5", n)
	}
	if r.AssignedPages(7) != 0 || r.AssignedPages(8) != 1 {
		t.Error("reclaim-all removed wrong pages")
	}
}

func TestLaunchMeasurementFlow(t *testing.T) {
	sp, err := NewAMDSP(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.LaunchStart(1, 0x30000); err != nil {
		t.Fatal(err)
	}
	if err := sp.LaunchUpdate(1, []byte("kernel")); err != nil {
		t.Fatal(err)
	}
	digest, err := sp.LaunchFinish(1)
	if err != nil {
		t.Fatal(err)
	}
	var zero [MeasurementSize]byte
	if digest == zero {
		t.Error("launch digest is zero")
	}
	// Updates after finish must fail.
	if err := sp.LaunchUpdate(1, []byte("late")); !errors.Is(err, ErrLaunchFinished) {
		t.Errorf("late update: %v", err)
	}
}

func TestLaunchMeasurementDeterministic(t *testing.T) {
	build := func(parts ...string) [MeasurementSize]byte {
		sp, _ := NewAMDSP(1)
		_ = sp.LaunchStart(1, 0)
		for _, p := range parts {
			_ = sp.LaunchUpdate(1, []byte(p))
		}
		d, _ := sp.LaunchFinish(1)
		return d
	}
	if build("a", "b") != build("a", "b") {
		t.Error("same inputs, different measurement")
	}
	if build("a", "b") == build("b", "a") {
		t.Error("order must matter")
	}
}

func TestReportBeforeFinishFails(t *testing.T) {
	sp, _ := NewAMDSP(1)
	_ = sp.LaunchStart(1, 0)
	if _, err := sp.GuestRequestReport(1, 0, nil); !errors.Is(err, ErrLaunchNotDone) {
		t.Errorf("report before finish: %v", err)
	}
	if _, err := sp.GuestRequestReport(9, 0, nil); !errors.Is(err, ErrGuestNotLaunched) {
		t.Errorf("report unknown guest: %v", err)
	}
}

func TestReportSignedAndBound(t *testing.T) {
	sp, _ := NewAMDSP(1)
	_ = sp.LaunchStart(1, 0x30000)
	_ = sp.LaunchUpdate(1, []byte("image"))
	digest, _ := sp.LaunchFinish(1)

	r, err := sp.GuestRequestReport(1, 0, []byte("nonce"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Measurement != digest {
		t.Error("report measurement != launch digest")
	}
	if len(r.SignatureR) == 0 || len(r.SignatureS) == 0 {
		t.Error("report unsigned")
	}
	if string(r.ReportData[:5]) != "nonce" {
		t.Error("nonce not bound")
	}
	if _, err := sp.GuestRequestReport(1, 0, make([]byte, 100)); !errors.Is(err, ErrReportData) {
		t.Errorf("oversized report data: %v", err)
	}
}

func TestReportRoundTrip(t *testing.T) {
	sp, _ := NewAMDSP(1)
	_ = sp.LaunchStart(1, 0)
	_, _ = sp.LaunchFinish(1)
	r, _ := sp.GuestRequestReport(1, 0, []byte("x"))
	data, err := r.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Measurement != r.Measurement || string(back.SignatureR) != string(r.SignatureR) {
		t.Error("round trip mismatch")
	}
}

func TestCertChainProvisioned(t *testing.T) {
	sp, _ := NewAMDSP(1)
	chain := sp.CertChainCopy()
	if len(chain.VCEK) == 0 || len(chain.ASK) == 0 || len(chain.ARK) == 0 {
		t.Fatal("incomplete chain")
	}
	// The copy must be independent.
	chain.VCEK[0] ^= 0xff
	if sp.CertChainCopy().VCEK[0] == chain.VCEK[0] {
		t.Error("CertChainCopy shares memory")
	}
}

func TestTCBEncode(t *testing.T) {
	tcb := TCBVersion{Bootloader: 4, TEE: 1, SNPFw: 21, Microcode: 209}
	enc := tcb.Encode()
	if enc == 0 {
		t.Error("encoded TCB is zero")
	}
	if byte(enc) != 4 || byte(enc>>56) != 209 {
		t.Errorf("encoding layout wrong: %#x", enc)
	}
}

func TestBackendLifecycle(t *testing.T) {
	b, err := NewBackend(Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if b.Kind() != tee.KindSEV {
		t.Errorf("kind = %v", b.Kind())
	}
	g, err := b.Launch(tee.GuestConfig{Name: "snp-guest", MemoryMB: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got := b.ReverseMap().AssignedPages(1); got != 8 {
		t.Errorf("RMP pages = %d, want 8", got)
	}
	ev, err := g.AttestationReport(context.Background(), []byte("n"))
	if err != nil || len(ev) == 0 {
		t.Fatalf("attest: %v", err)
	}
	if err := g.Destroy(); err != nil {
		t.Fatal(err)
	}
	if got := b.ReverseMap().AssignedPages(1); got != 0 {
		t.Errorf("pages not reclaimed on destroy: %d", got)
	}
}

func TestBackendIOCheaperThanTDXProfile(t *testing.T) {
	// SEV's I/O factors must stay below TDX-class bounce-buffer costs.
	b, _ := NewBackend(Options{Seed: 1})
	cm := b.CostModel()
	if cm.IOReadFactor >= 2.0 || cm.IOWriteFactor >= 2.0 {
		t.Errorf("SEV I/O factors too high: %v/%v", cm.IOReadFactor, cm.IOWriteFactor)
	}
	if cm.CPUFactor <= 1.0 {
		t.Error("secure CPU factor must exceed 1")
	}
}

func TestBackendPricesSecureAboveNormalForSyscallWork(t *testing.T) {
	b, _ := NewBackend(Options{Seed: 3})
	s, _ := b.Launch(tee.GuestConfig{MemoryMB: 4})
	defer s.Destroy()
	n, _ := b.LaunchNormal(tee.GuestConfig{MemoryMB: 4})
	defer n.Destroy()
	u := meter.Usage{meter.ContextSwitches: 10_000, meter.Syscalls: 20_000}
	base := b.HostProfile().Cost(u)
	var sSum, nSum float64
	for i := 0; i < 20; i++ {
		sSum += s.Price(u, base).Total.Seconds()
		nSum += n.Price(u, base).Total.Seconds()
	}
	if sSum <= nSum {
		t.Errorf("scheduler-heavy work should cost more in SNP guest: %v vs %v", sSum, nSum)
	}
}
