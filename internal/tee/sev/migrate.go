package sev

import (
	"encoding/json"
	"fmt"

	"confbench/internal/tee"
)

// snpState is the serialized form of a migrating SNP guest: the guest
// policy and the RMP donation shape to replay on the destination. The
// sealed launch digest travels in the image's Measurement field, where
// the destination's attestation gate verifies it before LAUNCH_IMPORT.
type snpState struct {
	Policy uint64 `json:"policy"`
	Pages  int    `json:"pages"`
}

// ExportLive implements tee.Migrator — the SNP migration-agent page
// stream: the source guest keeps running while its policy, sealed
// launch digest, and RMP donation shape are captured for the
// destination to replay.
func (b *Backend) ExportLive(g tee.Guest) (*tee.MigrationImage, error) {
	if g == nil {
		return nil, fmt.Errorf("sev export: %w", tee.ErrNotLive)
	}
	b.mu.Lock()
	h, ok := b.live[g.ID()]
	b.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("sev export %s: %w", g.ID(), tee.ErrNotLive)
	}
	state, err := json.Marshal(snpState{Policy: h.policy, Pages: h.pages})
	if err != nil {
		return nil, fmt.Errorf("sev export: %w", err)
	}
	cm := b.CostModel()
	return &tee.MigrationImage{
		Kind:        tee.KindSEV,
		MemoryMB:    h.pages, // one donated page per MiB
		Measurement: append([]byte(nil), h.digest[:]...),
		State:       state,
		ExportCost:  cm.SnapshotCost(h.pages),
		ResumeCost:  cm.RestoreCost(h.pages),
	}, nil
}

// ImportLive implements tee.Migrator: a fresh ASID receives the
// streamed launch digest via SNP_LAUNCH_IMPORT and the RMP page
// donation is replayed (RMPUPDATE+PVALIDATE per page, no per-page
// measurement). The imported guest is tracked live, so re-exporting
// it reproduces the digest for the destination's attestation gate.
func (b *Backend) ImportLive(img *tee.MigrationImage, cfg tee.GuestConfig) (tee.Guest, error) {
	if err := img.Validate(tee.KindSEV); err != nil {
		return nil, fmt.Errorf("sev import: %w", err)
	}
	var st snpState
	if err := json.Unmarshal(img.State, &st); err != nil {
		return nil, fmt.Errorf("sev import: %w: %v", tee.ErrBadMigrationState, err)
	}
	if st.Pages < 0 || st.Pages > 1<<20 {
		return nil, fmt.Errorf("sev import: %w: %d pages", tee.ErrBadMigrationState, st.Pages)
	}
	cfg = cfg.WithDefaults()
	asid, seed := b.alloc()
	if cfg.Seed != 0 {
		seed = cfg.Seed
	}
	var digest [MeasurementSize]byte
	copy(digest[:], img.Measurement)
	if err := b.sp.LaunchImport(asid, st.Policy, digest); err != nil {
		return nil, fmt.Errorf("sev import: %w", err)
	}
	for i := 0; i < st.Pages; i++ {
		pa := (uint64(asid)<<32 | uint64(i)) * PageSize
		if err := b.rmp.Assign(pa, asid); err != nil {
			return nil, fmt.Errorf("sev import: %w", err)
		}
		if err := b.rmp.Validate(pa, asid); err != nil {
			return nil, fmt.Errorf("sev import: %w", err)
		}
	}
	handle := sevLive{asid: asid, policy: st.Policy, digest: digest, pages: st.Pages}
	return b.guestForASID(handle, cfg, seed, img.ResumeCost, true), nil
}
