package sev

import (
	"context"
	"fmt"
	"sync"
	"time"

	"confbench/internal/cpumodel"
	"confbench/internal/faultplane"
	"confbench/internal/obs"
	"confbench/internal/tee"
)

// Options configures the SEV-SNP backend.
type Options struct {
	// Host is the machine profile; defaults to cpumodel.EPYC9124.
	Host cpumodel.Profile
	// Seed drives deterministic noise and the chip identity.
	Seed int64
	// Obs is the metrics registry the RMP and guests report to (nil =
	// the process-wide default).
	Obs *obs.Registry
	// Faults is the fault plane guests evaluate at the TEE injection
	// points (nil = fault-free).
	Faults *faultplane.Plane
}

// Backend implements tee.Backend for AMD SEV-SNP.
type Backend struct {
	host   cpumodel.Profile
	sp     *AMDSP
	rmp    *RMP
	obsreg *obs.Registry
	faults *faultplane.Plane

	mu       sync.Mutex
	nextASID uint32
	nextSeed int64
	// live maps running guest IDs to their migration handles (ASID,
	// policy, sealed launch digest, RMP donation shape) — what the
	// SNP migration agent streams to a destination host.
	live map[string]sevLive
}

// sevLive is the migration handle of one running SNP guest.
type sevLive struct {
	asid   uint32
	policy uint64
	digest [MeasurementSize]byte
	pages  int
}

var (
	_ tee.Backend     = (*Backend)(nil)
	_ tee.Snapshotter = (*Backend)(nil)
	_ tee.Migrator    = (*Backend)(nil)
)

// NewBackend provisions an SEV-SNP host: an AMD-SP with a fresh
// VCEK/ASK/ARK hierarchy and an empty RMP.
func NewBackend(opts Options) (*Backend, error) {
	if opts.Host.Name == "" {
		opts.Host = cpumodel.EPYC9124
	}
	if err := opts.Host.Validate(); err != nil {
		return nil, err
	}
	sp, err := NewAMDSP(opts.Seed)
	if err != nil {
		return nil, err
	}
	rmp := NewRMP()
	if opts.Obs != nil {
		rmp.SetObsRegistry(opts.Obs)
	}
	return &Backend{
		host:     opts.Host,
		sp:       sp,
		rmp:      rmp,
		obsreg:   opts.Obs,
		faults:   opts.Faults,
		nextASID: 1,
		nextSeed: opts.Seed + 1,
		live:     make(map[string]sevLive),
	}, nil
}

// Kind implements tee.Backend.
func (b *Backend) Kind() tee.Kind { return tee.KindSEV }

// Name implements tee.Backend.
func (b *Backend) Name() string {
	return fmt.Sprintf("AMD SEV-SNP on %s", b.host.Name)
}

// HostProfile implements tee.Backend.
func (b *Backend) HostProfile() cpumodel.Profile { return b.host }

// SecureProcessor exposes the AMD-SP, used by the attestation stack to
// fetch the VCEK certificate chain "from the underlying hardware".
func (b *Backend) SecureProcessor() *AMDSP { return b.sp }

// ReverseMap exposes the RMP for inspection in tests.
func (b *Backend) ReverseMap() *RMP { return b.rmp }

func (b *Backend) alloc() (asid uint32, seed int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	asid = b.nextASID
	b.nextASID++
	b.nextSeed++
	return asid, b.nextSeed
}

// CostModel returns the confidential-guest cost model. Relative to
// TDX the paper finds SEV-SNP slightly slower on CPU/memory work but
// faster on I/O (guest-shared unencrypted pages avoid the TDX bounce-
// buffer copy), with VMEXITs cheaper than TDCALL/SEAMCALL round trips.
func (b *Backend) CostModel() tee.CostModel {
	return tee.CostModel{
		CPUFactor:      1.035,
		MemFactor:      1.14,
		AllocFactor:    1.16,
		IOReadFactor:   1.30,
		IOWriteFactor:  1.42,
		NetFactor:      1.35,
		LogFactor:      1.28,
		FileOpFactor:   1.35,
		CtxSwitchFac:   1.75,
		SpawnFactor:    1.55,
		SyscallFactor:  1.12,
		ExitNs:         4600,
		ExitsPerSys:    0.006,
		ExitsPerSwitch: 1.00,
		PageAcceptNs:   600,
		StartupNs:      700e6,
		CacheBonusProb: 0.04,
		CacheBonusMag:  0.15,
		JitterStd:      0.022,
		// Restores replay RMP page donation (RMPUPDATE+PVALIDATE per
		// page) but install the saved launch digest in one firmware
		// call, skipping the per-page measurement hashing.
		SnapshotPageNs: 0.35e6,
		RestoreBaseNs:  100e6,
		RestorePageNs:  0.12e6,
	}
}

// bootBaseNs is the plain-VM boot cost on this host class.
const bootBaseNs = 2.0e9

// bootImagePages is the number of pages assigned, validated and
// measured during guest launch (one per MiB of configured memory).
func bootImagePages(cfg tee.GuestConfig) int { return cfg.MemoryMB }

// Launch implements tee.Backend: SNP_LAUNCH_START → per-page
// RMPUPDATE+PVALIDATE+LAUNCH_UPDATE → SNP_LAUNCH_FINISH.
func (b *Backend) Launch(cfg tee.GuestConfig) (tee.Guest, error) {
	cfg = cfg.WithDefaults()
	asid, seed := b.alloc()
	if cfg.Seed != 0 {
		seed = cfg.Seed
	}

	policy := uint64(0x3_0000) // SMT allowed, no debug, no migration
	if err := b.sp.LaunchStart(asid, policy); err != nil {
		return nil, fmt.Errorf("sev launch: %w", err)
	}
	for i := 0; i < bootImagePages(cfg); i++ {
		pa := (uint64(asid)<<32 | uint64(i)) * PageSize
		if err := b.rmp.Assign(pa, asid); err != nil {
			return nil, fmt.Errorf("sev launch: %w", err)
		}
		if err := b.rmp.Validate(pa, asid); err != nil {
			return nil, fmt.Errorf("sev launch: %w", err)
		}
		data := []byte(fmt.Sprintf("boot-image:%s:%d", cfg.Name, i))
		if err := b.sp.LaunchUpdate(asid, data); err != nil {
			return nil, fmt.Errorf("sev launch: %w", err)
		}
	}
	digest, err := b.sp.LaunchFinish(asid)
	if err != nil {
		return nil, fmt.Errorf("sev launch: %w", err)
	}
	handle := sevLive{asid: asid, policy: policy, digest: digest, pages: bootImagePages(cfg)}
	return b.guestForASID(handle, cfg, seed, 0, false), nil
}

// forgetASID drops the live-tracking entry of a decommissioned guest.
func (b *Backend) forgetASID(asid uint32) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for gid, h := range b.live {
		if h.asid == asid {
			delete(b.live, gid)
		}
	}
}

// guestForASID wraps a finished SNP context into a ModelGuest and
// tracks it live so ExportLive can find its migration handle.
func (b *Backend) guestForASID(h sevLive, cfg tee.GuestConfig, seed int64, bootOverride time.Duration, restored bool) tee.Guest {
	sp, rmp := b.sp, b.rmp
	g := tee.NewModelGuest(tee.ModelGuestConfig{
		IDPrefix:         "snp",
		Kind:             tee.KindSEV,
		Secure:           true,
		Model:            b.CostModel(),
		BootBase:         bootBaseNs,
		BootCostOverride: bootOverride,
		Restored:         restored,
		Seed:             seed,
		Obs:              b.obsreg,
		Faults:           b.faults,
		Host:             cfg.Name,
		Report: func(_ context.Context, nonce []byte) ([]byte, error) {
			r, err := sp.GuestRequestReport(h.asid, 0, nonce)
			if err != nil {
				return nil, err
			}
			return r.Marshal()
		},
		Destroy: func() error {
			b.forgetASID(h.asid)
			rmp.ReclaimAll(h.asid)
			sp.Decommission(h.asid)
			return nil
		},
	})
	b.mu.Lock()
	b.live[g.ID()] = h
	b.mu.Unlock()
	return g
}

// snpImage is the backend-private payload of an SEV-SNP guest image:
// the sealed launch digest and policy to import, and the page count to
// replay through the RMP.
type snpImage struct {
	policy uint64
	digest [MeasurementSize]byte
	pages  int
}

// Snapshot implements tee.Snapshotter: one full measured template
// launch whose sealed digest is captured, then decommissioned. Each
// restore imports that digest and replays only the RMP page donation.
func (b *Backend) Snapshot(cfg tee.GuestConfig) (*tee.GuestImage, error) {
	cfg = cfg.WithDefaults()
	asid, _ := b.alloc()
	policy := uint64(0x3_0000)
	if err := b.sp.LaunchStart(asid, policy); err != nil {
		return nil, fmt.Errorf("sev snapshot: %w", err)
	}
	for i := 0; i < bootImagePages(cfg); i++ {
		pa := (uint64(asid)<<32 | uint64(i)) * PageSize
		if err := b.rmp.Assign(pa, asid); err != nil {
			return nil, fmt.Errorf("sev snapshot: %w", err)
		}
		if err := b.rmp.Validate(pa, asid); err != nil {
			return nil, fmt.Errorf("sev snapshot: %w", err)
		}
		data := []byte(fmt.Sprintf("boot-image:%s:%d", cfg.Name, i))
		if err := b.sp.LaunchUpdate(asid, data); err != nil {
			return nil, fmt.Errorf("sev snapshot: %w", err)
		}
	}
	digest, err := b.sp.LaunchFinish(asid)
	if err != nil {
		return nil, fmt.Errorf("sev snapshot: %w", err)
	}
	// The template guest's only job was producing the digest.
	b.rmp.ReclaimAll(asid)
	b.sp.Decommission(asid)

	cm := b.CostModel()
	pages := bootImagePages(cfg)
	return &tee.GuestImage{
		Kind:        tee.KindSEV,
		MemoryMB:    cfg.MemoryMB,
		SizeBytes:   int64(cfg.MemoryMB) << 20,
		CaptureCost: time.Duration(bootBaseNs) + cm.BootCost() + cm.SnapshotCost(pages),
		RestoreCost: cm.RestoreCost(pages),
		Payload:     &snpImage{policy: policy, digest: digest, pages: pages},
	}, nil
}

// Restore implements tee.Snapshotter: a fresh ASID gets the imported
// launch digest in one firmware call, and the RMP page donation is
// replayed (Assign+Validate per page) without per-page measurement.
func (b *Backend) Restore(img *tee.GuestImage, cfg tee.GuestConfig) (tee.Guest, error) {
	if err := img.Validate(tee.KindSEV); err != nil {
		return nil, fmt.Errorf("sev restore: %w", err)
	}
	snp, ok := img.Payload.(*snpImage)
	if !ok {
		return nil, fmt.Errorf("sev restore: %w", tee.ErrImagePayload)
	}
	cfg = cfg.WithDefaults()
	asid, seed := b.alloc()
	if cfg.Seed != 0 {
		seed = cfg.Seed
	}
	if err := b.sp.LaunchImport(asid, snp.policy, snp.digest); err != nil {
		return nil, fmt.Errorf("sev restore: %w", err)
	}
	for i := 0; i < snp.pages; i++ {
		pa := (uint64(asid)<<32 | uint64(i)) * PageSize
		if err := b.rmp.Assign(pa, asid); err != nil {
			return nil, fmt.Errorf("sev restore: %w", err)
		}
		if err := b.rmp.Validate(pa, asid); err != nil {
			return nil, fmt.Errorf("sev restore: %w", err)
		}
	}
	handle := sevLive{asid: asid, policy: snp.policy, digest: snp.digest, pages: snp.pages}
	return b.guestForASID(handle, cfg, seed, img.RestoreCost, true), nil
}

// LaunchNormal implements tee.Backend: a plain VM on the same host.
func (b *Backend) LaunchNormal(cfg tee.GuestConfig) (tee.Guest, error) {
	cfg = cfg.WithDefaults()
	_, seed := b.alloc()
	if cfg.Seed != 0 {
		seed = cfg.Seed
	}
	return tee.NewModelGuest(tee.ModelGuestConfig{
		IDPrefix: "vm",
		Kind:     tee.KindNone,
		Secure:   false,
		Model:    tee.NormalCostModel(),
		BootBase: bootBaseNs,
		Seed:     seed,
		Obs:      b.obsreg,
	}), nil
}
