package sev

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha512"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math/big"
	"sync"
	"time"
)

// AMD-SP errors.
var (
	ErrGuestNotLaunched = errors.New("sev: guest not launched on AMD-SP")
	ErrLaunchFinished   = errors.New("sev: launch already finished")
	ErrLaunchNotDone    = errors.New("sev: launch not finished")
	ErrReportData       = errors.New("sev: report data must be at most 64 bytes")
)

// ReportDataSize is the guest-supplied data field size in a report.
const ReportDataSize = 64

// MeasurementSize is the launch-digest length (SHA-384).
const MeasurementSize = sha512.Size384

// TCBVersion captures the platform TCB component versions reported
// and signed by the firmware.
type TCBVersion struct {
	Bootloader uint8 `json:"bootloader"`
	TEE        uint8 `json:"tee"`
	SNPFw      uint8 `json:"snp_fw"`
	Microcode  uint8 `json:"microcode"`
}

// Encode packs the TCB into the uint64 wire form used by chips.
func (t TCBVersion) Encode() uint64 {
	var b [8]byte
	b[0] = t.Bootloader
	b[1] = t.TEE
	b[6] = t.SNPFw
	b[7] = t.Microcode
	return binary.LittleEndian.Uint64(b[:])
}

// Report is the SNP attestation report returned by the firmware. It
// is signed with the chip's VCEK (ECDSA P-384 over SHA-384), and the
// VCEK is certified by the ASK/ARK chain that verifiers retrieve from
// the hardware (unlike TDX, no network round trip is needed — the
// paper's Fig. 5 shows this as faster "attest" and "check" phases).
type Report struct {
	Version     uint32                `json:"version"`
	GuestSVN    uint32                `json:"guest_svn"`
	Policy      uint64                `json:"policy"`
	Measurement [MeasurementSize]byte `json:"measurement"`
	HostData    [32]byte              `json:"host_data"`
	ReportData  [ReportDataSize]byte  `json:"report_data"`
	ChipID      [64]byte              `json:"chip_id"`
	CurrentTCB  TCBVersion            `json:"current_tcb"`
	ReportedTCB TCBVersion            `json:"reported_tcb"`
	VMPL        uint32                `json:"vmpl"`
	SignatureR  []byte                `json:"sig_r"`
	SignatureS  []byte                `json:"sig_s"`
}

// SignedBytes returns the byte string covered by the VCEK signature.
func (r *Report) SignedBytes() []byte {
	c := *r
	c.SignatureR, c.SignatureS = nil, nil
	b, err := json.Marshal(&c)
	if err != nil {
		// Marshaling a plain struct of fixed types cannot fail; guard
		// anyway so the signature never silently covers nothing.
		panic(fmt.Sprintf("sev: marshal report: %v", err))
	}
	return b
}

// Marshal serializes the report for transport.
func (r *Report) Marshal() ([]byte, error) { return json.Marshal(r) }

// UnmarshalReport parses a serialized SNP report.
func UnmarshalReport(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("sev: parse report: %w", err)
	}
	return &r, nil
}

// CertChain carries the DER-encoded VCEK → ASK → ARK certificates a
// verifier needs. On real hardware these come from the AMD-SP / AMD
// KDS; here the coprocessor hands them out directly.
type CertChain struct {
	VCEK []byte `json:"vcek"`
	ASK  []byte `json:"ask"`
	ARK  []byte `json:"ark"`
}

type launchCtx struct {
	asid     uint32
	policy   uint64
	digest   [MeasurementSize]byte
	finished bool
}

// AMDSP simulates the AMD Secure Processor: the dedicated coprocessor
// that owns the chip endorsement keys, measures guest launches, and
// signs attestation reports.
type AMDSP struct {
	mu      sync.Mutex
	chipID  [64]byte
	tcb     TCBVersion
	arkKey  *ecdsa.PrivateKey
	askKey  *ecdsa.PrivateKey
	vcekKey *ecdsa.PrivateKey
	chain   CertChain
	guests  map[uint32]*launchCtx
}

// NewAMDSP provisions a secure processor with a fresh ARK/ASK/VCEK
// ECDSA P-384 hierarchy (real keys, real X.509 certificates).
func NewAMDSP(seed int64) (*AMDSP, error) {
	sp := &AMDSP{
		tcb:    TCBVersion{Bootloader: 4, TEE: 0, SNPFw: 21, Microcode: 209},
		guests: make(map[uint32]*launchCtx, 4),
	}
	var seedBytes [8]byte
	binary.LittleEndian.PutUint64(seedBytes[:], uint64(seed))
	chip := sha512.Sum512(append([]byte("amd-chip-id:"), seedBytes[:]...))
	copy(sp.chipID[:], chip[:])

	var err error
	if sp.arkKey, err = ecdsa.GenerateKey(elliptic.P384(), rand.Reader); err != nil {
		return nil, fmt.Errorf("sev: generate ARK: %w", err)
	}
	if sp.askKey, err = ecdsa.GenerateKey(elliptic.P384(), rand.Reader); err != nil {
		return nil, fmt.Errorf("sev: generate ASK: %w", err)
	}
	if sp.vcekKey, err = ecdsa.GenerateKey(elliptic.P384(), rand.Reader); err != nil {
		return nil, fmt.Errorf("sev: generate VCEK: %w", err)
	}
	if err := sp.buildChain(); err != nil {
		return nil, err
	}
	return sp, nil
}

func (sp *AMDSP) buildChain() error {
	notBefore := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	notAfter := notBefore.AddDate(25, 0, 0)

	arkTpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: "ARK-Genoa", Organization: []string{"Advanced Micro Devices (simulated)"}},
		NotBefore:             notBefore,
		NotAfter:              notAfter,
		IsCA:                  true,
		BasicConstraintsValid: true,
		KeyUsage:              x509.KeyUsageCertSign,
	}
	arkDER, err := x509.CreateCertificate(rand.Reader, arkTpl, arkTpl, &sp.arkKey.PublicKey, sp.arkKey)
	if err != nil {
		return fmt.Errorf("sev: create ARK cert: %w", err)
	}
	arkCert, err := x509.ParseCertificate(arkDER)
	if err != nil {
		return fmt.Errorf("sev: parse ARK cert: %w", err)
	}

	askTpl := &x509.Certificate{
		SerialNumber:          big.NewInt(2),
		Subject:               pkix.Name{CommonName: "SEV-Genoa (ASK)", Organization: []string{"Advanced Micro Devices (simulated)"}},
		NotBefore:             notBefore,
		NotAfter:              notAfter,
		IsCA:                  true,
		BasicConstraintsValid: true,
		KeyUsage:              x509.KeyUsageCertSign,
	}
	askDER, err := x509.CreateCertificate(rand.Reader, askTpl, arkCert, &sp.askKey.PublicKey, sp.arkKey)
	if err != nil {
		return fmt.Errorf("sev: create ASK cert: %w", err)
	}
	askCert, err := x509.ParseCertificate(askDER)
	if err != nil {
		return fmt.Errorf("sev: parse ASK cert: %w", err)
	}

	vcekTpl := &x509.Certificate{
		SerialNumber: big.NewInt(3),
		Subject:      pkix.Name{CommonName: "SEV-VCEK", Organization: []string{"Advanced Micro Devices (simulated)"}},
		NotBefore:    notBefore,
		NotAfter:     notAfter,
		KeyUsage:     x509.KeyUsageDigitalSignature,
	}
	vcekDER, err := x509.CreateCertificate(rand.Reader, vcekTpl, askCert, &sp.vcekKey.PublicKey, sp.askKey)
	if err != nil {
		return fmt.Errorf("sev: create VCEK cert: %w", err)
	}

	sp.chain = CertChain{VCEK: vcekDER, ASK: askDER, ARK: arkDER}
	return nil
}

// CertChainCopy returns the DER certificate chain (VCEK, ASK, ARK).
func (sp *AMDSP) CertChainCopy() CertChain {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	c := CertChain{
		VCEK: append([]byte(nil), sp.chain.VCEK...),
		ASK:  append([]byte(nil), sp.chain.ASK...),
		ARK:  append([]byte(nil), sp.chain.ARK...),
	}
	return c
}

// TCB returns the current platform TCB version.
func (sp *AMDSP) TCB() TCBVersion {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.tcb
}

// LaunchStart opens a launch context for the guest with asid and
// policy (SNP_LAUNCH_START).
func (sp *AMDSP) LaunchStart(asid uint32, policy uint64) error {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if _, ok := sp.guests[asid]; ok {
		return fmt.Errorf("sev: ASID %d already launching", asid)
	}
	sp.guests[asid] = &launchCtx{asid: asid, policy: policy}
	return nil
}

// LaunchUpdate measures data into the guest's launch digest
// (SNP_LAUNCH_UPDATE): digest = SHA384(digest || SHA384(data)).
func (sp *AMDSP) LaunchUpdate(asid uint32, data []byte) error {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	ctx, ok := sp.guests[asid]
	if !ok {
		return ErrGuestNotLaunched
	}
	if ctx.finished {
		return ErrLaunchFinished
	}
	h := sha512.New384()
	h.Write(ctx.digest[:])
	d := sha512.Sum384(data)
	h.Write(d[:])
	copy(ctx.digest[:], h.Sum(nil))
	return nil
}

// LaunchImport installs a previously captured launch digest for asid
// in one firmware call, skipping the per-page LAUNCH_UPDATE hashing
// (modeled on the SNP migration-agent import path). The guest comes up
// already finished, so attestation reports carry the imported
// measurement.
func (sp *AMDSP) LaunchImport(asid uint32, policy uint64, digest [MeasurementSize]byte) error {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if _, ok := sp.guests[asid]; ok {
		return fmt.Errorf("sev: ASID %d already launching", asid)
	}
	sp.guests[asid] = &launchCtx{asid: asid, policy: policy, digest: digest, finished: true}
	return nil
}

// LaunchFinish seals the launch digest (SNP_LAUNCH_FINISH).
func (sp *AMDSP) LaunchFinish(asid uint32) ([MeasurementSize]byte, error) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	ctx, ok := sp.guests[asid]
	if !ok {
		return [MeasurementSize]byte{}, ErrGuestNotLaunched
	}
	if ctx.finished {
		return [MeasurementSize]byte{}, ErrLaunchFinished
	}
	ctx.finished = true
	return ctx.digest, nil
}

// GuestRequestReport produces a VCEK-signed attestation report for a
// finished guest (MSG_REPORT_REQ through /dev/sev-guest).
func (sp *AMDSP) GuestRequestReport(asid uint32, vmpl uint32, reportData []byte) (*Report, error) {
	if len(reportData) > ReportDataSize {
		return nil, ErrReportData
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	ctx, ok := sp.guests[asid]
	if !ok {
		return nil, ErrGuestNotLaunched
	}
	if !ctx.finished {
		return nil, ErrLaunchNotDone
	}
	r := &Report{
		Version:     2,
		GuestSVN:    1,
		Policy:      ctx.policy,
		Measurement: ctx.digest,
		ChipID:      sp.chipID,
		CurrentTCB:  sp.tcb,
		ReportedTCB: sp.tcb,
		VMPL:        vmpl,
	}
	copy(r.ReportData[:], reportData)

	digest := sha512.Sum384(r.SignedBytes())
	sigR, sigS, err := ecdsa.Sign(rand.Reader, sp.vcekKey, digest[:])
	if err != nil {
		return nil, fmt.Errorf("sev: sign report: %w", err)
	}
	r.SignatureR = sigR.Bytes()
	r.SignatureS = sigS.Bytes()
	return r, nil
}

// Decommission removes the launch context for asid.
func (sp *AMDSP) Decommission(asid uint32) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	delete(sp.guests, asid)
}
