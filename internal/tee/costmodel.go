package tee

import (
	"math"
	"math/rand"
	"time"

	"confbench/internal/cpumodel"
	"confbench/internal/meter"
)

// CostModel encodes how a TEE inflates the base execution cost of a
// workload. The factors map onto the mechanisms the paper identifies:
//
//   - memory encryption and integrity checking scale the cost of
//     memory traffic (MemFactor) and of fresh allocations, which
//     require page acceptance / RMP updates (AllocFactor, PageAcceptNs);
//   - I/O through unprotected shared memory pays a per-byte copy tax —
//     the TDX bounce-buffer effect (IOReadFactor/IOWriteFactor);
//   - every syscall may force a world transition whose latency is
//     ExitNs (TDCALL/SEAMCALL on TDX, VMEXIT on SEV-SNP, RSI on CCA);
//   - context switches and process creation are amplified by the
//     "frequent sleep and wake-up events" effect reported for
//     UnixBench (CtxSwitchFactor, SpawnFactor).
//
// CacheBonusProb models the paper's counterintuitive finding that a
// few workloads run *faster* in the secure VM thanks to higher cache
// hit rates: with that probability a run's memory component receives a
// CacheBonusMag discount that can push the total below the normal-VM
// baseline.
type CostModel struct {
	CPUFactor     float64 // multiplier on CPU/FP op cost (≈1)
	MemFactor     float64 // multiplier on bytes-touched cost
	AllocFactor   float64 // multiplier on bytes-allocated cost
	IOReadFactor  float64 // multiplier on storage reads
	IOWriteFactor float64 // multiplier on storage writes
	NetFactor     float64 // multiplier on network traffic
	LogFactor     float64 // multiplier on console logging
	FileOpFactor  float64 // multiplier on file metadata ops
	CtxSwitchFac  float64 // multiplier on context switches
	SpawnFactor   float64 // multiplier on process creation
	SyscallFactor float64 // multiplier on kernel-entry cost
	ExitNs        float64 // latency of one TEE world transition
	ExitsPerSys   float64 // world transitions per syscall (plain
	// syscalls stay inside the guest; only the small device/timer
	// share forces a transition)
	ExitsPerSwitch float64 // world transitions per context switch —
	// the "frequent sleep and wake-up events" effect the paper cites
	// for UnixBench slowdowns
	PageAcceptNs   float64 // extra cost per first-touch page fault
	StartupNs      float64 // one-time guest boot overhead
	CacheBonusProb float64 // share of workload signatures that enjoy a
	// cache-residency bonus inside the secure guest
	CacheBonusMag float64 // relative compute/memory discount on bonus
	// signatures
	JitterStd float64 // relative gaussian noise on the total

	// Snapshot/restore pricing. Capturing a guest memory image pays a
	// per-page export cost on top of the full measured build; restoring
	// from the image pays a fixed base (re-create the guest context,
	// install the saved measurement) plus a per-page replay charge
	// (page-table/RMP re-donation without re-hashing). The asymmetry —
	// restore skips the measurement work that dominates launch — is what
	// makes warm starts cheap.
	SnapshotPageNs float64 // per-page memory-image capture cost
	RestoreBaseNs  float64 // fixed guest-context rebuild cost on restore
	RestorePageNs  float64 // per-page unmeasured replay cost on restore

	// salt individualizes the cache-bonus signature hash per guest;
	// set by the guest at launch.
	salt uint64
}

// WithSalt returns a copy of the model carrying the guest's signature
// salt.
func (cm CostModel) WithSalt(salt uint64) CostModel {
	cm.salt = salt
	return cm
}

// NormalCostModel returns the identity model used by non-confidential
// guests: factors of 1, no transition charges, small scheduler jitter.
func NormalCostModel() CostModel {
	return CostModel{
		CPUFactor:     1,
		MemFactor:     1,
		AllocFactor:   1,
		IOReadFactor:  1,
		IOWriteFactor: 1,
		NetFactor:     1,
		LogFactor:     1,
		FileOpFactor:  1,
		CtxSwitchFac:  1,
		SpawnFactor:   1,
		JitterStd:     0.012,
	}
}

// factor returns the multiplier applied to counter c, defaulting to 1.
func (cm CostModel) factor(c meter.Counter) float64 {
	var f float64
	switch c {
	case meter.CPUOps, meter.FPOps:
		f = cm.CPUFactor
	case meter.BytesTouched:
		f = cm.MemFactor
	case meter.BytesAllocated:
		f = cm.AllocFactor
	case meter.IOReadBytes:
		f = cm.IOReadFactor
	case meter.IOWriteBytes:
		f = cm.IOWriteFactor
	case meter.NetBytes:
		f = cm.NetFactor
	case meter.LogLines:
		f = cm.LogFactor
	case meter.FileOps:
		f = cm.FileOpFactor
	case meter.ContextSwitches:
		f = cm.CtxSwitchFac
	case meter.ProcessSpawns:
		f = cm.SpawnFactor
	case meter.Syscalls:
		f = cm.SyscallFactor
	}
	if f <= 0 {
		return 1
	}
	return f
}

// Apply prices usage u with base breakdown `base` under the model,
// drawing noise from rng. It returns the adjusted charge.
//
// The cache-residency bonus models the paper's counterintuitive
// finding that some workloads run consistently *faster* in the secure
// VM (higher cache-line hit rates, cf. TDXdown-style cache behaviour
// shifts): whether a workload benefits is a stable property of its
// resource signature on a given guest, so the same (function,
// language) cell dips below 1.0 on every trial rather than flickering.
func (cm CostModel) Apply(u meter.Usage, base cpumodel.Breakdown, rng *rand.Rand) Charge {
	adj := make(cpumodel.Breakdown, len(base)+2)

	discount := 1.0
	if cm.CacheBonusProb > 0 {
		h := cm.signatureHash(u)
		if float64(h%1000)/1000 < cm.CacheBonusProb {
			// Bonus magnitude varies per signature in
			// [CacheBonusMag/2, CacheBonusMag].
			frac := 0.5 + float64(h>>10%512)/1024
			discount = 1 - cm.CacheBonusMag*frac
			if discount < 0 {
				discount = 0
			}
		}
	}

	for c, d := range base {
		f := cm.factor(c)
		switch c {
		case meter.BytesTouched, meter.BytesAllocated, meter.CPUOps, meter.FPOps:
			f *= discount
		}
		nd := time.Duration(float64(d) * f)
		if nd > 0 {
			adj[c] = nd
		}
	}

	// World transitions forced by device/timer syscalls and by
	// scheduler sleep/wake events.
	exits := uint64(float64(u.Get(meter.Syscalls))*cm.ExitsPerSys) +
		uint64(float64(u.Get(meter.ContextSwitches))*cm.ExitsPerSwitch)
	if exitCost := time.Duration(float64(exits) * cm.ExitNs); exitCost > 0 {
		adj[meter.Syscalls] += exitCost
	}

	// Page-acceptance cost for first-touch faults.
	if faults := u.Get(meter.PageFaults); faults > 0 && cm.PageAcceptNs > 0 {
		adj[meter.PageFaults] += time.Duration(float64(faults) * cm.PageAcceptNs)
	}

	total := adj.Total()
	if cm.JitterStd > 0 && total > 0 {
		noise := 1 + rng.NormFloat64()*cm.JitterStd
		// Clamp to ±4σ so a single draw cannot dominate a run.
		lo, hi := 1-4*cm.JitterStd, 1+4*cm.JitterStd
		noise = math.Max(lo, math.Min(hi, noise))
		if noise < 0.05 {
			noise = 0.05
		}
		total = time.Duration(float64(total) * noise)
	}

	return Charge{Breakdown: adj, Exits: exits, Total: total}
}

// BootCost returns the one-time launch overhead of the model.
func (cm CostModel) BootCost() time.Duration {
	return time.Duration(cm.StartupNs)
}

// SnapshotCost returns the one-time cost of capturing a guest memory
// image of the given page count (the backends' per-MiB boot-image
// granularity), charged on top of the full measured build.
func (cm CostModel) SnapshotCost(pages int) time.Duration {
	if pages < 0 {
		pages = 0
	}
	return time.Duration(cm.SnapshotPageNs * float64(pages))
}

// RestoreCost returns the boot cost of a guest rebuilt from a captured
// image: the fixed context-rebuild base plus the per-page replay
// charge. Restored guests report this as their BootCost in place of
// the full measured launch.
func (cm CostModel) RestoreCost(pages int) time.Duration {
	if pages < 0 {
		pages = 0
	}
	return time.Duration(cm.RestoreBaseNs + cm.RestorePageNs*float64(pages))
}

// signatureHash derives a stable per-guest hash of the usage pattern
// (FNV-1a over quantized counter magnitudes mixed with the guest
// salt). Quantizing to the leading bits keeps the signature stable
// under small trial-to-trial count variations.
func (cm CostModel) signatureHash(u meter.Usage) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset) ^ cm.salt
	for _, c := range meter.AllCounters() {
		v := u.Get(c)
		// Quantize to order of magnitude + top 3 bits.
		var q uint64
		for v > 15 {
			v >>= 1
			q++
		}
		h ^= q<<8 | v
		h *= prime
		h ^= uint64(c)
		h *= prime
	}
	return h
}
