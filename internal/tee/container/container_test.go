package container

import (
	"context"
	"testing"

	"confbench/internal/faas"
	"confbench/internal/tee"
	"confbench/internal/tee/tdx"
	"confbench/internal/vm"
)

func wrapped(t *testing.T) *Backend {
	t.Helper()
	inner, err := tdx.NewBackend(tdx.Options{Seed: 81})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBackend(inner, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBackendMetadata(t *testing.T) {
	b := wrapped(t)
	if b.Kind() != tee.KindTDX {
		t.Errorf("kind = %v", b.Kind())
	}
	if b.Name() == "" || b.HostProfile().Name == "" {
		t.Error("metadata incomplete")
	}
	if b.Inner().Kind() != tee.KindTDX {
		t.Error("inner lost")
	}
}

func TestNewBackendValidation(t *testing.T) {
	if _, err := NewBackend(nil, Options{}); err == nil {
		t.Error("nil inner accepted")
	}
}

func TestContainerBootsAndAttests(t *testing.T) {
	b := wrapped(t)
	g, err := b.Launch(tee.GuestConfig{MemoryMB: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Destroy()
	if !g.Secure() {
		t.Error("confidential container not secure")
	}
	// Attestation flows through the pod VM's TD.
	if ev, err := g.AttestationReport(context.Background(), []byte("n")); err != nil || len(ev) == 0 {
		t.Errorf("attest: %v", err)
	}
	// The container stack adds startup on top of the pod VM's boot.
	pod, err := b.Inner().Launch(tee.GuestConfig{MemoryMB: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer pod.Destroy()
	if g.BootCost() <= pod.BootCost() {
		t.Errorf("container boot %v should exceed pod VM boot %v", g.BootCost(), pod.BootCost())
	}
}

func TestContainersUnpracticalForIO(t *testing.T) {
	// §V: serverless in confidential containers has "unpractical
	// results". The confidential-container/plain-container ratio on
	// I/O work must clearly exceed the confidential-VM/normal-VM
	// ratio on the same host.
	b := wrapped(t)
	ratioFor := func(backend tee.Backend) float64 {
		pair, err := vm.NewPair(backend, tee.GuestConfig{MemoryMB: 4}, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer pair.Stop()
		fn := faas.Function{Name: "f", Language: "go", Workload: "iostress"}
		var s, n float64
		for i := 0; i < 4; i++ {
			sr, err := pair.Secure.InvokeFunction(context.Background(), fn, 2)
			if err != nil {
				t.Fatal(err)
			}
			nr, err := pair.Normal.InvokeFunction(context.Background(), fn, 2)
			if err != nil {
				t.Fatal(err)
			}
			s += sr.Wall.Seconds()
			n += nr.Wall.Seconds()
		}
		return s / n
	}
	vmRatio := ratioFor(b.Inner())
	containerRatio := ratioFor(b)
	// The plain container also pays the stack, so the pure ratio can
	// be close; the *absolute* confidential-container time is what
	// becomes unpractical. Check both views.
	if containerRatio < 1.0 {
		t.Errorf("container ratio = %.2f", containerRatio)
	}
	pairVM, err := vm.NewPair(b.Inner(), tee.GuestConfig{MemoryMB: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer pairVM.Stop()
	pairCC, err := vm.NewPair(b, tee.GuestConfig{MemoryMB: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer pairCC.Stop()
	fn := faas.Function{Name: "f", Language: "go", Workload: "iostress"}
	ccRes, err := pairCC.Secure.InvokeFunction(context.Background(), fn, 2)
	if err != nil {
		t.Fatal(err)
	}
	vmRes, err := pairVM.Secure.InvokeFunction(context.Background(), fn, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ccRes.Wall.Seconds() < 1.8*vmRes.Wall.Seconds() {
		t.Errorf("confidential container I/O (%v) should far exceed confidential VM (%v); vm ratio %.2f",
			ccRes.Wall, vmRes.Wall, vmRatio)
	}
}
