// Package container models confidential containers — the additional
// execution-unit type the paper's §V and §VI discuss: serverless
// workloads "can be deployed in confidential containers, however with
// unpractical results from the resulting overheads. Similar results
// can easily be reproduced leveraging ConfBench: we remark that its
// design can accommodate new types of confidential virtual machines,
// including containers".
//
// A confidential container (Kata/CoCo-style) runs inside a pod VM on
// a TEE host, so it pays the host TEE's confidential-computing costs
// *plus* the container stack's own: the in-guest agent and runtime,
// the virtio-fs/overlayfs storage path, per-request pod plumbing, and
// a much heavier startup (image pull + measured pod VM boot). The
// backend composes any TEE backend's cost model with those
// amplifications, demonstrating the §III-A extension point.
package container

import (
	"fmt"

	"confbench/internal/cpumodel"
	"confbench/internal/tee"
)

// costModeler is satisfied by the tdx, sev, and cca backends.
type costModeler interface {
	CostModel() tee.CostModel
}

// Options tunes the container stack's overheads. Zero values select
// defaults calibrated to the "unpractical" containers of §V.
type Options struct {
	// IOFactor multiplies storage factors (virtio-fs + overlayfs).
	IOFactor float64
	// SyscallFactor multiplies kernel-entry cost (agent forwarding).
	SyscallFactor float64
	// CPUFactor multiplies compute cost (runtime shims).
	CPUFactor float64
	// MemFactor multiplies memory-traffic cost.
	MemFactor float64
	// ExtraStartupNs adds image-pull + pod-boot time.
	ExtraStartupNs float64
}

func (o Options) withDefaults() Options {
	if o.IOFactor <= 0 {
		o.IOFactor = 2.6
	}
	if o.SyscallFactor <= 0 {
		o.SyscallFactor = 1.8
	}
	if o.CPUFactor <= 0 {
		o.CPUFactor = 1.06
	}
	if o.MemFactor <= 0 {
		o.MemFactor = 1.12
	}
	if o.ExtraStartupNs <= 0 {
		o.ExtraStartupNs = 4.5e9
	}
	return o
}

// Backend wraps a TEE backend so that its confidential guests run
// workloads as confidential containers. Normal guests model plain
// (non-confidential) containers on the same host, so ratios compare
// like with like.
type Backend struct {
	inner tee.Backend
	opts  Options
}

var _ tee.Backend = (*Backend)(nil)

// NewBackend wraps inner. The inner backend must expose its cost
// model (the tdx, sev, and cca backends all do).
func NewBackend(inner tee.Backend, opts Options) (*Backend, error) {
	if inner == nil {
		return nil, fmt.Errorf("container: nil inner backend")
	}
	if _, ok := inner.(costModeler); !ok {
		return nil, fmt.Errorf("container: backend %q does not expose a cost model", inner.Kind())
	}
	return &Backend{inner: inner, opts: opts.withDefaults()}, nil
}

// Kind implements tee.Backend: containers keep the host platform's
// kind so gateway pools and monitors treat them consistently.
func (b *Backend) Kind() tee.Kind { return b.inner.Kind() }

// Name implements tee.Backend.
func (b *Backend) Name() string {
	return fmt.Sprintf("confidential containers on %s", b.inner.Name())
}

// HostProfile implements tee.Backend.
func (b *Backend) HostProfile() cpumodel.Profile { return b.inner.HostProfile() }

// Inner returns the wrapped backend.
func (b *Backend) Inner() tee.Backend { return b.inner }

// composeModel layers the container stack's costs on top of cm.
func (b *Backend) composeModel(cm tee.CostModel) tee.CostModel {
	o := b.opts
	cm.CPUFactor *= o.CPUFactor
	cm.MemFactor *= o.MemFactor
	cm.IOReadFactor *= o.IOFactor
	cm.IOWriteFactor *= o.IOFactor
	cm.NetFactor *= o.IOFactor
	cm.FileOpFactor *= o.IOFactor
	cm.LogFactor *= o.SyscallFactor
	cm.SyscallFactor *= o.SyscallFactor
	cm.SpawnFactor *= 1.5 // pod plumbing around every process
	cm.StartupNs += o.ExtraStartupNs
	return cm
}

// containerNormalModel prices a plain (non-confidential) container:
// the container stack without the TEE charges.
func (b *Backend) containerNormalModel() tee.CostModel {
	return b.composeModel(tee.NormalCostModel())
}

// Launch implements tee.Backend: a confidential container inside a
// pod VM launched on the inner TEE. The pod VM is real — lifecycle
// and attestation flow through it — while pricing uses the composed
// model.
func (b *Backend) Launch(cfg tee.GuestConfig) (tee.Guest, error) {
	cfg = cfg.WithDefaults()
	pod, err := b.inner.Launch(cfg)
	if err != nil {
		return nil, fmt.Errorf("container: launch pod VM: %w", err)
	}
	model := b.composeModel(b.inner.(costModeler).CostModel())
	return tee.NewModelGuest(tee.ModelGuestConfig{
		IDPrefix: "cc",
		Kind:     b.Kind(),
		Secure:   true,
		Model:    model,
		BootBase: pod.BootCost(),
		Seed:     cfg.Seed + 7_000_000,
		Report:   pod.AttestationReport,
		Destroy:  pod.Destroy,
	}), nil
}

// LaunchNormal implements tee.Backend: a plain container on the host.
func (b *Backend) LaunchNormal(cfg tee.GuestConfig) (tee.Guest, error) {
	cfg = cfg.WithDefaults()
	vm, err := b.inner.LaunchNormal(cfg)
	if err != nil {
		return nil, fmt.Errorf("container: launch plain container host VM: %w", err)
	}
	return tee.NewModelGuest(tee.ModelGuestConfig{
		IDPrefix: "ct",
		Kind:     tee.KindNone,
		Secure:   false,
		Model:    b.containerNormalModel(),
		BootBase: vm.BootCost(),
		Seed:     cfg.Seed + 8_000_000,
		Destroy:  vm.Destroy,
	}), nil
}
