// Package tee defines the trusted-execution-environment abstraction
// used throughout ConfBench.
//
// A Backend models one TEE technology (Intel TDX, AMD SEV-SNP, ARM
// CCA) and launches Guests — confidential VM contexts that charge
// TEE-specific overheads on top of the base machine cost computed by
// internal/cpumodel. The NoTEE backend models the "normal VM" of the
// paper, so overhead ratios come out of running the same workload
// under two guests of the same host.
//
// Concrete implementations live in the tdx, sev, and cca
// sub-packages; they add structural simulations (TDX module SEAM
// transitions, the SEV RMP, the CCA RMM) that the attestation stack
// and the tests exercise directly.
package tee

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"confbench/internal/cpumodel"
	"confbench/internal/meter"
)

// Kind identifies a TEE technology. The zero value is invalid.
type Kind string

// Supported TEE kinds. KindNone denotes a regular, non-confidential
// VM used as the comparison baseline.
const (
	KindNone Kind = "none"
	KindTDX  Kind = "tdx"
	KindSEV  Kind = "sev-snp"
	KindCCA  Kind = "cca"
)

// Valid reports whether k names a known TEE kind.
func (k Kind) Valid() bool {
	switch k {
	case KindNone, KindTDX, KindSEV, KindCCA:
		return true
	default:
		return false
	}
}

// Secure reports whether guests of this kind are confidential.
func (k Kind) Secure() bool { return k.Valid() && k != KindNone }

// Errors shared by TEE implementations.
var (
	// ErrGuestDestroyed is returned when operating on a torn-down guest.
	ErrGuestDestroyed = errors.New("tee: guest destroyed")
	// ErrNotSecure is returned when requesting attestation from a
	// non-confidential guest.
	ErrNotSecure = errors.New("tee: guest is not confidential")
	// ErrNoAttestation is returned when the platform cannot attest
	// (e.g. the FVP simulator lacks the hardware support, §IV-B).
	ErrNoAttestation = errors.New("tee: attestation not supported on this platform")
)

// GuestConfig parameterizes a guest launch.
type GuestConfig struct {
	// Name labels the guest (for reports and routing).
	Name string
	// MemoryMB is the guest RAM size.
	MemoryMB int
	// VCPUs is the number of virtual CPUs.
	VCPUs int
	// Seed drives the guest's deterministic noise source. Two guests
	// launched with the same seed charge identical jitter sequences.
	Seed int64
}

// WithDefaults fills unset fields with sane defaults. Memory is
// clamped to 4 GiB so measured boot flows stay cheap.
func (c GuestConfig) WithDefaults() GuestConfig {
	if c.MemoryMB <= 0 {
		c.MemoryMB = 256
	}
	if c.MemoryMB > 4096 {
		c.MemoryMB = 4096
	}
	if c.VCPUs <= 0 {
		c.VCPUs = 2
	}
	if c.Name == "" {
		c.Name = "guest"
	}
	return c
}

// Charge is the outcome of pricing one workload execution inside a
// guest: the adjusted per-counter breakdown, the TEE transition count,
// and the total adjusted duration.
type Charge struct {
	// Breakdown is the adjusted per-counter cost.
	Breakdown cpumodel.Breakdown
	// Exits counts world/VM transitions (TDCALL+SEAMCALL for TDX,
	// VMEXIT for SEV-SNP, RSI/RMI for CCA).
	Exits uint64
	// Total is the adjusted wall-clock estimate.
	Total time.Duration
	// Fault names the injected fault kind when the fault plane fired
	// at a TEE point during pricing ("" = clean). TEE-layer faults
	// degrade virtual time rather than erroring: pricing has no error
	// channel, and a slow transition path is what a wedged TDX module
	// or RMP contention actually looks like.
	Fault string
	// FaultDelay is the virtual time the fault added to Total.
	FaultDelay time.Duration
}

// Guest is a running (confidential or normal) VM context.
type Guest interface {
	// ID returns a unique guest identifier.
	ID() string
	// Kind returns the backing TEE kind.
	Kind() Kind
	// Secure reports whether the guest is confidential.
	Secure() bool
	// BootCost returns the one-time launch cost of the guest.
	BootCost() time.Duration
	// Price computes the in-guest cost of a workload whose metered
	// usage is u and whose base (bare-host) cost is base.
	Price(u meter.Usage, base cpumodel.Breakdown) Charge
	// AttestationReport produces serialized attestation evidence bound
	// to nonce. Non-secure guests return ErrNotSecure; platforms
	// without attestation hardware return ErrNoAttestation. A canceled
	// ctx aborts the request before the firmware round trip.
	AttestationReport(ctx context.Context, nonce []byte) ([]byte, error)
	// Destroy tears the guest down and releases its resources.
	Destroy() error
}

// Backend models one TEE platform on a host machine.
type Backend interface {
	// Kind returns the TEE kind this backend implements.
	Kind() Kind
	// Name returns a human-readable platform description.
	Name() string
	// HostProfile returns the machine profile of the host.
	HostProfile() cpumodel.Profile
	// Launch starts a confidential guest.
	Launch(cfg GuestConfig) (Guest, error)
	// LaunchNormal starts a plain guest on the same host, used as the
	// normal-VM baseline of the paper's experiments.
	LaunchNormal(cfg GuestConfig) (Guest, error)
}

// Registry maps kinds to backends, mirroring the gateway configuration
// file that "maps TEEs and their interface ports" (§III-A).
type Registry struct {
	mu       sync.RWMutex
	backends map[Kind]Backend
}

// NewRegistry returns an empty backend registry.
func NewRegistry() *Registry {
	return &Registry{backends: make(map[Kind]Backend, 4)}
}

// Register installs a backend; re-registering a kind replaces it.
func (r *Registry) Register(b Backend) error {
	if b == nil {
		return errors.New("tee: nil backend")
	}
	if !b.Kind().Valid() || b.Kind() == KindNone {
		return fmt.Errorf("tee: cannot register backend of kind %q", b.Kind())
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.backends[b.Kind()] = b
	return nil
}

// Lookup returns the backend for kind k.
func (r *Registry) Lookup(k Kind) (Backend, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	b, ok := r.backends[k]
	if !ok {
		return nil, fmt.Errorf("tee: no backend registered for %q", k)
	}
	return b, nil
}

// Kinds lists the registered kinds in stable order.
func (r *Registry) Kinds() []Kind {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Kind, 0, len(r.backends))
	for k := range r.backends {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
