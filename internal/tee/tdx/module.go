// Package tdx simulates Intel Trust Domain Extensions (TDX) for
// ConfBench.
//
// The package models the TDX software architecture described in §II of
// the paper: the TDX Module living in reserved (SEAM) memory, which
// the hypervisor drives through SEAMCALL leaf functions and trust
// domains (TDs) reach through TDCALL. The module owns the TD lifecycle
// state machine (create → init → memory add → finalize → run), keeps
// the MRTD build-time measurement and four runtime measurement
// registers (RTMRs), and emits MAC'd TDREPORT structures that the DCAP
// attestation stack (internal/attest/dcap) turns into quotes.
//
// The performance side — memory encryption and integrity, bounce
// buffers for I/O, TDCALL/SEAMCALL transition latencies — is expressed
// as a tee.CostModel in backend.go.
package tdx

import (
	"crypto/hmac"
	"crypto/sha512"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"confbench/internal/obs"
)

// Lifecycle errors returned by the module.
var (
	ErrTDNotFound      = errors.New("tdx: no such trust domain")
	ErrBadState        = errors.New("tdx: operation illegal in current TD state")
	ErrPageAdded       = errors.New("tdx: page already added at GPA")
	ErrNotFinalized    = errors.New("tdx: TD measurement not finalized")
	ErrRTMRIndex       = errors.New("tdx: RTMR index out of range")
	ErrReportDataSize  = errors.New("tdx: report data must be at most 64 bytes")
	ErrModuleShutdown  = errors.New("tdx: module shut down")
	ErrSEAMNotRootMode = errors.New("tdx: SEAMCALL requires VMX root mode")
)

// TDState is the lifecycle state of a trust domain.
type TDState int

// TD lifecycle states, in order.
const (
	TDCreated TDState = iota + 1
	TDInitialized
	TDMemAdding
	TDFinalized
	TDRunning
	TDTornDown
)

// String names the state.
func (s TDState) String() string {
	switch s {
	case TDCreated:
		return "created"
	case TDInitialized:
		return "initialized"
	case TDMemAdding:
		return "mem-adding"
	case TDFinalized:
		return "finalized"
	case TDRunning:
		return "running"
	case TDTornDown:
		return "torn-down"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// PageSize is the TD private page granularity.
const PageSize = 4096

// MeasurementSize is the byte length of SHA-384 measurements.
const MeasurementSize = sha512.Size384

// NumRTMRs is the number of runtime measurement registers per TD.
const NumRTMRs = 4

// TD is one trust domain managed by the module.
type TD struct {
	id    uint64
	state TDState

	attributes uint64
	xfam       uint64

	// mrtd is the build-time measurement, extended by each added page.
	mrtd [MeasurementSize]byte
	// rtmrs are the runtime measurement registers.
	rtmrs [NumRTMRs][MeasurementSize]byte
	// pages maps guest-physical page numbers to acceptance.
	pages map[uint64]bool

	exits uint64 // TDCALL-induced exits observed
}

// ID returns the TD identifier assigned at creation.
func (td *TD) ID() uint64 { return td.id }

// State returns the current lifecycle state.
func (td *TD) State() TDState { return td.state }

// MRTD returns a copy of the build-time measurement.
func (td *TD) MRTD() [MeasurementSize]byte { return td.mrtd }

// RTMR returns a copy of runtime measurement register i.
func (td *TD) RTMR(i int) ([MeasurementSize]byte, error) {
	if i < 0 || i >= NumRTMRs {
		return [MeasurementSize]byte{}, ErrRTMRIndex
	}
	return td.rtmrs[i], nil
}

// PageCount returns the number of private pages added to the TD.
func (td *TD) PageCount() int { return len(td.pages) }

// Exits returns the number of TDCALL exits recorded for the TD.
func (td *TD) Exits() uint64 { return td.exits }

// ModuleInfo describes the loaded TDX module.
type ModuleInfo struct {
	// Version is the module version string, e.g. "TDX_1.5.05.46.698".
	Version string
	// SEAMBase and SEAMSize describe the reserved SEAM memory range.
	SEAMBase uint64
	SEAMSize uint64
}

// Module simulates the Intel TDX Module. It runs conceptually in SEAM
// root mode; the hypervisor reaches it via SEAMCALL-style methods and
// guests via TDCALL-style methods. All methods are safe for concurrent
// use.
type Module struct {
	mu   sync.Mutex
	info ModuleInfo
	// macKey stands in for the CPU-held key that MACs TDREPORTs.
	macKey   []byte
	tds      map[uint64]*TD
	nextID   uint64
	shutdown bool

	// calls counts SEAMCALL/TDCALL leaf invocations the module served.
	calls *obs.Counter
}

// CurrentFirmware is the fixed module version the paper's final
// experiments used, after the upgrade that removed a consistent ~10×
// overhead (§III-B).
const CurrentFirmware = "TDX_1.5.05.46.698"

// BuggyFirmware is the pre-upgrade module version exhibiting the ~10×
// runtime penalty the paper reports debugging.
const BuggyFirmware = "TDX_1.5.00.41.610"

// NewModule loads a simulated TDX module with the given version and a
// deterministic per-module MAC key derived from seed.
func NewModule(version string, seed int64) *Module {
	var seedBytes [8]byte
	binary.LittleEndian.PutUint64(seedBytes[:], uint64(seed))
	key := sha512.Sum384(append([]byte("tdx-module-mac-key:"+version+":"), seedBytes[:]...))
	return &Module{
		info: ModuleInfo{
			Version:  version,
			SEAMBase: 0x8000_0000_0000,
			SEAMSize: 64 << 20,
		},
		macKey: key[:],
		tds:    make(map[uint64]*TD, 4),
		nextID: 1,
		calls:  obs.Default().Counter("confbench_tee_module_calls_total", "tee", "tdx"),
	}
}

// SetObsRegistry points the module's call counter at reg instead of
// the process-wide default. Call before serving traffic.
func (m *Module) SetObsRegistry(reg *obs.Registry) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.calls = obs.OrDefault(reg).Counter("confbench_tee_module_calls_total", "tee", "tdx")
}

// Info returns the module description.
func (m *Module) Info() ModuleInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.info
}

// Shutdown tears the module down; all further calls fail.
func (m *Module) Shutdown() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.shutdown = true
}

func (m *Module) get(id uint64) (*TD, error) {
	m.calls.Inc()
	if m.shutdown {
		return nil, ErrModuleShutdown
	}
	td, ok := m.tds[id]
	if !ok {
		return nil, ErrTDNotFound
	}
	return td, nil
}

// --- SEAMCALL leaves (hypervisor side) ---

// TDHMngCreate creates a new TD (SEAMCALL TDH.MNG.CREATE).
func (m *Module) TDHMngCreate() (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.calls.Inc()
	if m.shutdown {
		return 0, ErrModuleShutdown
	}
	id := m.nextID
	m.nextID++
	m.tds[id] = &TD{
		id:    id,
		state: TDCreated,
		pages: make(map[uint64]bool, 64),
	}
	return id, nil
}

// TDHMngInit initializes TD attributes (SEAMCALL TDH.MNG.INIT). The
// attributes and XFAM become part of the attested identity.
func (m *Module) TDHMngInit(id, attributes, xfam uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	td, err := m.get(id)
	if err != nil {
		return err
	}
	if td.state != TDCreated {
		return fmt.Errorf("%w: init in %s", ErrBadState, td.state)
	}
	td.attributes = attributes
	td.xfam = xfam
	td.state = TDInitialized
	return nil
}

// TDHMemPageAdd adds one private page at guest-physical address gpa
// with the given content digest, extending MRTD (SEAMCALL
// TDH.MEM.PAGE.ADD). gpa must be page-aligned.
func (m *Module) TDHMemPageAdd(id, gpa uint64, content []byte) error {
	if gpa%PageSize != 0 {
		return fmt.Errorf("tdx: gpa %#x not page aligned", gpa)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	td, err := m.get(id)
	if err != nil {
		return err
	}
	if td.state != TDInitialized && td.state != TDMemAdding {
		return fmt.Errorf("%w: page add in %s", ErrBadState, td.state)
	}
	pfn := gpa / PageSize
	if td.pages[pfn] {
		return ErrPageAdded
	}
	td.pages[pfn] = true
	td.state = TDMemAdding

	// MRTD := SHA384(MRTD || "PAGE.ADD" || gpa || SHA384(content))
	h := sha512.New384()
	h.Write(td.mrtd[:])
	h.Write([]byte("TDH.MEM.PAGE.ADD"))
	var gpaBytes [8]byte
	binary.LittleEndian.PutUint64(gpaBytes[:], gpa)
	h.Write(gpaBytes[:])
	digest := sha512.Sum384(content)
	h.Write(digest[:])
	copy(td.mrtd[:], h.Sum(nil))
	return nil
}

// TDHMrFinalize seals the build-time measurement (SEAMCALL
// TDH.MR.FINALIZE). After this no pages can be measured into MRTD.
func (m *Module) TDHMrFinalize(id uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	td, err := m.get(id)
	if err != nil {
		return err
	}
	if td.state != TDMemAdding && td.state != TDInitialized {
		return fmt.Errorf("%w: finalize in %s", ErrBadState, td.state)
	}
	td.state = TDFinalized
	return nil
}

// TDHVPEnter enters the TD for execution (SEAMCALL TDH.VP.ENTER).
func (m *Module) TDHVPEnter(id uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	td, err := m.get(id)
	if err != nil {
		return err
	}
	switch td.state {
	case TDFinalized, TDRunning:
		td.state = TDRunning
		return nil
	default:
		return fmt.Errorf("%w: enter in %s (%v)", ErrBadState, td.state, ErrNotFinalized)
	}
}

// TDImage is an exported TD memory image: the attested identity
// (MRTD, attributes, XFAM) plus the private page set, captured after
// finalization. Importing it rebuilds an equivalent TD without
// replaying the measured page adds — the re-measurement skip that
// makes restored TDs cheap (modeled on the TDX 1.5 live-migration
// TDH.EXPORT.*/TDH.IMPORT.* leaf families).
type TDImage struct {
	Attributes uint64
	Xfam       uint64
	MRTD       [MeasurementSize]byte
	// Pages lists the guest-physical page frame numbers of the image.
	Pages []uint64
}

// TDHExportMem captures a finalized TD's memory image (SEAMCALL
// TDH.EXPORT.MEM, abridged). The source TD keeps running; the caller
// owns the returned image.
func (m *Module) TDHExportMem(id uint64) (*TDImage, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	td, err := m.get(id)
	if err != nil {
		return nil, err
	}
	if td.state != TDFinalized && td.state != TDRunning {
		return nil, fmt.Errorf("%w: export in %s (%v)", ErrBadState, td.state, ErrNotFinalized)
	}
	img := &TDImage{
		Attributes: td.attributes,
		Xfam:       td.xfam,
		MRTD:       td.mrtd,
		Pages:      make([]uint64, 0, len(td.pages)),
	}
	for pfn := range td.pages {
		img.Pages = append(img.Pages, pfn)
	}
	return img, nil
}

// TDHImportMem rebuilds a TD from an exported image (SEAMCALL
// TDH.IMPORT.MEM, abridged): the TD is created directly in the
// finalized state with the imported MRTD, attributes, XFAM, and page
// set, skipping the per-page measured adds. The caller enters it with
// TDHVPEnter as usual.
func (m *Module) TDHImportMem(img *TDImage) (uint64, error) {
	if img == nil {
		return 0, errors.New("tdx: nil TD image")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.calls.Inc()
	if m.shutdown {
		return 0, ErrModuleShutdown
	}
	id := m.nextID
	m.nextID++
	td := &TD{
		id:         id,
		state:      TDFinalized,
		attributes: img.Attributes,
		xfam:       img.Xfam,
		mrtd:       img.MRTD,
		pages:      make(map[uint64]bool, len(img.Pages)),
	}
	for _, pfn := range img.Pages {
		td.pages[pfn] = true
	}
	m.tds[id] = td
	return id, nil
}

// TDHMngRemove tears the TD down and reclaims its pages.
func (m *Module) TDHMngRemove(id uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	td, err := m.get(id)
	if err != nil {
		return err
	}
	td.state = TDTornDown
	td.pages = nil
	delete(m.tds, id)
	return nil
}

// --- TDCALL leaves (guest side) ---

// TDGMrRtmrExtend extends RTMR index i with digest (TDCALL
// TDG.MR.RTMR.EXTEND).
func (m *Module) TDGMrRtmrExtend(id uint64, i int, digest []byte) error {
	if i < 0 || i >= NumRTMRs {
		return ErrRTMRIndex
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	td, err := m.get(id)
	if err != nil {
		return err
	}
	if td.state != TDRunning {
		return fmt.Errorf("%w: rtmr extend in %s", ErrBadState, td.state)
	}
	h := sha512.New384()
	h.Write(td.rtmrs[i][:])
	d := sha512.Sum384(digest)
	h.Write(d[:])
	copy(td.rtmrs[i][:], h.Sum(nil))
	td.exits++
	return nil
}

// TDGVPVmcall records a TDVMCALL hypercall exit from the guest
// (TDCALL TDG.VP.VMCALL). The cost model prices these; the module just
// counts them for inspection.
func (m *Module) TDGVPVmcall(id uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	td, err := m.get(id)
	if err != nil {
		return err
	}
	if td.state != TDRunning {
		return fmt.Errorf("%w: vmcall in %s", ErrBadState, td.state)
	}
	td.exits++
	return nil
}

// TDGMrReport produces a MAC'd TDREPORT binding reportData (≤64 bytes)
// to the TD's measurements (TDCALL TDG.MR.REPORT). Only a running,
// finalized TD can report.
func (m *Module) TDGMrReport(id uint64, reportData []byte) (*Report, error) {
	if len(reportData) > ReportDataSize {
		return nil, ErrReportDataSize
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	td, err := m.get(id)
	if err != nil {
		return nil, err
	}
	if td.state != TDRunning && td.state != TDFinalized {
		return nil, fmt.Errorf("%w: report in %s", ErrBadState, td.state)
	}
	td.exits++

	r := &Report{
		ModuleVersion: m.info.Version,
		TeeTcbSvn:     tcbSvnForVersion(m.info.Version),
		Attributes:    td.attributes,
		Xfam:          td.xfam,
		MRTD:          td.mrtd,
		RTMRs:         td.rtmrs,
	}
	copy(r.ReportData[:], reportData)
	r.MAC = m.macReport(r)
	return r, nil
}

// VerifyReportMAC checks that the report was produced by this module
// (local attestation: the MAC key never leaves the "CPU").
func (m *Module) VerifyReportMAC(r *Report) bool {
	if r == nil {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	want := m.macReport(r)
	return hmac.Equal(want[:], r.MAC[:])
}

func (m *Module) macReport(r *Report) [MeasurementSize]byte {
	mac := hmac.New(sha512.New384, m.macKey)
	mac.Write(r.bindingBytes())
	var out [MeasurementSize]byte
	copy(out[:], mac.Sum(nil))
	return out
}

// tcbSvnForVersion derives a monotone TCB security-version number from
// the module version string, so firmware upgrades raise the SVN.
func tcbSvnForVersion(version string) uint32 {
	switch version {
	case CurrentFirmware:
		return 5
	case BuggyFirmware:
		return 4
	default:
		return 3
	}
}
