package tdx

import (
	"context"
	"errors"
	"testing"

	"confbench/internal/meter"
	"confbench/internal/tee"
)

func buildTD(t *testing.T, m *Module, pages int) uint64 {
	t.Helper()
	id, err := m.TDHMngCreate()
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := m.TDHMngInit(id, 0x10, 0xe7); err != nil {
		t.Fatalf("init: %v", err)
	}
	for i := 0; i < pages; i++ {
		if err := m.TDHMemPageAdd(id, uint64(i)*PageSize, []byte{byte(i)}); err != nil {
			t.Fatalf("page add %d: %v", i, err)
		}
	}
	if err := m.TDHMrFinalize(id); err != nil {
		t.Fatalf("finalize: %v", err)
	}
	if err := m.TDHVPEnter(id); err != nil {
		t.Fatalf("enter: %v", err)
	}
	return id
}

func TestTDLifecycle(t *testing.T) {
	m := NewModule(CurrentFirmware, 1)
	id := buildTD(t, m, 4)
	if err := m.TDHMngRemove(id); err != nil {
		t.Fatalf("remove: %v", err)
	}
	if _, err := m.TDGMrReport(id, nil); !errors.Is(err, ErrTDNotFound) {
		t.Errorf("report after remove: %v", err)
	}
}

func TestEnterBeforeFinalizeFails(t *testing.T) {
	m := NewModule(CurrentFirmware, 1)
	id, _ := m.TDHMngCreate()
	if err := m.TDHMngInit(id, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.TDHVPEnter(id); !errors.Is(err, ErrBadState) {
		t.Errorf("enter before finalize: %v", err)
	}
}

func TestPageAddAfterFinalizeFails(t *testing.T) {
	m := NewModule(CurrentFirmware, 1)
	id := buildTD(t, m, 1)
	if err := m.TDHMemPageAdd(id, 64*PageSize, []byte{1}); !errors.Is(err, ErrBadState) {
		t.Errorf("page add after finalize: %v", err)
	}
}

func TestDuplicatePageAddFails(t *testing.T) {
	m := NewModule(CurrentFirmware, 1)
	id, _ := m.TDHMngCreate()
	_ = m.TDHMngInit(id, 0, 0)
	if err := m.TDHMemPageAdd(id, 0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := m.TDHMemPageAdd(id, 0, []byte{2}); !errors.Is(err, ErrPageAdded) {
		t.Errorf("duplicate add: %v", err)
	}
}

func TestUnalignedPageAddFails(t *testing.T) {
	m := NewModule(CurrentFirmware, 1)
	id, _ := m.TDHMngCreate()
	_ = m.TDHMngInit(id, 0, 0)
	if err := m.TDHMemPageAdd(id, 123, []byte{1}); err == nil {
		t.Error("unaligned gpa should fail")
	}
}

func TestMRTDDependsOnContentAndOrder(t *testing.T) {
	build := func(contents [][]byte) [MeasurementSize]byte {
		m := NewModule(CurrentFirmware, 1)
		id, _ := m.TDHMngCreate()
		_ = m.TDHMngInit(id, 0, 0)
		for i, c := range contents {
			_ = m.TDHMemPageAdd(id, uint64(i)*PageSize, c)
		}
		_ = m.TDHMrFinalize(id)
		td, _ := m.get(id)
		return td.MRTD()
	}
	a := build([][]byte{{1}, {2}})
	b := build([][]byte{{1}, {3}})
	c := build([][]byte{{2}, {1}})
	same := build([][]byte{{1}, {2}})
	if a == b {
		t.Error("different content, same MRTD")
	}
	if a == c {
		t.Error("different order, same MRTD")
	}
	if a != same {
		t.Error("identical builds should produce identical MRTD")
	}
}

func TestRTMRExtend(t *testing.T) {
	m := NewModule(CurrentFirmware, 1)
	id := buildTD(t, m, 1)
	before, _ := m.TDGMrReport(id, nil)
	if err := m.TDGMrRtmrExtend(id, 2, []byte("event")); err != nil {
		t.Fatal(err)
	}
	after, _ := m.TDGMrReport(id, nil)
	if before.RTMRs[2] == after.RTMRs[2] {
		t.Error("RTMR[2] unchanged by extend")
	}
	if before.RTMRs[0] != after.RTMRs[0] {
		t.Error("RTMR[0] should be unchanged")
	}
	if err := m.TDGMrRtmrExtend(id, 9, nil); !errors.Is(err, ErrRTMRIndex) {
		t.Errorf("bad index: %v", err)
	}
}

func TestReportMACVerification(t *testing.T) {
	m := NewModule(CurrentFirmware, 1)
	id := buildTD(t, m, 2)
	nonce := []byte("challenge-nonce")
	r, err := m.TDGMrReport(id, nonce)
	if err != nil {
		t.Fatal(err)
	}
	if !m.VerifyReportMAC(r) {
		t.Error("genuine report MAC rejected")
	}
	// Tampering with the report data must break the MAC.
	r.ReportData[0] ^= 0xff
	if m.VerifyReportMAC(r) {
		t.Error("tampered report MAC accepted")
	}
	// Another module (different key) must reject the report.
	other := NewModule(CurrentFirmware, 99)
	r.ReportData[0] ^= 0xff // restore
	if other.VerifyReportMAC(r) {
		t.Error("foreign module accepted report")
	}
	if other.VerifyReportMAC(nil) {
		t.Error("nil report accepted")
	}
}

func TestReportDataTooLarge(t *testing.T) {
	m := NewModule(CurrentFirmware, 1)
	id := buildTD(t, m, 1)
	if _, err := m.TDGMrReport(id, make([]byte, 65)); !errors.Is(err, ErrReportDataSize) {
		t.Errorf("oversized report data: %v", err)
	}
}

func TestReportRoundTrip(t *testing.T) {
	m := NewModule(CurrentFirmware, 1)
	id := buildTD(t, m, 1)
	r, _ := m.TDGMrReport(id, []byte("x"))
	data, err := r.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.MRTD != r.MRTD || back.MAC != r.MAC || back.TeeTcbSvn != r.TeeTcbSvn {
		t.Error("round trip mismatch")
	}
	if !m.VerifyReportMAC(back) {
		t.Error("MAC broken by serialization")
	}
}

func TestModuleShutdown(t *testing.T) {
	m := NewModule(CurrentFirmware, 1)
	m.Shutdown()
	if _, err := m.TDHMngCreate(); !errors.Is(err, ErrModuleShutdown) {
		t.Errorf("create after shutdown: %v", err)
	}
}

func TestFirmwareSVN(t *testing.T) {
	if tcbSvnForVersion(CurrentFirmware) <= tcbSvnForVersion(BuggyFirmware) {
		t.Error("upgrade must raise the TCB SVN")
	}
}

func TestBackendLaunchPair(t *testing.T) {
	b, err := NewBackend(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if b.Kind() != tee.KindTDX {
		t.Errorf("kind = %v", b.Kind())
	}
	secure, err := b.Launch(tee.GuestConfig{Name: "g", MemoryMB: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer secure.Destroy()
	normal, err := b.LaunchNormal(tee.GuestConfig{Name: "g", MemoryMB: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer normal.Destroy()
	if !secure.Secure() || normal.Secure() {
		t.Error("secure flags wrong")
	}
	if secure.BootCost() <= normal.BootCost() {
		t.Error("TD boot should cost more than plain VM boot")
	}
	if _, err := secure.AttestationReport(context.Background(), []byte("n")); err != nil {
		t.Errorf("TD attestation: %v", err)
	}
}

func TestBackendSecureCostsMore(t *testing.T) {
	b, _ := NewBackend(Options{Seed: 1})
	secure, _ := b.Launch(tee.GuestConfig{MemoryMB: 8})
	defer secure.Destroy()
	normal, _ := b.LaunchNormal(tee.GuestConfig{MemoryMB: 8})
	defer normal.Destroy()

	u := meter.Usage{meter.IOWriteBytes: 8 << 20, meter.Syscalls: 4000}
	base := b.HostProfile().Cost(u)
	var sSum, nSum float64
	for i := 0; i < 20; i++ {
		sSum += secure.Price(u, base).Total.Seconds()
		nSum += normal.Price(u, base).Total.Seconds()
	}
	if sSum <= nSum {
		t.Errorf("I/O-heavy work should cost more in the TD: %v vs %v", sSum, nSum)
	}
}

func TestBuggyFirmwarePenalty(t *testing.T) {
	good, _ := NewBackend(Options{Seed: 1})
	bad, _ := NewBackend(Options{Seed: 1, FirmwareVersion: BuggyFirmware})
	u := meter.Usage{meter.CPUOps: 10_000_000, meter.BytesTouched: 1 << 20}
	base := good.HostProfile().Cost(u)

	gGuest, _ := good.Launch(tee.GuestConfig{MemoryMB: 4})
	defer gGuest.Destroy()
	bGuest, _ := bad.Launch(tee.GuestConfig{MemoryMB: 4})
	defer bGuest.Destroy()

	g := gGuest.Price(u, base).Total.Seconds()
	bv := bGuest.Price(u, base).Total.Seconds()
	if ratio := bv / g; ratio < 7 || ratio > 13 {
		t.Errorf("buggy firmware ratio = %.1f, want ≈10", ratio)
	}
}
