package tdx

import (
	"context"
	"errors"
	"testing"

	"confbench/internal/tee"
)

func TestBackendSnapshotRestore(t *testing.T) {
	b, err := NewBackend(Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	cfg := tee.GuestConfig{Name: "runtime", MemoryMB: 8}

	img, err := b.Snapshot(cfg)
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if img.Kind != tee.KindTDX || img.MemoryMB != 8 {
		t.Fatalf("image identity: kind=%s mem=%d", img.Kind, img.MemoryMB)
	}
	if img.SizeBytes != int64(8)<<20 {
		t.Errorf("image size = %d, want %d", img.SizeBytes, int64(8)<<20)
	}

	cold, err := b.Launch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cold.Destroy()
	warm, err := b.Restore(img, cfg)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	defer warm.Destroy()

	if got := warm.BootCost(); got != img.RestoreCost {
		t.Errorf("warm boot = %v, want restore cost %v", got, img.RestoreCost)
	}
	if cold.BootCost() < 3*warm.BootCost() {
		t.Errorf("cold boot %v not >= 3x warm boot %v", cold.BootCost(), warm.BootCost())
	}

	// The measured identity survives the export/import round trip: the
	// restored TD attests with the same MRTD the template was built to.
	ti, ok := img.Payload.(*TDImage)
	if !ok {
		t.Fatalf("payload type %T", img.Payload)
	}
	raw, err := warm.AttestationReport(context.Background(), []byte("warm-nonce"))
	if err != nil {
		t.Fatalf("restored attestation: %v", err)
	}
	rep, err := UnmarshalReport(raw)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MRTD != ti.MRTD {
		t.Error("restored TD reports a different MRTD than the image")
	}
	coldRaw, err := cold.AttestationReport(context.Background(), []byte("cold-nonce"))
	if err != nil {
		t.Fatal(err)
	}
	coldRep, err := UnmarshalReport(coldRaw)
	if err != nil {
		t.Fatal(err)
	}
	if coldRep.MRTD != rep.MRTD {
		t.Error("restored MRTD differs from an identically-configured cold launch")
	}
}

func TestBackendRestoreRejectsForeignImage(t *testing.T) {
	b, err := NewBackend(Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Restore(nil, tee.GuestConfig{}); !errors.Is(err, tee.ErrNilImage) {
		t.Errorf("nil image: %v", err)
	}
	wrong := &tee.GuestImage{Kind: tee.KindSEV, MemoryMB: 8}
	if _, err := b.Restore(wrong, tee.GuestConfig{}); !errors.Is(err, tee.ErrImageKind) {
		t.Errorf("wrong kind: %v", err)
	}
	badPayload := &tee.GuestImage{Kind: tee.KindTDX, MemoryMB: 8, Payload: "not a TDImage"}
	if _, err := b.Restore(badPayload, tee.GuestConfig{}); !errors.Is(err, tee.ErrImagePayload) {
		t.Errorf("bad payload: %v", err)
	}
}

func TestTDHExportImportMem(t *testing.T) {
	m := NewModule(CurrentFirmware, 1)
	id := buildTD(t, m, 4)
	img, err := m.TDHExportMem(id)
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	if len(img.Pages) != 4 {
		t.Fatalf("exported %d pages, want 4", len(img.Pages))
	}
	imported, err := m.TDHImportMem(img)
	if err != nil {
		t.Fatalf("import: %v", err)
	}
	if imported == id {
		t.Fatal("import reused the source TD id")
	}
	// The imported TD is finalized: it can be entered but not have more
	// pages measured in.
	if err := m.TDHVPEnter(imported); err != nil {
		t.Fatalf("enter imported: %v", err)
	}
	if err := m.TDHMemPageAdd(imported, 64*PageSize, []byte{1}); !errors.Is(err, ErrBadState) {
		t.Errorf("page add on imported TD: %v", err)
	}
	if _, err := m.TDHImportMem(nil); err == nil {
		t.Error("nil image import succeeded")
	}
}
