package tdx

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
)

// ReportDataSize is the user-data field size in a TDREPORT (the
// verifier's nonce is bound here).
const ReportDataSize = 64

// Report models the TDREPORT_STRUCT a TD obtains via TDG.MR.REPORT.
// It carries the TD's measurements and platform TCB information and is
// MAC'd with a CPU-held key, so it is only locally verifiable; the
// Quoting Enclave (internal/attest/dcap) converts it into a remotely
// verifiable quote.
type Report struct {
	ModuleVersion string                          `json:"module_version"`
	TeeTcbSvn     uint32                          `json:"tee_tcb_svn"`
	Attributes    uint64                          `json:"attributes"`
	Xfam          uint64                          `json:"xfam"`
	MRTD          [MeasurementSize]byte           `json:"mrtd"`
	RTMRs         [NumRTMRs][MeasurementSize]byte `json:"rtmrs"`
	ReportData    [ReportDataSize]byte            `json:"report_data"`
	MAC           [MeasurementSize]byte           `json:"mac"`
}

// bindingBytes serializes the MAC'd portion of the report.
func (r *Report) bindingBytes() []byte {
	var buf bytes.Buffer
	buf.WriteString("TDREPORT")
	buf.WriteString(r.ModuleVersion)
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], r.TeeTcbSvn)
	buf.Write(u32[:])
	var u64 [8]byte
	binary.LittleEndian.PutUint64(u64[:], r.Attributes)
	buf.Write(u64[:])
	binary.LittleEndian.PutUint64(u64[:], r.Xfam)
	buf.Write(u64[:])
	buf.Write(r.MRTD[:])
	for i := range r.RTMRs {
		buf.Write(r.RTMRs[i][:])
	}
	buf.Write(r.ReportData[:])
	return buf.Bytes()
}

// Marshal serializes the report for transport to the Quoting Enclave.
func (r *Report) Marshal() ([]byte, error) {
	return json.Marshal(r)
}

// UnmarshalReport parses a serialized TDREPORT.
func UnmarshalReport(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("tdx: parse report: %w", err)
	}
	return &r, nil
}
