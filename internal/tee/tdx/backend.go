package tdx

import (
	"context"
	"fmt"
	"sync"
	"time"

	"confbench/internal/cpumodel"
	"confbench/internal/faultplane"
	"confbench/internal/obs"
	"confbench/internal/tee"
)

// Options configures the TDX backend.
type Options struct {
	// Host is the machine profile; defaults to cpumodel.XeonGold5515.
	Host cpumodel.Profile
	// FirmwareVersion is the TDX module version; defaults to
	// CurrentFirmware. Using BuggyFirmware reproduces the consistent
	// ~10× overhead the paper observed before Intel's upgrade.
	FirmwareVersion string
	// Seed drives deterministic noise; guests derive their seeds from
	// it unless GuestConfig.Seed is set.
	Seed int64
	// Obs is the metrics registry the module and guests report to
	// (nil = the process-wide default).
	Obs *obs.Registry
	// Faults is the fault plane guests evaluate at the TEE injection
	// points (nil = fault-free).
	Faults *faultplane.Plane
}

// Backend implements tee.Backend for Intel TDX.
type Backend struct {
	host   cpumodel.Profile
	module *Module
	obsreg *obs.Registry
	faults *faultplane.Plane
	seed   int64

	mu       sync.Mutex
	nextSeed int64
	// live maps running guest IDs to their TD ids — the handle
	// ExportLive needs to reach the TD behind a tee.Guest.
	live map[string]uint64
}

var (
	_ tee.Backend     = (*Backend)(nil)
	_ tee.Snapshotter = (*Backend)(nil)
	_ tee.Migrator    = (*Backend)(nil)
)

// NewBackend creates a TDX backend with a freshly loaded module.
func NewBackend(opts Options) (*Backend, error) {
	if opts.Host.Name == "" {
		opts.Host = cpumodel.XeonGold5515
	}
	if err := opts.Host.Validate(); err != nil {
		return nil, err
	}
	if opts.FirmwareVersion == "" {
		opts.FirmwareVersion = CurrentFirmware
	}
	module := NewModule(opts.FirmwareVersion, opts.Seed)
	if opts.Obs != nil {
		module.SetObsRegistry(opts.Obs)
	}
	return &Backend{
		host:     opts.Host,
		module:   module,
		obsreg:   opts.Obs,
		faults:   opts.Faults,
		seed:     opts.Seed,
		nextSeed: opts.Seed + 1,
		live:     make(map[string]uint64),
	}, nil
}

// Kind implements tee.Backend.
func (b *Backend) Kind() tee.Kind { return tee.KindTDX }

// Name implements tee.Backend.
func (b *Backend) Name() string {
	return fmt.Sprintf("Intel TDX (%s) on %s", b.module.Info().Version, b.host.Name)
}

// HostProfile implements tee.Backend.
func (b *Backend) HostProfile() cpumodel.Profile { return b.host }

// Module exposes the simulated TDX module, used by the DCAP
// attestation stack to locally verify TDREPORT MACs.
func (b *Backend) Module() *Module { return b.module }

func (b *Backend) guestSeed(cfg tee.GuestConfig) int64 {
	if cfg.Seed != 0 {
		return cfg.Seed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.nextSeed++
	return b.nextSeed
}

// CostModel returns the confidential-guest cost model for the loaded
// firmware. Calibration targets the paper's shapes: near-native CPU
// and memory (slight edge over SEV-SNP), expensive I/O through swiotlb
// bounce buffers, ~7 µs TDCALL/SEAMCALL round trips, and an occasional
// cache-residency bonus that drops a run below the normal-VM baseline.
func (b *Backend) CostModel() tee.CostModel {
	cm := tee.CostModel{
		CPUFactor:      1.015,
		MemFactor:      1.10,
		AllocFactor:    1.12,
		IOReadFactor:   2.05,
		IOWriteFactor:  2.30,
		NetFactor:      1.90,
		LogFactor:      1.35,
		FileOpFactor:   1.50,
		CtxSwitchFac:   1.40,
		SpawnFactor:    1.35,
		SyscallFactor:  1.05,
		ExitNs:         7000,
		ExitsPerSys:    0.004,
		ExitsPerSwitch: 0.45,
		PageAcceptNs:   350,
		StartupNs:      850e6,
		CacheBonusProb: 0.05,
		CacheBonusMag:  0.18,
		JitterStd:      0.020,
		// Restores rebuild the TD context and replay page ownership
		// without re-measuring: a fixed SEAM-side import base plus a
		// cheap per-page charge, orders of magnitude under the
		// measured build.
		SnapshotPageNs: 0.40e6,
		RestoreBaseNs:  120e6,
		RestorePageNs:  0.10e6,
	}
	if b.module.Info().Version == BuggyFirmware {
		cm = firmwarePenalty(cm, 10)
	}
	return cm
}

// firmwarePenalty scales the multiplicative factors and transition
// latency by f, reproducing the pre-upgrade slowdown.
func firmwarePenalty(cm tee.CostModel, f float64) tee.CostModel {
	cm.CPUFactor *= f
	cm.MemFactor *= f
	cm.AllocFactor *= f
	cm.IOReadFactor *= f
	cm.IOWriteFactor *= f
	cm.NetFactor *= f
	cm.LogFactor *= f
	cm.FileOpFactor *= f
	cm.CtxSwitchFac *= f
	cm.SpawnFactor *= f
	cm.ExitNs *= f
	cm.CacheBonusProb = 0
	return cm
}

// bootBaseNs is the plain-VM boot cost on this host class.
const bootBaseNs = 2.1e9

// buildTD walks the measured TD build flow (TDH.MNG.CREATE → INIT →
// measured page adds → TDH.MR.FINALIZE) and returns the finalized TD
// id, not yet entered.
func (b *Backend) buildTD(cfg tee.GuestConfig) (uint64, error) {
	id, err := b.module.TDHMngCreate()
	if err != nil {
		return 0, err
	}
	if err := b.module.TDHMngInit(id, 0x0000_0000_1000_0000, 0xe7); err != nil {
		return 0, err
	}
	// Measure a boot image: one page per MiB of guest memory stands in
	// for the kernel+initrd pages added via TDH.MEM.PAGE.ADD.
	for i := 0; i < cfg.MemoryMB; i++ {
		gpa := uint64(i) * PageSize
		content := []byte(fmt.Sprintf("boot-image:%s:%d", cfg.Name, i))
		if err := b.module.TDHMemPageAdd(id, gpa, content); err != nil {
			return 0, err
		}
	}
	if err := b.module.TDHMrFinalize(id); err != nil {
		return 0, err
	}
	return id, nil
}

// forgetTD drops the live-tracking entry of a destroyed TD.
func (b *Backend) forgetTD(id uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for gid, tid := range b.live {
		if tid == id {
			delete(b.live, gid)
		}
	}
}

// guestForTD wraps an entered TD id into a ModelGuest and tracks it
// live so ExportLive can find the TD again.
func (b *Backend) guestForTD(id uint64, cfg tee.GuestConfig, restoreCost time.Duration, restored bool) tee.Guest {
	mod := b.module
	g := tee.NewModelGuest(tee.ModelGuestConfig{
		IDPrefix:         "td",
		Kind:             tee.KindTDX,
		Secure:           true,
		Model:            b.CostModel(),
		BootBase:         bootBaseNs,
		BootCostOverride: restoreCost,
		Restored:         restored,
		Seed:             b.guestSeed(cfg),
		Obs:              b.obsreg,
		Faults:           b.faults,
		Host:             cfg.Name,
		Report: func(_ context.Context, nonce []byte) ([]byte, error) {
			r, err := mod.TDGMrReport(id, nonce)
			if err != nil {
				return nil, err
			}
			return r.Marshal()
		},
		Destroy: func() error {
			b.forgetTD(id)
			return mod.TDHMngRemove(id)
		},
	})
	b.mu.Lock()
	b.live[g.ID()] = id
	b.mu.Unlock()
	return g
}

// Launch implements tee.Backend: it walks the full TD build flow
// (TDH.MNG.CREATE → INIT → measured page adds → TDH.MR.FINALIZE →
// TDH.VP.ENTER) and returns a running confidential guest.
func (b *Backend) Launch(cfg tee.GuestConfig) (tee.Guest, error) {
	cfg = cfg.WithDefaults()
	id, err := b.buildTD(cfg)
	if err != nil {
		return nil, fmt.Errorf("tdx launch: %w", err)
	}
	if err := b.module.TDHVPEnter(id); err != nil {
		return nil, fmt.Errorf("tdx launch: %w", err)
	}
	return b.guestForTD(id, cfg, 0, false), nil
}

// Snapshot implements tee.Snapshotter: one full measured template
// build, exported via TDH.EXPORT.MEM, then torn down. The image's
// capture cost prices that build; its restore cost is what every TD
// imported from it charges as boot.
func (b *Backend) Snapshot(cfg tee.GuestConfig) (*tee.GuestImage, error) {
	cfg = cfg.WithDefaults()
	id, err := b.buildTD(cfg)
	if err != nil {
		return nil, fmt.Errorf("tdx snapshot: %w", err)
	}
	img, err := b.module.TDHExportMem(id)
	if err != nil {
		_ = b.module.TDHMngRemove(id)
		return nil, fmt.Errorf("tdx snapshot: %w", err)
	}
	if err := b.module.TDHMngRemove(id); err != nil {
		return nil, fmt.Errorf("tdx snapshot: %w", err)
	}
	cm := b.CostModel()
	return &tee.GuestImage{
		Kind:        tee.KindTDX,
		MemoryMB:    cfg.MemoryMB,
		SizeBytes:   int64(cfg.MemoryMB) << 20,
		CaptureCost: time.Duration(bootBaseNs) + cm.BootCost() + cm.SnapshotCost(cfg.MemoryMB),
		RestoreCost: cm.RestoreCost(cfg.MemoryMB),
		Payload:     img,
	}, nil
}

// Restore implements tee.Snapshotter: TDH.IMPORT.MEM installs the
// image's measurement and page set with re-measurement skipped, and
// the imported TD is entered. The restored guest charges the image's
// restore cost as its boot.
func (b *Backend) Restore(img *tee.GuestImage, cfg tee.GuestConfig) (tee.Guest, error) {
	if err := img.Validate(tee.KindTDX); err != nil {
		return nil, fmt.Errorf("tdx restore: %w", err)
	}
	tdImg, ok := img.Payload.(*TDImage)
	if !ok {
		return nil, fmt.Errorf("tdx restore: %w", tee.ErrImagePayload)
	}
	cfg = cfg.WithDefaults()
	id, err := b.module.TDHImportMem(tdImg)
	if err != nil {
		return nil, fmt.Errorf("tdx restore: %w", err)
	}
	if err := b.module.TDHVPEnter(id); err != nil {
		_ = b.module.TDHMngRemove(id)
		return nil, fmt.Errorf("tdx restore: %w", err)
	}
	return b.guestForTD(id, cfg, img.RestoreCost, true), nil
}

// LaunchNormal implements tee.Backend: a plain VM on the same host.
func (b *Backend) LaunchNormal(cfg tee.GuestConfig) (tee.Guest, error) {
	cfg = cfg.WithDefaults()
	return tee.NewModelGuest(tee.ModelGuestConfig{
		IDPrefix: "vm",
		Kind:     tee.KindNone,
		Secure:   false,
		Model:    tee.NormalCostModel(),
		BootBase: bootBaseNs,
		Seed:     b.guestSeed(cfg),
		Obs:      b.obsreg,
	}), nil
}
