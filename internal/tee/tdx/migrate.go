package tdx

import (
	"encoding/json"
	"fmt"
	"sort"

	"confbench/internal/tee"
)

// tdState is the serialized form of a migrating TD: the attested
// identity minus the MRTD (which travels in the image's Measurement
// field, where the destination's attestation gate verifies it) plus
// the private page set. Pages are sorted so the same TD always
// serializes to the same bytes — the migration smoke pins on that.
type tdState struct {
	Attributes uint64   `json:"attributes"`
	Xfam       uint64   `json:"xfam"`
	Pages      []uint64 `json:"pages"`
}

// ExportLive implements tee.Migrator: TDH.EXPORT.MEM on the running
// TD (the TDX 1.5 migration-TD stream source). The TD keeps running —
// export does not change its state — so the source serves until the
// migration engine cuts over.
func (b *Backend) ExportLive(g tee.Guest) (*tee.MigrationImage, error) {
	if g == nil {
		return nil, fmt.Errorf("tdx export: %w", tee.ErrNotLive)
	}
	b.mu.Lock()
	id, ok := b.live[g.ID()]
	b.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("tdx export %s: %w", g.ID(), tee.ErrNotLive)
	}
	img, err := b.module.TDHExportMem(id)
	if err != nil {
		return nil, fmt.Errorf("tdx export: %w", err)
	}
	sort.Slice(img.Pages, func(i, j int) bool { return img.Pages[i] < img.Pages[j] })
	state, err := json.Marshal(tdState{
		Attributes: img.Attributes,
		Xfam:       img.Xfam,
		Pages:      img.Pages,
	})
	if err != nil {
		return nil, fmt.Errorf("tdx export: %w", err)
	}
	cm := b.CostModel()
	pages := len(img.Pages)
	return &tee.MigrationImage{
		Kind:        tee.KindTDX,
		MemoryMB:    pages, // one measured page per MiB
		Measurement: append([]byte(nil), img.MRTD[:]...),
		State:       state,
		ExportCost:  cm.SnapshotCost(pages),
		ResumeCost:  cm.RestoreCost(pages),
	}, nil
}

// ImportLive implements tee.Migrator: TDH.IMPORT.MEM rebuilds the TD
// from the streamed state with re-measurement skipped and enters it.
// The imported guest is tracked live, so re-exporting it reproduces
// the MRTD — the destination's attestation gate depends on that.
func (b *Backend) ImportLive(img *tee.MigrationImage, cfg tee.GuestConfig) (tee.Guest, error) {
	if err := img.Validate(tee.KindTDX); err != nil {
		return nil, fmt.Errorf("tdx import: %w", err)
	}
	var st tdState
	if err := json.Unmarshal(img.State, &st); err != nil {
		return nil, fmt.Errorf("tdx import: %w: %v", tee.ErrBadMigrationState, err)
	}
	cfg = cfg.WithDefaults()
	tdImg := &TDImage{Attributes: st.Attributes, Xfam: st.Xfam, Pages: st.Pages}
	copy(tdImg.MRTD[:], img.Measurement)
	id, err := b.module.TDHImportMem(tdImg)
	if err != nil {
		return nil, fmt.Errorf("tdx import: %w", err)
	}
	if err := b.module.TDHVPEnter(id); err != nil {
		_ = b.module.TDHMngRemove(id)
		return nil, fmt.Errorf("tdx import: %w", err)
	}
	return b.guestForTD(id, cfg, img.ResumeCost, true), nil
}
