package tee

import (
	"errors"
	"fmt"
	"time"
)

// Snapshot errors shared by the backends.
var (
	// ErrNilImage is returned when restoring from a nil image.
	ErrNilImage = errors.New("tee: nil guest image")
	// ErrImageKind is returned when an image is restored on a backend
	// of a different TEE kind.
	ErrImageKind = errors.New("tee: guest image kind mismatch")
	// ErrImagePayload is returned when an image's backend-private
	// payload has the wrong type — the image was produced by a
	// different backend implementation.
	ErrImagePayload = errors.New("tee: foreign guest image payload")
)

// GuestImage is a captured, reusable guest memory image: the product
// of one full measured build, priced once, that any number of guests
// can then be restored from at the (much cheaper) restore cost. Images
// are what the snapshot cache in internal/vm stores under its byte
// budget.
type GuestImage struct {
	// Kind is the TEE platform the image was captured on; it can only
	// be restored on a backend of the same kind.
	Kind Kind
	// MemoryMB is the guest memory size the image encodes.
	MemoryMB int
	// SizeBytes is the image's storage footprint, charged against the
	// snapshot cache's byte budget.
	SizeBytes int64
	// CaptureCost is the one-time virtual cost of producing the image:
	// the full measured template build plus the per-page export.
	CaptureCost time.Duration
	// RestoreCost is the virtual boot cost each restored guest charges
	// in place of a full measured launch.
	RestoreCost time.Duration
	// Payload carries backend-private restore state (the exported TD
	// image, the SNP launch digest, the realm RIM). Only the backend
	// that produced the image understands it.
	Payload any
}

// Validate checks that the image is restorable on a backend of kind k.
func (img *GuestImage) Validate(k Kind) error {
	if img == nil {
		return ErrNilImage
	}
	if img.Kind != k {
		return fmt.Errorf("%w: image is %q, backend is %q", ErrImageKind, img.Kind, k)
	}
	return nil
}

// Snapshotter is implemented by backends that support the priced
// snapshot/restore pair behind warm guest pools. Snapshot performs one
// full measured template build, captures it into an image, and tears
// the template down; Restore rebuilds a running guest from the image
// with the re-measurement skipped, so the restored guest's BootCost is
// the image's RestoreCost rather than a cold launch.
type Snapshotter interface {
	Snapshot(cfg GuestConfig) (*GuestImage, error)
	Restore(img *GuestImage, cfg GuestConfig) (Guest, error)
}
