package tee

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"confbench/internal/cpumodel"
	"confbench/internal/faultplane"
	"confbench/internal/meter"
	"confbench/internal/obs"
)

// guestSeq numbers guests for unique IDs across all backends.
var guestSeq atomic.Uint64

// NextGuestID mints a unique guest identifier with the given prefix.
func NextGuestID(prefix string) string {
	return fmt.Sprintf("%s-%06d", prefix, guestSeq.Add(1))
}

// ReportFunc produces attestation evidence for a guest given a nonce.
type ReportFunc func(ctx context.Context, nonce []byte) ([]byte, error)

// DestroyFunc releases backend-side resources of a guest.
type DestroyFunc func() error

// ModelGuest is the shared Guest implementation used by every backend.
// Backends compose it with their structural simulations (TDX module,
// SEV RMP, CCA RMM) by supplying a cost model, a report function, and
// a destroy hook.
type ModelGuest struct {
	id     string
	kind   Kind
	secure bool
	model  CostModel
	boot   time.Duration

	// transitions counts priced world/VM transitions; bounceBytes
	// counts bytes that crossed the bounce buffer (secure I/O).
	transitions *obs.Counter
	bounceBytes *obs.Counter

	faults *faultplane.Plane
	host   string

	mu        sync.Mutex
	rng       *rand.Rand
	destroyed bool

	report  ReportFunc
	destroy DestroyFunc
}

var _ Guest = (*ModelGuest)(nil)

// ModelGuestConfig assembles a ModelGuest.
type ModelGuestConfig struct {
	IDPrefix string
	Kind     Kind
	Secure   bool
	Model    CostModel
	// BootBase is the baseline VM boot time; the model's StartupNs is
	// added on top for secure guests.
	BootBase time.Duration
	// BootCostOverride, when positive, replaces the computed
	// BootBase+StartupNs boot cost — restored guests charge their
	// image's restore cost instead of a full measured boot.
	BootCostOverride time.Duration
	// Restored marks a guest rebuilt from a snapshot image; it is
	// counted under confbench_tee_guest_restores_total instead of the
	// launches counter.
	Restored bool
	Seed     int64
	Report   ReportFunc
	Destroy  DestroyFunc
	// Obs is the metrics registry transition and bounce-buffer
	// counters report to (nil = the process-wide default).
	Obs *obs.Registry
	// Faults is the fault plane evaluated at the tee.transition and
	// tee.bounce_io points while pricing (nil = fault-free).
	Faults *faultplane.Plane
	// Host labels the guest's host for fault-spec matching.
	Host string
}

// NewModelGuest builds a guest from cfg.
func NewModelGuest(cfg ModelGuestConfig) *ModelGuest {
	boot := cfg.BootBase
	if cfg.Secure {
		boot += cfg.Model.BootCost()
	}
	if cfg.BootCostOverride > 0 {
		boot = cfg.BootCostOverride
	}
	r := obs.OrDefault(cfg.Obs)
	kind := string(cfg.Kind)
	if cfg.Restored {
		r.Counter("confbench_tee_guest_restores_total", "tee", kind).Inc()
	} else {
		r.Counter("confbench_tee_guest_launches_total", "tee", kind).Inc()
	}
	return &ModelGuest{
		id:          NextGuestID(cfg.IDPrefix),
		kind:        cfg.Kind,
		secure:      cfg.Secure,
		model:       cfg.Model.WithSalt(uint64(cfg.Seed) * 0x9E3779B97F4A7C15),
		boot:        boot,
		transitions: r.Counter("confbench_tee_transitions_total", "tee", kind),
		bounceBytes: r.Counter("confbench_tee_bounce_buffer_bytes_total", "tee", kind),
		faults:      cfg.Faults,
		host:        cfg.Host,
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		report:      cfg.Report,
		destroy:     cfg.Destroy,
	}
}

// ID implements Guest.
func (g *ModelGuest) ID() string { return g.id }

// Kind implements Guest.
func (g *ModelGuest) Kind() Kind { return g.kind }

// Secure implements Guest.
func (g *ModelGuest) Secure() bool { return g.secure }

// BootCost implements Guest.
func (g *ModelGuest) BootCost() time.Duration { return g.boot }

// Price implements Guest. On secure guests the fault plane is
// consulted at the transition and bounce-buffer points; an injected
// fault degrades the priced virtual time (Charge.Fault/FaultDelay)
// rather than erroring — a wedged TDX module or RMP contention slows
// the guest down, it does not return an error code.
func (g *ModelGuest) Price(u meter.Usage, base cpumodel.Breakdown) Charge {
	g.mu.Lock()
	charge := g.model.Apply(u, base, g.rng)
	g.mu.Unlock()
	if g.secure {
		if charge.Exits > 0 {
			g.transitions.Add(charge.Exits)
		}
		bytes := u.Get(meter.IOReadBytes) + u.Get(meter.IOWriteBytes)
		if bytes > 0 {
			g.bounceBytes.Add(bytes)
		}
		target := faultplane.Target{TEE: string(g.kind), Host: g.host, VM: g.id}
		if charge.Exits > 0 {
			if d := g.faults.Evaluate(faultplane.PointTEETransition, target); d.Inject {
				charge.Fault = string(d.Kind)
				charge.FaultDelay += d.Latency
			}
		}
		if bytes > 0 {
			if d := g.faults.Evaluate(faultplane.PointTEEBounceIO, target); d.Inject {
				if charge.Fault == "" {
					charge.Fault = string(d.Kind)
				}
				charge.FaultDelay += d.Latency
			}
		}
		charge.Total += charge.FaultDelay
	}
	return charge
}

// AttestationReport implements Guest.
func (g *ModelGuest) AttestationReport(ctx context.Context, nonce []byte) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	g.mu.Lock()
	destroyed := g.destroyed
	g.mu.Unlock()
	if destroyed {
		return nil, ErrGuestDestroyed
	}
	if !g.secure {
		return nil, ErrNotSecure
	}
	if g.report == nil {
		return nil, ErrNoAttestation
	}
	return g.report(ctx, nonce)
}

// Destroy implements Guest. Destroy is idempotent.
func (g *ModelGuest) Destroy() error {
	g.mu.Lock()
	if g.destroyed {
		g.mu.Unlock()
		return nil
	}
	g.destroyed = true
	g.mu.Unlock()
	if g.destroy != nil {
		return g.destroy()
	}
	return nil
}

// Destroyed reports whether Destroy has been called.
func (g *ModelGuest) Destroyed() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.destroyed
}
