package wire

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"confbench/internal/api"
	"confbench/internal/cberr"
	"confbench/internal/faas"
	"confbench/internal/obs"
	"confbench/internal/perfmon"
	"confbench/internal/tee"
)

func TestGuestInvokeRoundTrip(t *testing.T) {
	req := api.GuestInvokeRequest{
		Function: faas.Function{
			Name: "fib-go", Language: "go", Workload: "fib",
			Source: []byte("// fib in go"),
		},
		Scale: -3, // negative scales must survive (varint, not uvarint)
		Trace: true,
	}
	got, err := DecodeGuestInvoke(AppendGuestInvoke(nil, &req))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, req) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, req)
	}
}

func TestInvokeResponseRoundTrip(t *testing.T) {
	resp := api.InvokeResponse{
		Output: "42", WallNs: 1234567, BootstrapNs: 89,
		Perf: perfmon.Stats{
			Wall: 2 * time.Millisecond, Instructions: 1e9, Cycles: 2e9,
			CacheRefs: 5, CacheMisses: 1, ContextSwitches: 3, PageFaults: 7,
			TEEExits: 11, Monitor: "perf-sim",
		},
		Secure: true, Platform: tee.KindTDX, Host: "tdx-host", VM: "tdx-host-secure",
		Trace: &obs.SpanData{Name: "invoke", Layer: "hostagent"},
	}
	b, err := AppendInvokeResponse(nil, &resp)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeInvokeResponse(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Trace == nil || got.Trace.Name != "invoke" {
		t.Fatalf("trace lost: %+v", got.Trace)
	}
	got.Trace, resp.Trace = nil, nil
	if !reflect.DeepEqual(got, resp) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, resp)
	}
}

func TestFrontInvokeRoundTrip(t *testing.T) {
	ti := api.TenantedInvoke{
		Tenant: "acme",
		Req: api.InvokeRequest{
			Function: "primes-rust", Scale: 100, Secure: true,
			TEE: tee.KindSEV, Trace: false,
		},
	}
	got, err := DecodeFrontInvoke(AppendFrontInvoke(nil, &ti))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ti) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, ti)
	}
}

func TestAttestRoundTrip(t *testing.T) {
	req := api.AttestRequest{TEE: tee.KindCCA, Nonce: []byte{1, 2, 3, 4}}
	tenant, got, err := DecodeAttest(AppendAttest(nil, "tenant-x", &req))
	if err != nil || tenant != "tenant-x" || !reflect.DeepEqual(got, req) {
		t.Fatalf("round trip: %q %+v %v", tenant, got, err)
	}
	resp := api.AttestResponse{Evidence: []byte("quote"), AttestNs: 5555}
	gotResp, err := DecodeAttestResp(AppendAttestResp(nil, &resp))
	if err != nil || !reflect.DeepEqual(gotResp, resp) {
		t.Fatalf("resp round trip: %+v %v", gotResp, err)
	}
}

func TestHealthRespRoundTrip(t *testing.T) {
	got, err := DecodeHealthResp(AppendHealthResp(nil, "tdx-host-secure"))
	if err != nil || got != "tdx-host-secure" {
		t.Fatalf("round trip: %q %v", got, err)
	}
}

// TestErrorRoundTrip pins the cberr taxonomy crossing the wire: code,
// layer, retryability, and retry-after must all survive the frame.
func TestErrorRoundTrip(t *testing.T) {
	orig := cberr.WithRetryAfter(
		cberr.New(cberr.CodeUnavailable, cberr.LayerFront, "tenant over quota"),
		1500*time.Millisecond)
	got, err := DecodeError(AppendError(nil, orig))
	if err != nil {
		t.Fatal(err)
	}
	var ce *cberr.Error
	if !errors.As(got, &ce) {
		t.Fatalf("decoded error is not classified: %v", got)
	}
	if ce.Code != cberr.CodeUnavailable || ce.Layer != cberr.LayerFront {
		t.Fatalf("taxonomy lost: %+v", ce)
	}
	if !cberr.Retryable(got) {
		t.Fatal("retryability lost")
	}
	if ra := cberr.RetryAfterOf(got); ra != 1500*time.Millisecond {
		t.Fatalf("retry-after = %v", ra)
	}
}

// TestDecodersRejectTruncation walks every decoder over every prefix of
// a valid payload: all must fail with ErrTruncated (or succeed at the
// full length), never panic.
func TestDecodersRejectTruncation(t *testing.T) {
	resp := api.InvokeResponse{Output: "x", Perf: perfmon.Stats{Monitor: "m"}, Host: "h"}
	respB, err := AppendInvokeResponse(nil, &resp)
	if err != nil {
		t.Fatal(err)
	}
	payloads := map[string]struct {
		b      []byte
		decode func([]byte) error
	}{
		"guest_invoke": {AppendGuestInvoke(nil, &api.GuestInvokeRequest{
			Function: faas.Function{Name: "f", Source: []byte("src")}, Scale: 9,
		}), func(b []byte) error { _, err := DecodeGuestInvoke(b); return err }},
		"invoke_resp": {respB,
			func(b []byte) error { _, err := DecodeInvokeResponse(b); return err }},
		"front_invoke": {AppendFrontInvoke(nil, &api.TenantedInvoke{Tenant: "t"}),
			func(b []byte) error { _, err := DecodeFrontInvoke(b); return err }},
		"attest": {AppendAttest(nil, "t", &api.AttestRequest{Nonce: []byte{9}}),
			func(b []byte) error { _, _, err := DecodeAttest(b); return err }},
		"error": {AppendError(nil, errors.New("plain")),
			func(b []byte) error { _, err := DecodeError(b); return err }},
	}
	for name, tc := range payloads {
		t.Run(name, func(t *testing.T) {
			if err := tc.decode(tc.b); err != nil {
				t.Fatalf("full payload failed: %v", err)
			}
			for i := 0; i < len(tc.b); i++ {
				if err := tc.decode(tc.b[:i]); err != nil && !errors.Is(err, ErrTruncated) {
					t.Fatalf("prefix %d: untyped error %v", i, err)
				}
			}
		})
	}
}
