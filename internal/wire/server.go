package wire

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"confbench/internal/faultplane"
	"confbench/internal/obs"
)

// Batching knobs. A write batch is bounded by count and by a
// sub-millisecond linger timer; the linger only arms when the
// non-blocking drain already found a second frame, so a serial caller
// (one invoke in flight) never pays it.
const (
	maxBatch    = 16
	batchLinger = 200 * time.Microsecond
)

// wireMetrics caches the per-connection-plane obs instruments so the
// hot path increments pre-resolved counters instead of re-hashing
// label sets per frame.
type wireMetrics struct {
	frames   [TError + 1]*obs.Counter
	bytesIn  *obs.Counter
	bytesOut *obs.Counter
	batch    *obs.Histogram
}

func newWireMetrics(reg *obs.Registry) *wireMetrics {
	if reg == nil {
		return nil
	}
	m := &wireMetrics{
		bytesIn:  reg.Counter("confbench_wire_bytes_total", "dir", "in"),
		bytesOut: reg.Counter("confbench_wire_bytes_total", "dir", "out"),
		batch:    reg.HistogramWith("confbench_wire_batch_size", []float64{1, 2, 4, 8, 16}),
	}
	for t := TInvokeReq; t <= TError; t++ {
		m.frames[t] = reg.Counter("confbench_wire_frames_total", "type", t.String())
	}
	return m
}

func (m *wireMetrics) countIn(n int) {
	if m != nil {
		m.bytesIn.Add(uint64(n))
	}
}

// outFrame is one frame queued for the write side. The payload buffer
// is pooled; writeLoop recycles it after the write.
type outFrame struct {
	t       Type
	corr    uint64
	payload []byte
}

// writeLoop owns a connection's write side: it serializes frames from
// ch, batching Nagle-style — block for the first frame, drain whatever
// else is already queued (up to maxBatch), and only when that drain
// proves concurrent traffic exists linger up to batchLinger for more —
// then flushes the whole batch in one syscall. Frames are counted on
// the send side only, so a frame crossing one hop increments
// confbench_wire_frames_total exactly once per registry.
func writeLoop(conn net.Conn, ch <-chan outFrame, dead <-chan struct{}, m *wireMetrics) {
	bw := bufio.NewWriterSize(conn, 32<<10)
	var batch [maxBatch]outFrame
	// One header scratch per connection: bw.Write keeps escape
	// analysis from stack-allocating it, so hoist it out of the loop.
	hdrBuf := make([]byte, 0, HeaderSize)
	for {
		var n int
		select {
		case batch[0] = <-ch:
			n = 1
		case <-dead:
			return
		}
	drain:
		for n < maxBatch {
			select {
			case batch[n] = <-ch:
				n++
			default:
				break drain
			}
		}
		if n > 1 && n < maxBatch {
			timer := time.NewTimer(batchLinger)
		linger:
			for n < maxBatch {
				select {
				case batch[n] = <-ch:
					n++
				case <-timer.C:
					break linger
				case <-dead:
					timer.Stop()
					for i := 0; i < n; i++ {
						PutBuf(batch[i].payload)
					}
					return
				}
			}
			timer.Stop()
		}
		wrote := 0
		failed := false
		for i := 0; i < n; i++ {
			f := batch[i]
			if !failed {
				hdr := AppendHeader(hdrBuf[:0], f.t, f.corr, len(f.payload))
				_, err1 := bw.Write(hdr)
				_, err2 := bw.Write(f.payload)
				if err1 != nil || err2 != nil {
					failed = true
				} else {
					wrote += HeaderSize + len(f.payload)
					if m != nil {
						m.frames[f.t].Inc()
					}
				}
			}
			PutBuf(f.payload)
		}
		if !failed {
			failed = bw.Flush() != nil
		}
		if m != nil {
			m.bytesOut.Add(uint64(wrote))
			m.batch.Observe(time.Duration(n) * time.Second)
		}
		if failed {
			// Poison the connection; the read side unblocks, notices,
			// and runs the kill path (closing dead, failing pending).
			conn.Close()
			return
		}
	}
}

// Handler processes one decoded request frame and returns the
// response frame type and payload (built into a pooled buffer, e.g.
// AppendInvokeResponse(GetBuf(0), ...)). The request payload is only
// valid for the duration of the call — decode, don't retain. An error
// wrapping ErrSever drops the connection with no response (the wire
// analogue of panic(http.ErrAbortHandler)); any other error is sent to
// the peer as a TError frame carrying its cberr classification.
type Handler func(ctx context.Context, t Type, payload []byte) (Type, []byte, error)

// ServerConfig configures a wire front door.
type ServerConfig struct {
	Handler Handler
	// Faults evaluates the wire.frame point per received frame; nil
	// disables injection.
	Faults *faultplane.Plane
	// Target attributes injected faults (host name for history).
	Target faultplane.Target
	// Obs registers the wire frame/byte/batch metrics; nil disables.
	Obs *obs.Registry
}

// Sniffer wraps a listener and splits incoming connections by
// protocol: a two-byte peek of the wire magic routes the connection to
// the binary serving loop, anything else (an HTTP method line is
// printable ASCII) is replayed to the HTTP server through Accept().
// Sniffer is itself a net.Listener, so http.Server.Serve consumes the
// HTTP side unchanged and Shutdown's listener close tears both down.
type Sniffer struct {
	ln     net.Listener
	cfg    ServerConfig
	m      *wireMetrics
	httpCh chan net.Conn
	done   chan struct{}
	once   sync.Once

	mu        sync.Mutex
	acceptErr error
	conns     map[net.Conn]struct{}
}

// NewSniffer starts sniffing ln. The returned Sniffer must be passed
// to an HTTP server (or have Accept drained) or HTTP connections will
// stall.
func NewSniffer(ln net.Listener, cfg ServerConfig) *Sniffer {
	s := &Sniffer{
		ln:     ln,
		cfg:    cfg,
		m:      newWireMetrics(cfg.Obs),
		httpCh: make(chan net.Conn),
		done:   make(chan struct{}),
		conns:  make(map[net.Conn]struct{}),
	}
	go s.acceptLoop()
	return s
}

func (s *Sniffer) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			s.acceptErr = err
			s.mu.Unlock()
			s.once.Do(func() { close(s.done) })
			return
		}
		go s.sniff(conn)
	}
}

// sniff peeks the first two bytes under a deadline so a connected but
// silent peer cannot pin the goroutine forever.
func (s *Sniffer) sniff(conn net.Conn) {
	br := bufio.NewReaderSize(conn, 32<<10)
	_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	peek, err := br.Peek(2)
	_ = conn.SetReadDeadline(time.Time{})
	if err != nil {
		conn.Close()
		return
	}
	bc := &bufConn{r: br, Conn: conn}
	if peek[0] == Magic0 && peek[1] == Magic1 {
		if !s.track(bc) {
			conn.Close()
			return
		}
		defer s.untrack(bc)
		s.serveWire(bc)
		return
	}
	select {
	case s.httpCh <- bc:
	case <-s.done:
		conn.Close()
	}
}

func (s *Sniffer) track(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-s.done:
		return false
	default:
	}
	s.conns[c] = struct{}{}
	return true
}

func (s *Sniffer) untrack(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// Accept implements net.Listener, yielding only HTTP connections.
func (s *Sniffer) Accept() (net.Conn, error) {
	select {
	case c := <-s.httpCh:
		return c, nil
	case <-s.done:
		s.mu.Lock()
		err := s.acceptErr
		s.mu.Unlock()
		if err == nil {
			err = net.ErrClosed
		}
		return nil, err
	}
}

// Close implements net.Listener: stops the accept loop and severs
// every live wire connection so serving goroutines drain.
func (s *Sniffer) Close() error {
	s.once.Do(func() { close(s.done) })
	err := s.ln.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	return err
}

// Addr implements net.Listener.
func (s *Sniffer) Addr() net.Addr { return s.ln.Addr() }

// serveWire runs the binary serving loop on one connection: read a
// frame, evaluate the wire.frame fault point, hand the payload to the
// handler in its own goroutine (responses complete out of order and
// rejoin through the shared write loop keyed by correlation ID).
func (s *Sniffer) serveWire(conn net.Conn) {
	ch := make(chan outFrame, maxBatch)
	dead := make(chan struct{})
	var killOnce sync.Once
	kill := func() {
		killOnce.Do(func() {
			close(dead)
			conn.Close()
		})
	}
	defer kill()
	go writeLoop(conn, ch, dead, s.m)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		h, payload, err := ReadFrame(conn)
		if err != nil {
			return
		}
		s.m.countIn(HeaderSize + len(payload))
		if d := s.cfg.Faults.Evaluate(faultplane.PointWireFrame, s.cfg.Target); d.Inject {
			switch d.Kind {
			case faultplane.KindLatency, faultplane.KindSlowIO:
				time.Sleep(d.Latency)
			case faultplane.KindError:
				errPayload := AppendError(GetBuf(0), d.Err)
				PutBuf(payload)
				select {
				case ch <- outFrame{t: TError, corr: h.Corr, payload: errPayload}:
				case <-dead:
					PutBuf(errPayload)
				}
				continue
			default: // drop, crash: sever with no response
				PutBuf(payload)
				return
			}
		}
		wg.Add(1)
		go func(h Header, payload []byte) {
			defer wg.Done()
			rt, rp, herr := s.cfg.Handler(ctx, h.Type, payload)
			PutBuf(payload)
			if herr != nil {
				if errors.Is(herr, ErrSever) {
					PutBuf(rp)
					kill()
					return
				}
				rt, rp = TError, AppendError(GetBuf(0), herr)
			}
			select {
			case ch <- outFrame{t: rt, corr: h.Corr, payload: rp}:
			case <-dead:
				PutBuf(rp)
			}
		}(h, payload)
	}
}

// bufConn replays bytes buffered during the protocol peek ahead of the
// raw connection.
type bufConn struct {
	r *bufio.Reader
	net.Conn
}

func (c *bufConn) Read(p []byte) (int, error) { return c.r.Read(p) }

var _ net.Listener = (*Sniffer)(nil)

// errString formats a peer address into wire errors consistently.
func errString(addr string, err error) error {
	return fmt.Errorf("wire: peer %s: %w", addr, err)
}
