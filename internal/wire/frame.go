// Package wire implements the confbench relay protocol: a
// length-prefixed binary framing carried over persistent multiplexed
// connections, the codecs for the api request/response types, and the
// two Transport implementations ("httpjson" extracting the legacy
// JSON-over-HTTP hop, "binary" speaking this protocol) selectable at
// every hop of the pipeline.
//
// Frame layout (all integers big-endian):
//
//	offset  size  field
//	0       2     magic 0xCF 0xBE
//	2       1     version (1)
//	3       1     type
//	4       1     flags
//	5       8     correlation ID
//	13      4     payload length
//	17      n     payload
//
// Responses complete out of order: the peer matches responses to
// requests by correlation ID, so one connection multiplexes any number
// of concurrent invokes.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Frame constants. The magic bytes are deliberately outside printable
// ASCII so the front-door sniffer can distinguish a wire connection
// from an HTTP request line ("GET ", "POST") with a two-byte peek.
const (
	Magic0 = 0xCF
	Magic1 = 0xBE

	// Version is the only protocol version in existence.
	Version = 1

	// HeaderSize is the fixed frame-header length in bytes.
	HeaderSize = 17

	// MaxPayload bounds a frame payload. It matches the api client's
	// 16 MiB response-body cap so neither carrier can smuggle a larger
	// message than the other accepts.
	MaxPayload = 16 << 20
)

// Type identifies what a frame's payload encodes.
type Type uint8

// Frame types. The zero value is invalid so an all-zeroes header never
// parses as a usable frame.
const (
	TInvokeReq      Type = 1  // guest-hop invoke request (api.GuestInvokeRequest)
	TInvokeResp     Type = 2  // invoke response (api.InvokeResponse)
	TFrontInvokeReq Type = 3  // front-door invoke request (api.TenantedInvoke)
	TAttestReq      Type = 4  // attestation request (api.AttestRequest, + tenant)
	TAttestResp     Type = 5  // attestation response (api.AttestResponse)
	THealthReq      Type = 6  // health probe (empty payload)
	THealthResp     Type = 7  // health response (detail string)
	TObsReq         Type = 8  // obs scrape request (empty payload)
	TObsResp        Type = 9  // obs snapshot (JSON-encoded obs.Snapshot)
	TError          Type = 10 // error response (cberr code/layer/retryability/retry-after/message)
)

// Valid reports whether t is a known frame type.
func (t Type) Valid() bool { return t >= TInvokeReq && t <= TError }

// String names the frame type for metric labels and errors.
func (t Type) String() string {
	switch t {
	case TInvokeReq:
		return "invoke_req"
	case TInvokeResp:
		return "invoke_resp"
	case TFrontInvokeReq:
		return "front_invoke_req"
	case TAttestReq:
		return "attest_req"
	case TAttestResp:
		return "attest_resp"
	case THealthReq:
		return "health_req"
	case THealthResp:
		return "health_resp"
	case TObsReq:
		return "obs_req"
	case TObsResp:
		return "obs_resp"
	case TError:
		return "error"
	default:
		return fmt.Sprintf("unknown(%d)", uint8(t))
	}
}

// Typed decode errors. Decoders return these (possibly wrapped with
// positional detail) and never panic on hostile input.
var (
	ErrBadMagic    = errors.New("wire: bad magic")
	ErrBadVersion  = errors.New("wire: unsupported version")
	ErrTruncated   = errors.New("wire: truncated frame")
	ErrOversize    = errors.New("wire: payload exceeds limit")
	ErrUnknownType = errors.New("wire: unknown frame type")
)

// ErrSever instructs the serving loop to drop the connection without a
// response frame — the carrier-level analogue of the HTTP handlers'
// panic(http.ErrAbortHandler) used by crash/drop faults.
var ErrSever = errors.New("wire: sever connection")

// Header is a parsed frame header.
type Header struct {
	Type  Type
	Flags uint8
	Corr  uint64
	Len   uint32
}

// ParseHeader decodes a fixed-size frame header. b may be longer than
// HeaderSize; only the first HeaderSize bytes are read.
func ParseHeader(b []byte) (Header, error) {
	var h Header
	if len(b) < HeaderSize {
		return h, fmt.Errorf("%w: header %d bytes, need %d", ErrTruncated, len(b), HeaderSize)
	}
	if b[0] != Magic0 || b[1] != Magic1 {
		return h, fmt.Errorf("%w: 0x%02x 0x%02x", ErrBadMagic, b[0], b[1])
	}
	if b[2] != Version {
		return h, fmt.Errorf("%w: %d", ErrBadVersion, b[2])
	}
	h.Type = Type(b[3])
	if !h.Type.Valid() {
		return h, fmt.Errorf("%w: %d", ErrUnknownType, b[3])
	}
	h.Flags = b[4]
	h.Corr = binary.BigEndian.Uint64(b[5:13])
	h.Len = binary.BigEndian.Uint32(b[13:17])
	if h.Len > MaxPayload {
		return h, fmt.Errorf("%w: %d > %d", ErrOversize, h.Len, MaxPayload)
	}
	return h, nil
}

// AppendHeader appends a frame header for (t, corr, payload length n)
// to dst and returns the extended slice.
func AppendHeader(dst []byte, t Type, corr uint64, n int) []byte {
	var hdr [HeaderSize]byte
	hdr[0], hdr[1], hdr[2], hdr[3], hdr[4] = Magic0, Magic1, Version, byte(t), 0
	binary.BigEndian.PutUint64(hdr[5:13], corr)
	binary.BigEndian.PutUint32(hdr[13:17], uint32(n))
	return append(dst, hdr[:]...)
}

// AppendFrame appends a complete frame (header + payload) to dst.
func AppendFrame(dst []byte, t Type, corr uint64, payload []byte) []byte {
	dst = AppendHeader(dst, t, corr, len(payload))
	return append(dst, payload...)
}

// DecodeFrame splits one frame off the front of b without copying,
// returning the header, its payload (aliasing b), and the remaining
// bytes. The length field is validated before any slicing so hostile
// lengths cannot trigger allocation or panic — this is the fuzz
// harness's entry point.
func DecodeFrame(b []byte) (Header, []byte, []byte, error) {
	h, err := ParseHeader(b)
	if err != nil {
		return h, nil, nil, err
	}
	end := HeaderSize + int(h.Len)
	if len(b) < end {
		return h, nil, nil, fmt.Errorf("%w: payload %d bytes, need %d", ErrTruncated, len(b)-HeaderSize, h.Len)
	}
	return h, b[HeaderSize:end], b[end:], nil
}

// ReadFrame reads one frame from r. The returned payload slice comes
// from the buffer pool: callers must hand it back with PutBuf once
// decoded. A header that fails validation is returned with its error
// before any payload read, so a poisoned stream costs at most
// HeaderSize bytes of reading.
func ReadFrame(r io.Reader) (Header, []byte, error) {
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Header{}, nil, err
	}
	h, err := ParseHeader(hdr[:])
	if err != nil {
		return h, nil, err
	}
	payload := GetBuf(int(h.Len))
	if _, err := io.ReadFull(r, payload); err != nil {
		PutBuf(payload)
		return h, nil, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	return h, payload, nil
}

// Buffer pool. Frames and payloads churn at invoke rate, so both the
// read and write paths recycle their scratch through one pool. Buffers
// above poolBufCap are left for the GC rather than pinned forever.
const poolBufCap = 64 << 10

var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// GetBuf returns a pooled buffer of length n (n may be 0 for use as an
// append target).
func GetBuf(n int) []byte {
	bp := bufPool.Get().(*[]byte)
	b := *bp
	if cap(b) < n {
		bufPool.Put(bp)
		return make([]byte, n)
	}
	return b[:n]
}

// PutBuf recycles a buffer obtained from GetBuf (or grown from one).
// Oversized buffers are dropped to bound pool memory.
func PutBuf(b []byte) {
	if cap(b) == 0 || cap(b) > poolBufCap {
		return
	}
	b = b[:0]
	bufPool.Put(&b)
}
