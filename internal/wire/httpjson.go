package wire

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"confbench/internal/api"
	"confbench/internal/cberr"
)

// HTTPJSON is the legacy hop carrier: one JSON-over-HTTP exchange per
// call, relying on net/http keep-alive for connection reuse. The body
// of RoundTrip is the gateway's historical forward() extracted
// verbatim — same error classification, same envelope handling — so
// selecting "httpjson" reproduces the pre-transport behavior exactly.
type HTTPJSON struct {
	client *http.Client
}

// NewHTTPJSON builds the JSON-over-HTTP transport with the same 120 s
// exchange timeout the gateway's embedded client used.
func NewHTTPJSON() *HTTPJSON {
	return &HTTPJSON{client: &http.Client{Timeout: 120 * time.Second}}
}

// Name implements Transport.
func (t *HTTPJSON) Name() string { return TransportHTTPJSON }

// Close drops idle keep-alive connections.
func (t *HTTPJSON) Close() error {
	t.client.CloseIdleConnections()
	return nil
}

// RoundTrip implements Transport. A nil in performs a GET (health and
// obs-scrape shapes); otherwise the request POSTs as JSON. An
// api.TenantedInvoke unwraps to its inner request with the tenant in
// the X-Confbench-Tenant header, mirroring what the api client sends.
func (t *HTTPJSON) RoundTrip(ctx context.Context, addr, path string, in, out any) error {
	tenant := ""
	switch ti := in.(type) {
	case *api.TenantedInvoke:
		tenant, in = ti.Tenant, &ti.Req
	case *api.TenantedAttest:
		tenant, in = ti.Tenant, &ti.Req
	}
	var req *http.Request
	var err error
	if in == nil {
		req, err = http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+path, nil)
		if err != nil {
			return cberr.Wrap(cberr.CodeInternal, cberr.LayerGateway,
				fmt.Errorf("wire: request to %s: %w", addr, err))
		}
	} else {
		body, merr := json.Marshal(in)
		if merr != nil {
			return cberr.Wrap(cberr.CodeInternal, cberr.LayerGateway,
				fmt.Errorf("wire: marshal forward body: %w", merr))
		}
		req, err = http.NewRequestWithContext(ctx, http.MethodPost, "http://"+addr+path, bytes.NewReader(body))
		if err != nil {
			return cberr.Wrap(cberr.CodeInternal, cberr.LayerGateway,
				fmt.Errorf("wire: forward to %s: %w", addr, err))
		}
		req.Header.Set("Content-Type", "application/json")
	}
	if tenant != "" {
		req.Header.Set(api.HeaderTenant, tenant)
	}
	resp, err := t.client.Do(req)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return cberr.From(fmt.Errorf("wire: forward to %s: %w", addr, cerr), cberr.LayerGateway)
		}
		return cberr.Wrap(cberr.CodeUpstream, cberr.LayerGateway,
			fmt.Errorf("wire: forward to %s: %w", addr, err))
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return cberr.Wrap(cberr.CodeUpstream, cberr.LayerGateway,
			fmt.Errorf("wire: read %s response: %w", addr, err))
	}
	if resp.StatusCode != http.StatusOK {
		var e api.ErrorResponse
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			if e.Code != "" {
				// Re-attach the upstream classification so canceled and
				// deadline verdicts keep their identity across the hop.
				return fmt.Errorf("wire: peer %s: %w", addr,
					cberr.FromWire(e.Code, e.Layer, e.Retryable, e.Error))
			}
			return cberr.Wrap(cberr.CodeUpstream, cberr.LayerGateway,
				fmt.Errorf("wire: peer %s: %s", addr, e.Error))
		}
		return cberr.Wrap(cberr.CodeUpstream, cberr.LayerGateway,
			fmt.Errorf("wire: peer %s: status %d", addr, resp.StatusCode))
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return cberr.Wrap(cberr.CodeUpstream, cberr.LayerGateway,
			fmt.Errorf("wire: decode %s response: %w", addr, err))
	}
	return nil
}
