package wire

import (
	"fmt"

	"confbench/internal/api"
	"confbench/internal/obs"
)

// Transport is the hop-carrier interface, defined in internal/api so
// the api client can accept one without importing this package.
type Transport = api.Transport

// Transport names accepted by -transport flags and the WithTransport
// options.
const (
	TransportHTTPJSON = "httpjson"
	TransportBinary   = "binary"
)

// ValidTransport reports whether name selects a known transport. The
// empty string is valid and means the default (httpjson).
func ValidTransport(name string) bool {
	switch name {
	case "", TransportHTTPJSON, TransportBinary:
		return true
	}
	return false
}

// NewTransport builds the named transport. reg may be nil; the binary
// transport then runs without wire metrics.
func NewTransport(name string, reg *obs.Registry) (Transport, error) {
	switch name {
	case "", TransportHTTPJSON:
		return NewHTTPJSON(), nil
	case TransportBinary:
		return NewBinary(reg), nil
	}
	return nil, fmt.Errorf("wire: unknown transport %q (want %s or %s)", name, TransportHTTPJSON, TransportBinary)
}
