package wire

import (
	"errors"
	"io"
	"testing"

	"confbench/internal/api"
	"confbench/internal/faas"
)

// fuzzTypedErrs is the closed set of errors frame decoding may return.
// Anything else (or a panic, caught by the fuzz driver itself) is a
// finding.
var fuzzTypedErrs = []error{
	ErrBadMagic, ErrBadVersion, ErrTruncated, ErrOversize, ErrUnknownType,
}

func isTyped(err error) bool {
	for _, te := range fuzzTypedErrs {
		if errors.Is(err, te) {
			return true
		}
	}
	return false
}

// FuzzWireFrame drives the full hostile-input surface: frame splitting
// (DecodeFrame), streaming reads (ReadFrame), and every payload
// decoder. The invariants: never panic, never return an untyped frame
// error, never allocate beyond the declared input (the dec cursor
// validates lengths against the remaining bytes before any make), and
// agree between the streaming and in-memory paths.
func FuzzWireFrame(f *testing.F) {
	// Seed with one well-formed frame per type plus classic corruptions;
	// the committed corpus under testdata/fuzz extends these.
	f.Add(AppendFrame(nil, TInvokeReq, 1, AppendGuestInvoke(nil, &api.GuestInvokeRequest{
		Function: faas.Function{Name: "fib-go", Language: "go", Workload: "fib", Source: []byte("src")},
		Scale:    22, Trace: true,
	})))
	f.Add(AppendFrame(nil, TFrontInvokeReq, 2, AppendFrontInvoke(nil, &api.TenantedInvoke{
		Tenant: "acme", Req: api.InvokeRequest{Function: "primes-rust", Scale: 7, Secure: true},
	})))
	f.Add(AppendFrame(nil, TAttestReq, 3, AppendAttest(nil, "t", &api.AttestRequest{Nonce: []byte{1, 2}})))
	f.Add(AppendFrame(nil, THealthResp, 4, AppendHealthResp(nil, "ok")))
	f.Add(AppendFrame(nil, TError, 5, AppendError(nil, errors.New("boom"))))
	f.Add([]byte{Magic0, Magic1})                                        // truncated header
	f.Add([]byte("GET /v1/invoke HTTP/1.1\r\n"))                         // HTTP, not wire
	f.Add(AppendHeader(nil, TObsResp, 6, MaxPayload))                    // oversized declared payload
	f.Add(append(AppendHeader(nil, TInvokeReq, 7, 3), 0xFF, 0xFF, 0xFF)) // hostile varints

	f.Fuzz(func(t *testing.T, b []byte) {
		h, payload, rest, err := DecodeFrame(b)
		if err != nil {
			if !isTyped(err) {
				t.Fatalf("untyped frame error: %v", err)
			}
			return
		}
		if int(h.Len) != len(payload) || len(payload) > MaxPayload {
			t.Fatalf("header/payload disagree: len=%d payload=%d", h.Len, len(payload))
		}
		if HeaderSize+len(payload)+len(rest) != len(b) {
			t.Fatalf("frame accounting: %d+%d+%d != %d", HeaderSize, len(payload), len(rest), len(b))
		}

		// The streaming path must agree with the in-memory split.
		rh, rp, rerr := ReadFrame(newSliceReader(b))
		if rerr != nil {
			t.Fatalf("ReadFrame disagrees with DecodeFrame: %v", rerr)
		}
		if rh != h || string(rp) != string(payload) {
			t.Fatalf("stream/in-memory mismatch: %+v vs %+v", rh, h)
		}
		PutBuf(rp)

		// Payload decoders must fail typed (or succeed), never panic —
		// even when fed a payload framed as the wrong type.
		decodePayloadEveryWay(t, payload)
	})
}

func decodePayloadEveryWay(t *testing.T, payload []byte) {
	t.Helper()
	check := func(err error) {
		if err != nil && !isTyped(err) {
			t.Fatalf("untyped payload error: %v", err)
		}
	}
	_, err := DecodeGuestInvoke(payload)
	check(err)
	_, err = DecodeFrontInvoke(payload)
	check(err)
	_, _, err = DecodeAttest(payload)
	check(err)
	_, err = DecodeAttestResp(payload)
	check(err)
	_, err = DecodeHealthResp(payload)
	check(err)
	_, err = DecodeError(payload)
	check(err)
	// The invoke-response decoder may additionally surface an
	// encoding/json error from the optional trace blob; any error class
	// is acceptable there, a panic is not.
	_, _ = DecodeInvokeResponse(payload)
}

// sliceReader is an io.Reader over b without bytes.Reader's Seek
// methods, keeping ReadFrame on its io.ReadFull path.
type sliceReader struct{ b []byte }

func newSliceReader(b []byte) *sliceReader { return &sliceReader{b: b} }

func (r *sliceReader) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.b)
	r.b = r.b[n:]
	return n, nil
}
