package wire

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"confbench/internal/api"
	"confbench/internal/cberr"
	"confbench/internal/faas"
	"confbench/internal/faultplane"
	"confbench/internal/obs"
)

func TestValidTransportAndNewTransport(t *testing.T) {
	for _, name := range []string{"", TransportHTTPJSON, TransportBinary} {
		if !ValidTransport(name) {
			t.Fatalf("%q should be valid", name)
		}
		tr, err := NewTransport(name, nil)
		if err != nil {
			t.Fatalf("NewTransport(%q): %v", name, err)
		}
		defer tr.Close()
		want := name
		if want == "" {
			want = TransportHTTPJSON
		}
		if tr.Name() != want {
			t.Fatalf("NewTransport(%q).Name() = %q", name, tr.Name())
		}
	}
	if ValidTransport("carrier-pigeon") {
		t.Fatal("bogus transport accepted")
	}
	if _, err := NewTransport("carrier-pigeon", nil); err == nil {
		t.Fatal("bogus transport built")
	}
}

// TestHTTPJSONRoundTrip pins the legacy carrier: tenant-wrapped
// requests unwrap into the header, bodies are JSON, and peer error
// envelopes recover their cberr classification.
func TestHTTPJSONRoundTrip(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == api.PathInvoke && r.Method == http.MethodPost:
			if got := r.Header.Get(api.HeaderTenant); got != "acme" {
				t.Errorf("tenant header = %q", got)
			}
			var req api.InvokeRequest
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				t.Errorf("body decode: %v", err)
			}
			if req.Function == "reject-me" {
				w.WriteHeader(http.StatusServiceUnavailable)
				json.NewEncoder(w).Encode(api.ErrorEnvelope(
					cberr.New(cberr.CodeUnavailable, cberr.LayerFront, "shard draining")))
				return
			}
			json.NewEncoder(w).Encode(api.InvokeResponse{Output: req.Function + " done"})
		case r.URL.Path == api.PathHealth && r.Method == http.MethodGet:
			w.WriteHeader(http.StatusOK)
		default:
			t.Errorf("unexpected request %s %s", r.Method, r.URL.Path)
			w.WriteHeader(http.StatusNotFound)
		}
	}))
	defer srv.Close()
	addr := strings.TrimPrefix(srv.URL, "http://")

	tr := NewHTTPJSON()
	defer tr.Close()
	ctx := context.Background()

	var resp api.InvokeResponse
	in := &api.TenantedInvoke{Tenant: "acme", Req: api.InvokeRequest{Function: "fib-go", Scale: 5}}
	if err := tr.RoundTrip(ctx, addr, api.PathInvoke, in, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Output != "fib-go done" {
		t.Fatalf("output = %q", resp.Output)
	}
	if err := tr.RoundTrip(ctx, addr, api.PathHealth, nil, nil); err != nil {
		t.Fatalf("health: %v", err)
	}

	err := tr.RoundTrip(ctx, addr, api.PathInvoke,
		&api.TenantedInvoke{Tenant: "acme", Req: api.InvokeRequest{Function: "reject-me"}}, &resp)
	if err == nil {
		t.Fatal("peer error swallowed")
	}
	var ce *cberr.Error
	if !errors.As(err, &ce) || ce.Code != cberr.CodeUnavailable {
		t.Fatalf("classification lost across the hop: %v", err)
	}
	if !cberr.Retryable(err) {
		t.Fatalf("retryability lost: %v", err)
	}
}

// echoHandler answers health and guest-invoke frames; a function named
// "explode" returns a classified error, exercising the TError path.
func echoHandler(ctx context.Context, ft Type, payload []byte) (Type, []byte, error) {
	switch ft {
	case THealthReq:
		return THealthResp, AppendHealthResp(GetBuf(0), "ok"), nil
	case TInvokeReq:
		req, err := DecodeGuestInvoke(payload)
		if err != nil {
			return 0, nil, err
		}
		if req.Function.Name == "explode" {
			return 0, nil, cberr.New(cberr.CodeUpstream, cberr.LayerHost, "guest exploded")
		}
		resp := api.InvokeResponse{Output: req.Function.Name + " ran", Host: "test-host"}
		b, err := AppendInvokeResponse(GetBuf(0), &resp)
		if err != nil {
			return 0, nil, err
		}
		return TInvokeResp, b, nil
	default:
		return 0, nil, fmt.Errorf("%w: unhandled %s", ErrSever, ft)
	}
}

// startSniffer boots a sniffing listener with echoHandler plus an HTTP
// mux on the same port, returning its address.
func startSniffer(t *testing.T, cfg ServerConfig) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Handler == nil {
		cfg.Handler = echoHandler
	}
	sniffer := NewSniffer(ln, cfg)
	mux := http.NewServeMux()
	mux.HandleFunc(api.PathHealth, func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "http ok")
	})
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(sniffer)
	t.Cleanup(func() {
		srv.Close()
		sniffer.Close()
	})
	return ln.Addr().String()
}

// TestSnifferDualProtocol serves binary frames and HTTP from one
// listener: the two-byte magic peek routes each connection.
func TestSnifferDualProtocol(t *testing.T) {
	addr := startSniffer(t, ServerConfig{})

	// HTTP side: a plain GET is replayed to the mux untouched.
	resp, err := http.Get("http://" + addr + api.PathHealth)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "http ok" {
		t.Fatalf("http side answered %q", body)
	}

	// Binary side: same port, wire magic, served by the handler.
	tr := NewBinary(nil)
	defer tr.Close()
	if err := tr.RoundTrip(context.Background(), addr, api.PathHealth, nil, nil); err != nil {
		t.Fatalf("binary side: %v", err)
	}
}

// TestBinaryTransportRoundTrip drives invoke frames — success and
// classified failure — through a real sniffer.
func TestBinaryTransportRoundTrip(t *testing.T) {
	reg := obs.New()
	addr := startSniffer(t, ServerConfig{Obs: reg})
	tr := NewBinary(reg)
	defer tr.Close()
	ctx := context.Background()

	var resp api.InvokeResponse
	req := &api.GuestInvokeRequest{Function: faas.Function{Name: "fib-go", Workload: "fib"}, Scale: 3}
	if err := tr.RoundTrip(ctx, addr, api.GuestV1Invoke, req, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Output != "fib-go ran" || resp.Host != "test-host" {
		t.Fatalf("response = %+v", resp)
	}

	err := tr.RoundTrip(ctx, addr,
		api.GuestV1Invoke, &api.GuestInvokeRequest{Function: faas.Function{Name: "explode"}}, &resp)
	var ce *cberr.Error
	if !errors.As(err, &ce) || ce.Code != cberr.CodeUpstream {
		t.Fatalf("peer error lost classification: %v", err)
	}
	if !strings.Contains(err.Error(), "guest exploded") {
		t.Fatalf("peer message lost: %v", err)
	}

	// Unmapped paths fail fast client-side, before touching the network.
	if err := tr.RoundTrip(ctx, addr, "/no/such/frame", nil, nil); err == nil {
		t.Fatal("unmapped path accepted")
	}
}

// TestBinaryConcurrentMuxUnderFrameFaults is the -race acceptance
// test: many goroutines multiplex invokes over shared connections
// while the server's faultplane severs connections mid-stream at the
// wire.frame point. Every call must either succeed or fail retryable —
// no hangs, no lost waiters, no unclassified errors — and the
// transport must redial: after the storm a fresh call succeeds.
func TestBinaryConcurrentMuxUnderFrameFaults(t *testing.T) {
	plane := faultplane.New(42)
	if err := plane.Register(faultplane.Spec{
		Point: faultplane.PointWireFrame, Kind: faultplane.KindDrop, Probability: 0.2,
	}); err != nil {
		t.Fatal(err)
	}
	addr := startSniffer(t, ServerConfig{
		Faults: plane,
		Target: faultplane.Target{Host: "mux-test"},
	})
	tr := NewBinary(nil)
	defer tr.Close()

	const workers, callsPerWorker = 8, 25
	var wg sync.WaitGroup
	var ok, retryable atomicCounter
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < callsPerWorker; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				var resp api.InvokeResponse
				req := &api.GuestInvokeRequest{
					Function: faas.Function{Name: fmt.Sprintf("fn-%d-%d", w, i)},
				}
				err := tr.RoundTrip(ctx, addr, api.GuestV1Invoke, req, &resp)
				cancel()
				switch {
				case err == nil:
					if want := req.Function.Name + " ran"; resp.Output != want {
						t.Errorf("worker %d call %d: cross-talk: %q != %q", w, i, resp.Output, want)
					}
					ok.add()
				case cberr.Retryable(err):
					retryable.add()
				default:
					t.Errorf("worker %d call %d: non-retryable: %v", w, i, err)
				}
			}
		}(w)
	}
	wg.Wait()

	if ok.get() == 0 {
		t.Fatal("no call survived — fault too aggressive or mux broken")
	}
	if retryable.get() == 0 {
		t.Fatal("no fault observed — injection never fired")
	}
	if got := plane.Injected(); got == 0 {
		t.Fatal("plane recorded no injections")
	}
	t.Logf("ok=%d retryable=%d injected=%d", ok.get(), retryable.get(), plane.Injected())

	// Severed connections must be replaced on the next dial. Retry a
	// few times: each attempt can itself be unlucky.
	var err error
	for attempt := 0; attempt < 20; attempt++ {
		var resp api.InvokeResponse
		err = tr.RoundTrip(context.Background(), addr, api.GuestV1Invoke,
			&api.GuestInvokeRequest{Function: faas.Function{Name: "after-storm"}}, &resp)
		if err == nil {
			return
		}
		if !cberr.Retryable(err) {
			t.Fatalf("post-storm non-retryable: %v", err)
		}
	}
	t.Fatalf("transport never recovered: %v", err)
}

type atomicCounter struct {
	mu sync.Mutex
	n  int
}

func (c *atomicCounter) add() { c.mu.Lock(); c.n++; c.mu.Unlock() }
func (c *atomicCounter) get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}
