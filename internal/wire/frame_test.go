package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestHeaderRoundTrip(t *testing.T) {
	payload := []byte("hello frames")
	b := AppendFrame(nil, TInvokeReq, 0xDEADBEEFCAFE, payload)
	if len(b) != HeaderSize+len(payload) {
		t.Fatalf("frame length = %d, want %d", len(b), HeaderSize+len(payload))
	}
	h, p, rest, err := DecodeFrame(b)
	if err != nil {
		t.Fatal(err)
	}
	if h.Type != TInvokeReq || h.Corr != 0xDEADBEEFCAFE || h.Len != uint32(len(payload)) {
		t.Fatalf("header = %+v", h)
	}
	if !bytes.Equal(p, payload) || len(rest) != 0 {
		t.Fatalf("payload = %q rest = %q", p, rest)
	}
}

func TestParseHeaderErrors(t *testing.T) {
	valid := AppendHeader(nil, THealthReq, 7, 0)
	cases := []struct {
		name string
		mut  func([]byte) []byte
		want error
	}{
		{"truncated", func(b []byte) []byte { return b[:HeaderSize-1] }, ErrTruncated},
		{"empty", func(b []byte) []byte { return nil }, ErrTruncated},
		{"bad magic", func(b []byte) []byte { b[0] = 'G'; return b }, ErrBadMagic},
		{"bad version", func(b []byte) []byte { b[2] = 99; return b }, ErrBadVersion},
		{"zero type", func(b []byte) []byte { b[3] = 0; return b }, ErrUnknownType},
		{"high type", func(b []byte) []byte { b[3] = byte(TError) + 1; return b }, ErrUnknownType},
		{"oversize", func(b []byte) []byte {
			b[13], b[14], b[15], b[16] = 0xFF, 0xFF, 0xFF, 0xFF
			return b
		}, ErrOversize},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mut(append([]byte(nil), valid...))
			if _, err := ParseHeader(b); !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
		})
	}
}

// TestDecodeFrameStream splits consecutive frames off one buffer
// without copying.
func TestDecodeFrameStream(t *testing.T) {
	b := AppendFrame(nil, TInvokeReq, 1, []byte("first"))
	b = AppendFrame(b, TInvokeResp, 2, []byte("second"))
	h1, p1, rest, err := DecodeFrame(b)
	if err != nil || h1.Corr != 1 || string(p1) != "first" {
		t.Fatalf("first frame: %+v %q %v", h1, p1, err)
	}
	h2, p2, rest, err := DecodeFrame(rest)
	if err != nil || h2.Corr != 2 || string(p2) != "second" {
		t.Fatalf("second frame: %+v %q %v", h2, p2, err)
	}
	if len(rest) != 0 {
		t.Fatalf("trailing bytes: %q", rest)
	}
	// A frame whose declared length exceeds the available bytes is
	// truncated, not panicking or allocating.
	short := AppendHeader(nil, TObsResp, 3, 1000)
	if _, _, _, err := DecodeFrame(short); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short frame err = %v", err)
	}
}

func TestReadFrame(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(AppendFrame(nil, TAttestReq, 42, []byte("evidence please")))
	h, payload, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	defer PutBuf(payload)
	if h.Type != TAttestReq || h.Corr != 42 || string(payload) != "evidence please" {
		t.Fatalf("frame = %+v %q", h, payload)
	}
	// A stream that dies mid-payload is a truncated frame.
	var cut bytes.Buffer
	full := AppendFrame(nil, TInvokeReq, 1, []byte("cut me off"))
	cut.Write(full[:len(full)-3])
	if _, _, err := ReadFrame(&cut); !errors.Is(err, ErrTruncated) {
		t.Fatalf("mid-payload err = %v", err)
	}
	// A stream that dies mid-header surfaces the raw read error.
	if _, _, err := ReadFrame(bytes.NewReader(full[:5])); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("mid-header err = %v", err)
	}
}

func TestTypeStringAndValid(t *testing.T) {
	for ft := TInvokeReq; ft <= TError; ft++ {
		if !ft.Valid() {
			t.Fatalf("%d should be valid", ft)
		}
		if s := ft.String(); s == "" || s[0] == 'u' && s != "unknown(0)" && len(s) > 8 && s[:7] == "unknown" {
			t.Fatalf("%d renders %q", ft, s)
		}
	}
	if Type(0).Valid() || Type(TError+1).Valid() {
		t.Fatal("out-of-range types report valid")
	}
	if got := Type(200).String(); got != "unknown(200)" {
		t.Fatalf("unknown type renders %q", got)
	}
}

func TestBufPoolRecycles(t *testing.T) {
	b := GetBuf(100)
	if len(b) != 100 {
		t.Fatalf("len = %d", len(b))
	}
	PutBuf(b)
	if b2 := GetBuf(0); len(b2) != 0 {
		t.Fatalf("append-target buffer has len %d", len(b2))
	}
	// Oversized buffers are dropped, not pooled.
	PutBuf(make([]byte, poolBufCap+1))
	PutBuf(nil) // must not panic
}
