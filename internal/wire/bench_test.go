package wire

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"confbench/internal/api"
	"confbench/internal/faas"
	"confbench/internal/perfmon"
)

// benchGuestReq is a realistic invoke frame: a small source blob and
// the fields every hop carries.
var benchGuestReq = api.GuestInvokeRequest{
	Function: faas.Function{
		Name: "fib-go", Language: "go", Workload: "fib",
		Source: []byte("package main\nfunc fib(n int) int { if n < 2 { return n }; return fib(n-1) + fib(n-2) }"),
	},
	Scale: 30,
}

var benchInvokeResp = api.InvokeResponse{
	Output: "832040", WallNs: 1_200_000, BootstrapNs: 40_000,
	Perf: perfmon.Stats{
		Wall: 1200 * time.Microsecond, Instructions: 9_000_000, Cycles: 4_000_000,
		CacheRefs: 120_000, CacheMisses: 9_000, ContextSwitches: 2, PageFaults: 14,
		TEEExits: 7, Monitor: "perf-sim",
	},
	Secure: true, Platform: "tdx", Host: "host-0", VM: "host-0-secure",
}

// BenchmarkCodecEncodeGuestInvoke measures the steady-state encode
// path with a recycled buffer — the zero-alloc target.
func BenchmarkCodecEncodeGuestInvoke(b *testing.B) {
	buf := GetBuf(0)
	defer PutBuf(buf)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendGuestInvoke(buf[:0], &benchGuestReq)
	}
	if len(buf) == 0 {
		b.Fatal("empty encode")
	}
}

func BenchmarkCodecDecodeGuestInvoke(b *testing.B) {
	payload := AppendGuestInvoke(nil, &benchGuestReq)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeGuestInvoke(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodecEncodeInvokeResponse(b *testing.B) {
	buf := GetBuf(0)
	defer PutBuf(buf)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = AppendInvokeResponse(buf[:0], &benchInvokeResp)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodecDecodeInvokeResponse(b *testing.B) {
	payload, err := AppendInvokeResponse(nil, &benchInvokeResp)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeInvokeResponse(payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCodecFrameHeader isolates the fixed-cost frame machinery.
func BenchmarkCodecFrameHeader(b *testing.B) {
	hdr := make([]byte, 0, HeaderSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hdr = AppendHeader(hdr[:0], TInvokeReq, uint64(i), 512)
		if _, err := ParseHeader(hdr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTransportRoundTrip compares the two carriers over a real
// socket: one guest-invoke round trip per iteration against the same
// in-process responder, serving both protocols from one sniffing
// listener (binary) and an httptest server (httpjson).
func BenchmarkTransportRoundTrip(b *testing.B) {
	b.Run("httpjson", func(b *testing.B) {
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			var req api.GuestInvokeRequest
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			json.NewEncoder(w).Encode(benchInvokeResp)
		}))
		defer srv.Close()
		benchRoundTrips(b, NewHTTPJSON(), strings.TrimPrefix(srv.URL, "http://"))
	})
	b.Run("binary", func(b *testing.B) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		sniffer := NewSniffer(ln, ServerConfig{Handler: benchWireHandler})
		defer sniffer.Close()
		go func() {
			// Nothing arrives as HTTP in this benchmark; drain so the
			// sniffer never blocks if a stray probe shows up.
			for {
				c, err := sniffer.Accept()
				if err != nil {
					return
				}
				c.Close()
			}
		}()
		benchRoundTrips(b, NewBinary(nil), ln.Addr().String())
	})
}

func benchWireHandler(ctx context.Context, ft Type, payload []byte) (Type, []byte, error) {
	if ft != TInvokeReq {
		return 0, nil, fmt.Errorf("%w: unhandled %s", ErrSever, ft)
	}
	if _, err := DecodeGuestInvoke(payload); err != nil {
		return 0, nil, err
	}
	out, err := AppendInvokeResponse(GetBuf(0), &benchInvokeResp)
	if err != nil {
		return 0, nil, err
	}
	return TInvokeResp, out, nil
}

func benchRoundTrips(b *testing.B, tr Transport, addr string) {
	defer tr.Close()
	ctx := context.Background()
	// Warm the connection so dial/TLS-free setup cost is off the clock.
	var resp api.InvokeResponse
	if err := tr.RoundTrip(ctx, addr, api.GuestV1Invoke, &benchGuestReq, &resp); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.RoundTrip(ctx, addr, api.GuestV1Invoke, &benchGuestReq, &resp); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if resp.Output != benchInvokeResp.Output {
		b.Fatalf("response corrupted: %+v", resp)
	}
}
