package wire

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"

	"confbench/internal/api"
	"confbench/internal/cberr"
	"confbench/internal/obs"
)

// Binary is the persistent-connection transport: one multiplexed TCP
// connection per peer address, length-prefixed binary frames, and
// out-of-order completion by correlation ID. A connection that dies
// mid-flight fails its pending calls with a retryable unavailable
// error and is replaced on the next call — redial policy stays with
// the existing retry machinery (gateway alternate-endpoint dispatch,
// client retry loop) rather than being duplicated here.
type Binary struct {
	m *wireMetrics

	mu     sync.Mutex
	conns  map[string]*mconn
	closed bool
}

// NewBinary builds the binary transport. reg may be nil to run
// without wire metrics.
func NewBinary(reg *obs.Registry) *Binary {
	return &Binary{m: newWireMetrics(reg), conns: make(map[string]*mconn)}
}

// Name implements Transport.
func (t *Binary) Name() string { return TransportBinary }

// Close severs every connection; pending calls fail unavailable.
func (t *Binary) Close() error {
	t.mu.Lock()
	t.closed = true
	conns := t.conns
	t.conns = map[string]*mconn{}
	t.mu.Unlock()
	for _, mc := range conns {
		mc.kill(errors.New("wire: transport closed"))
	}
	return nil
}

// RoundTrip implements Transport.
func (t *Binary) RoundTrip(ctx context.Context, addr, path string, in, out any) error {
	ft, payload, err := encodeRequest(path, in)
	if err != nil {
		return err
	}
	mc, err := t.conn(addr)
	if err != nil {
		PutBuf(payload)
		return err
	}
	rt, rp, err := mc.roundTrip(ctx, ft, payload)
	if err != nil {
		return err
	}
	defer PutBuf(rp)
	return decodeWireResponse(addr, rt, rp, out)
}

// conn returns the live connection to addr, dialing or replacing a
// dead one under the transport lock (peers are local, dials are
// cheap; a slow peer only stalls calls to other peers during its own
// dial, which the pipeline never does mid-benchmark).
func (t *Binary) conn(addr string) (*mconn, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, cberr.New(cberr.CodeUnavailable, cberr.LayerGateway, "wire: transport closed")
	}
	if mc, ok := t.conns[addr]; ok {
		select {
		case <-mc.dead:
			// fall through and redial
		default:
			return mc, nil
		}
	}
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, cberr.Wrap(cberr.CodeUnavailable, cberr.LayerGateway,
			fmt.Errorf("wire: dial %s: %w", addr, err))
	}
	mc := newMconn(addr, c, t.m)
	t.conns[addr] = mc
	return mc, nil
}

// inFrame is a matched response handed from the read loop to a waiter.
type inFrame struct {
	t       Type
	payload []byte
}

// mconn is one multiplexed connection: a write loop batching outbound
// frames, a read loop matching responses to waiters by correlation ID,
// and a pending table. kill runs exactly once, closes dead, and every
// waiter observes it.
type mconn struct {
	addr    string
	conn    net.Conn
	writeCh chan outFrame
	dead    chan struct{}
	m       *wireMetrics

	mu      sync.Mutex
	deadErr error
	seq     uint64
	pending map[uint64]chan inFrame
}

func newMconn(addr string, conn net.Conn, m *wireMetrics) *mconn {
	mc := &mconn{
		addr:    addr,
		conn:    conn,
		writeCh: make(chan outFrame, maxBatch),
		dead:    make(chan struct{}),
		m:       m,
		pending: make(map[uint64]chan inFrame),
	}
	go writeLoop(conn, mc.writeCh, mc.dead, m)
	go mc.readLoop()
	return mc
}

func (mc *mconn) readLoop() {
	for {
		h, payload, err := ReadFrame(mc.conn)
		if err != nil {
			mc.kill(fmt.Errorf("wire: %s: %w", mc.addr, err))
			return
		}
		mc.m.countIn(HeaderSize + len(payload))
		mc.mu.Lock()
		ch := mc.pending[h.Corr]
		delete(mc.pending, h.Corr)
		mc.mu.Unlock()
		if ch == nil {
			// Response for a caller that already gave up (canceled).
			PutBuf(payload)
			continue
		}
		ch <- inFrame{t: h.Type, payload: payload} // buffered; sole sender
	}
}

// kill marks the connection dead (first error wins), closes it, and
// releases every waiter via the dead channel.
func (mc *mconn) kill(err error) {
	mc.mu.Lock()
	if mc.deadErr != nil {
		mc.mu.Unlock()
		return
	}
	mc.deadErr = err
	mc.pending = make(map[uint64]chan inFrame)
	mc.mu.Unlock()
	close(mc.dead)
	mc.conn.Close()
}

func (mc *mconn) connErr() error {
	mc.mu.Lock()
	err := mc.deadErr
	mc.mu.Unlock()
	if err == nil {
		err = errors.New("wire: connection closed")
	}
	return cberr.Wrap(cberr.CodeUnavailable, cberr.LayerGateway, err)
}

func (mc *mconn) forget(corr uint64) {
	mc.mu.Lock()
	delete(mc.pending, corr)
	mc.mu.Unlock()
}

// roundTrip sends one request frame and waits for its correlated
// response. payload is pooled and ownership passes to the write loop;
// the returned payload is pooled and owned by the caller.
func (mc *mconn) roundTrip(ctx context.Context, ft Type, payload []byte) (Type, []byte, error) {
	mc.mu.Lock()
	if mc.deadErr != nil {
		mc.mu.Unlock()
		PutBuf(payload)
		return 0, nil, mc.connErr()
	}
	mc.seq++
	corr := mc.seq
	respCh := make(chan inFrame, 1)
	mc.pending[corr] = respCh
	mc.mu.Unlock()

	select {
	case mc.writeCh <- outFrame{t: ft, corr: corr, payload: payload}:
	case <-mc.dead:
		mc.forget(corr)
		PutBuf(payload)
		return 0, nil, mc.connErr()
	case <-ctx.Done():
		mc.forget(corr)
		PutBuf(payload)
		return 0, nil, cberr.From(fmt.Errorf("wire: %s: %w", mc.addr, ctx.Err()), cberr.LayerGateway)
	}

	select {
	case in := <-respCh:
		return in.t, in.payload, nil
	case <-mc.dead:
		mc.forget(corr)
		return 0, nil, mc.connErr()
	case <-ctx.Done():
		mc.forget(corr)
		return 0, nil, cberr.From(fmt.Errorf("wire: %s: %w", mc.addr, ctx.Err()), cberr.LayerGateway)
	}
}

// encodeRequest maps a (path, request) pair onto a frame. The query
// suffix (e.g. the obs scrape's ?format=json) is irrelevant to binary
// framing and stripped.
func encodeRequest(path string, in any) (Type, []byte, error) {
	if i := strings.IndexByte(path, '?'); i >= 0 {
		path = path[:i]
	}
	buf := GetBuf(0)
	switch path {
	case api.GuestV1Invoke, api.GuestPathInvoke:
		if req, ok := in.(*api.GuestInvokeRequest); ok {
			return TInvokeReq, AppendGuestInvoke(buf, req), nil
		}
	case api.PathInvoke, api.PathV1Invoke:
		switch v := in.(type) {
		case *api.TenantedInvoke:
			return TFrontInvokeReq, AppendFrontInvoke(buf, v), nil
		case *api.InvokeRequest:
			return TFrontInvokeReq, AppendFrontInvoke(buf, &api.TenantedInvoke{Req: *v}), nil
		}
	case api.GuestV1Attest, api.GuestPathAttest, api.PathAttest, api.PathV1Attest:
		if req, ok := in.(*api.AttestRequest); ok {
			return TAttestReq, AppendAttest(buf, "", req), nil
		}
		if ti, ok := in.(*api.TenantedAttest); ok {
			return TAttestReq, AppendAttest(buf, ti.Tenant, &ti.Req), nil
		}
	case api.PathHealth, api.PathV1Health, api.GuestV1Health, api.GuestPathHealth:
		if in == nil {
			return THealthReq, buf, nil
		}
	case api.GuestV1Obs, api.GuestPathObs, api.PathObs, api.PathV1Obs:
		if in == nil {
			return TObsReq, buf, nil
		}
	}
	PutBuf(buf)
	return 0, nil, cberr.Newf(cberr.CodeInvalid, cberr.LayerGateway,
		"wire: no binary mapping for %T at %s", in, path)
}

// decodeWireResponse decodes a response frame into out. TError frames
// reconstruct the peer's classified error regardless of out.
func decodeWireResponse(addr string, t Type, payload []byte, out any) error {
	if t == TError {
		werr, derr := DecodeError(payload)
		if derr != nil {
			return cberr.Wrap(cberr.CodeUpstream, cberr.LayerGateway, errString(addr, derr))
		}
		return errString(addr, werr)
	}
	switch o := out.(type) {
	case nil:
		return nil
	case *api.InvokeResponse:
		if t != TInvokeResp {
			return typeMismatch(addr, t, TInvokeResp)
		}
		resp, err := DecodeInvokeResponse(payload)
		if err != nil {
			return cberr.Wrap(cberr.CodeUpstream, cberr.LayerGateway, errString(addr, err))
		}
		*o = resp
		return nil
	case *api.AttestResponse:
		if t != TAttestResp {
			return typeMismatch(addr, t, TAttestResp)
		}
		resp, err := DecodeAttestResp(payload)
		if err != nil {
			return cberr.Wrap(cberr.CodeUpstream, cberr.LayerGateway, errString(addr, err))
		}
		*o = resp
		return nil
	default:
		// Obs snapshots (and any other structured response) ride as
		// JSON payloads, exactly what the HTTP surface serves.
		if t != TObsResp {
			return typeMismatch(addr, t, TObsResp)
		}
		if err := json.Unmarshal(payload, out); err != nil {
			return cberr.Wrap(cberr.CodeUpstream, cberr.LayerGateway, errString(addr, err))
		}
		return nil
	}
}

func typeMismatch(addr string, got, want Type) error {
	return cberr.Wrap(cberr.CodeUpstream, cberr.LayerGateway,
		fmt.Errorf("wire: peer %s: frame type %s, want %s", addr, got, want))
}
