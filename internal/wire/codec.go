package wire

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"time"

	"confbench/internal/api"
	"confbench/internal/cberr"
	"confbench/internal/faas"
	"confbench/internal/obs"
	"confbench/internal/tee"
)

// Payload codecs. Hand-rolled append-based encoding rather than
// encoding/json or gob: the hot path (invoke request/response) must
// not allocate per field, and the format must stay stable for the
// committed fuzz corpus. Integers use varints; byte slices and
// strings are length-prefixed. Decoders copy what they keep — payload
// buffers return to the pool the moment decoding finishes.

func appendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

func appendVarint(dst []byte, v int64) []byte {
	return binary.AppendVarint(dst, v)
}

func appendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// dec is a bounds-checked decode cursor. Every read failure wraps
// ErrTruncated so fuzz inputs map to a typed error, never a panic.
type dec struct {
	b   []byte
	err error
}

func (d *dec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s", ErrTruncated, what)
	}
}

func (d *dec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

// bytes returns a COPY of the encoded slice: the backing payload
// buffer is pooled and reused after decode. The length is validated
// against both the remaining input and MaxPayload before allocating,
// so a hostile length cannot over-allocate.
func (d *dec) bytes() []byte {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n > MaxPayload || n > uint64(len(d.b)) {
		d.fail("bytes length")
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]byte, n)
	copy(out, d.b[:n])
	d.b = d.b[n:]
	return out
}

func (d *dec) string() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > MaxPayload || n > uint64(len(d.b)) {
		d.fail("string length")
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

func (d *dec) bool() bool {
	if d.err != nil {
		return false
	}
	if len(d.b) < 1 {
		d.fail("bool")
		return false
	}
	v := d.b[0] != 0
	d.b = d.b[1:]
	return v
}

// AppendGuestInvoke encodes the guest-hop invoke request.
func AppendGuestInvoke(dst []byte, req *api.GuestInvokeRequest) []byte {
	dst = appendString(dst, req.Function.Name)
	dst = appendString(dst, req.Function.Language)
	dst = appendString(dst, req.Function.Workload)
	dst = appendBytes(dst, req.Function.Source)
	dst = appendVarint(dst, int64(req.Scale))
	dst = appendBool(dst, req.Trace)
	return dst
}

// DecodeGuestInvoke decodes a TInvokeReq payload.
func DecodeGuestInvoke(b []byte) (api.GuestInvokeRequest, error) {
	d := dec{b: b}
	var req api.GuestInvokeRequest
	req.Function = faas.Function{
		Name:     d.string(),
		Language: d.string(),
		Workload: d.string(),
		Source:   d.bytes(),
	}
	req.Scale = int(d.varint())
	req.Trace = d.bool()
	return req, d.err
}

// AppendInvokeResponse encodes an invoke response, including the full
// perfmon block the paper piggybacks on results. The optional trace
// tree rides as a JSON blob: traces are explicitly opt-in and off the
// hot path, so schema flexibility beats hand-rolled field codecs
// there.
func AppendInvokeResponse(dst []byte, resp *api.InvokeResponse) ([]byte, error) {
	dst = appendString(dst, resp.Output)
	dst = appendVarint(dst, resp.WallNs)
	dst = appendVarint(dst, resp.BootstrapNs)
	dst = appendVarint(dst, int64(resp.Perf.Wall))
	dst = appendUvarint(dst, resp.Perf.Instructions)
	dst = appendUvarint(dst, resp.Perf.Cycles)
	dst = appendUvarint(dst, resp.Perf.CacheRefs)
	dst = appendUvarint(dst, resp.Perf.CacheMisses)
	dst = appendUvarint(dst, resp.Perf.ContextSwitches)
	dst = appendUvarint(dst, resp.Perf.PageFaults)
	dst = appendUvarint(dst, resp.Perf.TEEExits)
	dst = appendString(dst, resp.Perf.Monitor)
	dst = appendBool(dst, resp.Secure)
	dst = appendString(dst, string(resp.Platform))
	dst = appendString(dst, resp.Host)
	dst = appendString(dst, resp.VM)
	if resp.Trace == nil {
		return appendBool(dst, false), nil
	}
	blob, err := json.Marshal(resp.Trace)
	if err != nil {
		return nil, fmt.Errorf("wire: encode trace: %w", err)
	}
	dst = appendBool(dst, true)
	return appendBytes(dst, blob), nil
}

// DecodeInvokeResponse decodes a TInvokeResp payload.
func DecodeInvokeResponse(b []byte) (api.InvokeResponse, error) {
	d := dec{b: b}
	var resp api.InvokeResponse
	resp.Output = d.string()
	resp.WallNs = d.varint()
	resp.BootstrapNs = d.varint()
	resp.Perf.Wall = time.Duration(d.varint())
	resp.Perf.Instructions = d.uvarint()
	resp.Perf.Cycles = d.uvarint()
	resp.Perf.CacheRefs = d.uvarint()
	resp.Perf.CacheMisses = d.uvarint()
	resp.Perf.ContextSwitches = d.uvarint()
	resp.Perf.PageFaults = d.uvarint()
	resp.Perf.TEEExits = d.uvarint()
	resp.Perf.Monitor = d.string()
	resp.Secure = d.bool()
	resp.Platform = tee.Kind(d.string())
	resp.Host = d.string()
	resp.VM = d.string()
	if d.bool() {
		blob := d.bytes()
		if d.err == nil {
			var span obs.SpanData
			if err := json.Unmarshal(blob, &span); err != nil {
				return resp, fmt.Errorf("wire: decode trace: %w", err)
			}
			resp.Trace = &span
		}
	}
	return resp, d.err
}

// AppendFrontInvoke encodes the front-door invoke (tenant + request).
func AppendFrontInvoke(dst []byte, ti *api.TenantedInvoke) []byte {
	dst = appendString(dst, ti.Tenant)
	dst = appendString(dst, ti.Req.Function)
	dst = appendVarint(dst, int64(ti.Req.Scale))
	dst = appendBool(dst, ti.Req.Secure)
	dst = appendString(dst, string(ti.Req.TEE))
	dst = appendBool(dst, ti.Req.Trace)
	return dst
}

// DecodeFrontInvoke decodes a TFrontInvokeReq payload.
func DecodeFrontInvoke(b []byte) (api.TenantedInvoke, error) {
	d := dec{b: b}
	var ti api.TenantedInvoke
	ti.Tenant = d.string()
	ti.Req.Function = d.string()
	ti.Req.Scale = int(d.varint())
	ti.Req.Secure = d.bool()
	ti.Req.TEE = tee.Kind(d.string())
	ti.Req.Trace = d.bool()
	return ti, d.err
}

// AppendAttest encodes an attestation request. The tenant is empty on
// the guest hop and carries the caller's identity at the front door.
func AppendAttest(dst []byte, tenant string, req *api.AttestRequest) []byte {
	dst = appendString(dst, tenant)
	dst = appendString(dst, string(req.TEE))
	dst = appendBytes(dst, req.Nonce)
	return dst
}

// DecodeAttest decodes a TAttestReq payload.
func DecodeAttest(b []byte) (string, api.AttestRequest, error) {
	d := dec{b: b}
	tenant := d.string()
	var req api.AttestRequest
	req.TEE = tee.Kind(d.string())
	req.Nonce = d.bytes()
	return tenant, req, d.err
}

// AppendAttestResp encodes an attestation response.
func AppendAttestResp(dst []byte, resp *api.AttestResponse) []byte {
	dst = appendBytes(dst, resp.Evidence)
	dst = appendVarint(dst, resp.AttestNs)
	return dst
}

// DecodeAttestResp decodes a TAttestResp payload.
func DecodeAttestResp(b []byte) (api.AttestResponse, error) {
	d := dec{b: b}
	var resp api.AttestResponse
	resp.Evidence = d.bytes()
	resp.AttestNs = d.varint()
	return resp, d.err
}

// AppendHealthResp encodes a health response detail string.
func AppendHealthResp(dst []byte, detail string) []byte {
	return appendString(dst, detail)
}

// DecodeHealthResp decodes a THealthResp payload.
func DecodeHealthResp(b []byte) (string, error) {
	d := dec{b: b}
	s := d.string()
	return s, d.err
}

// AppendError encodes an error frame from the same envelope the HTTP
// surface serves, so the cberr taxonomy — code, layer, retryability,
// retry-after — crosses the hop bit-for-bit equivalently under both
// carriers.
func AppendError(dst []byte, err error) []byte {
	env := api.ErrorEnvelope(err)
	dst = appendString(dst, string(env.Code))
	dst = appendString(dst, string(env.Layer))
	dst = appendBool(dst, env.Retryable)
	dst = appendUvarint(dst, uint64(env.RetryAfterMS))
	dst = appendString(dst, env.Error)
	return dst
}

// DecodeError decodes a TError payload back into a *cberr.Error.
func DecodeError(b []byte) (error, error) {
	d := dec{b: b}
	code := d.string()
	layer := d.string()
	retryable := d.bool()
	retryAfterMS := d.uvarint()
	msg := d.string()
	if d.err != nil {
		return nil, d.err
	}
	var ce error = cberr.FromWire(cberr.Code(code), cberr.Layer(layer), retryable, msg)
	if retryAfterMS > 0 {
		ce = cberr.WithRetryAfter(ce, time.Duration(retryAfterMS)*time.Millisecond)
	}
	return ce, nil
}
