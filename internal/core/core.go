// Package core implements the heart of ConfBench — the paper's
// primary contribution: the orchestration that boots TEE-enabled
// hosts with confidential/normal VM pairs, wires the REST gateway and
// its load-balanced TEE pools in front of them, and provisions the
// attestation infrastructure. The public entry point is re-exported
// by the root confbench package.
package core

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"time"

	"confbench/internal/api"
	"confbench/internal/attest"
	"confbench/internal/attest/dcap"
	"confbench/internal/attest/snp"
	"confbench/internal/faas"
	"confbench/internal/faas/langs"
	"confbench/internal/faultplane"
	"confbench/internal/fronttier"
	"confbench/internal/gateway"
	"confbench/internal/hostagent"
	"confbench/internal/obs"
	"confbench/internal/slo"
	"confbench/internal/tee"
	"confbench/internal/tee/cca"
	"confbench/internal/tee/sev"
	"confbench/internal/tee/tdx"
	"confbench/internal/vm"
	"confbench/internal/wire"
	"confbench/internal/workloads"
)

// ClusterConfig parameterizes an in-process ConfBench deployment.
type ClusterConfig struct {
	// TEEs selects the platforms to deploy (default: TDX, SEV-SNP,
	// CCA — the paper's full test bed).
	TEEs []tee.Kind
	// Seed drives every deterministic noise source.
	Seed int64
	// LeastLoaded switches pool load balancing from round-robin.
	LeastLoaded bool
	// TDXFirmware overrides the TDX module version (the buggy
	// pre-upgrade firmware reproduces the paper's 10× anomaly).
	TDXFirmware string
	// GuestMemoryMB sizes the measured boot image of each guest.
	GuestMemoryMB int
	// Workers is the default concurrency for benchmark harnesses built
	// on this cluster (0 = serial, the deterministic bit-identical
	// path).
	Workers int
	// Obs is the metrics registry the whole deployment reports to
	// (nil = the process-wide default).
	Obs *obs.Registry
	// Faults is the deterministic fault-injection plane threaded
	// through every layer — relays, host agents, TEE guests (nil =
	// fault-free).
	Faults *faultplane.Plane
	// HostsPerTEE deploys that many host agents per platform, all in
	// the same pool (default 1). Chaos runs use ≥2 so a faulted host
	// leaves a healthy alternate.
	HostsPerTEE int
	// BreakerThreshold is the consecutive-failure count that trips a
	// pool endpoint's circuit breaker (0 = the gateway default).
	BreakerThreshold int
	// BreakerCooldown is how long a tripped endpoint stays out of
	// rotation before a half-open probe (0 = the gateway default).
	BreakerCooldown time.Duration
	// ObsScrapeInterval enables the gateway's periodic federation
	// sweeps of the host agents' registries (0 = on-demand only, via
	// GET /v1/obs/cluster).
	ObsScrapeInterval time.Duration
	// WarmPool, when positive, serves every host's secure VM out of a
	// prewarmed guest pool with this high watermark, restoring guests
	// from the shared snapshot cache instead of cold-booting them.
	WarmPool int
	// SnapshotCacheMB is the byte budget of the cluster-shared snapshot
	// image cache (default 256 MiB when warm pools are enabled).
	SnapshotCacheMB int
	// Shards, when > 1, deploys that many gateway shards behind a
	// front tier that consistent-hashes invokes (function × tenant)
	// across them, with per-tenant admission control and the async
	// invoke path. 0 or 1 keeps the single-gateway deployment.
	Shards int
	// TenantQuotas maps tenants to front-tier admission limits
	// (token-bucket rates and in-flight quotas). Only meaningful with
	// Shards > 1; absent tenants are unlimited.
	TenantQuotas map[string]fronttier.TenantLimits
	// Transport selects the carrier for every hop of the invoke
	// pipeline — client→front door, tier→shard, gateway→guest: "" or
	// "httpjson" is one JSON-over-HTTP exchange per call; "binary" is
	// the persistent multiplexed wire protocol (persistent connection
	// per peer pair, length-prefixed frames, out-of-order completion).
	// Servers accept both carriers regardless.
	Transport string
	// DurableDir, when set, roots the deployment's persistence plane:
	// each gateway (or shard) spills its federation sweeps and flight-
	// recorder events to an append-only checksummed log under its own
	// subdirectory, and replays them on start, so /v1/obs/cluster
	// ?window= rates and /v1/obs/events span process restarts. Empty
	// keeps telemetry in-memory only.
	DurableDir string
	// SLOSpec declares service-level objectives in the slo spec
	// grammar (comma-separated "name:kind:target[:options]"). The
	// evaluating layer — the front tier when Shards > 1, otherwise
	// the gateway — runs the burn-rate state machine on every
	// federation sweep and serves /v1/obs/slo and /v1/obs/alerts.
	// Empty deploys no SLO plane.
	SLOSpec string
}

func (c ClusterConfig) withDefaults() ClusterConfig {
	if len(c.TEEs) == 0 {
		c.TEEs = []tee.Kind{tee.KindTDX, tee.KindSEV, tee.KindCCA}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.GuestMemoryMB == 0 {
		c.GuestMemoryMB = 64
	}
	if c.HostsPerTEE <= 0 {
		c.HostsPerTEE = 1
	}
	if c.WarmPool > 0 && c.SnapshotCacheMB <= 0 {
		c.SnapshotCacheMB = 256
	}
	return c
}

// Cluster is a running in-process ConfBench deployment.
type Cluster struct {
	cfg      ClusterConfig
	catalog  *workloads.Registry
	obsreg   *obs.Registry
	backends map[tee.Kind]tee.Backend
	agents   map[tee.Kind][]*hostagent.Agent
	cache    *vm.SnapshotCache
	gw       *gateway.Gateway
	client   *api.Client
	// clientTransport is the client's binary carrier when
	// cfg.Transport selected it (owned here; closed with the cluster).
	clientTransport api.Transport

	// Sharded deployments (cfg.Shards > 1): the shard gateways in
	// shard-name order and the front tier routing across them.
	shardNames []string
	shardGWs   []*gateway.Gateway
	tier       *fronttier.Tier

	pcs *dcap.PCS
	qe  *dcap.QuotingEnclave
}

// NewCluster boots the deployment: backends, host agents (each with
// its secure/normal VM pair, guest agents and relays), the gateway,
// and the attestation services.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	cfg = cfg.withDefaults()
	c := &Cluster{
		cfg:      cfg,
		catalog:  workloads.Default(),
		obsreg:   obs.OrDefault(cfg.Obs),
		backends: make(map[tee.Kind]tee.Backend, len(cfg.TEEs)),
		agents:   make(map[tee.Kind][]*hostagent.Agent, len(cfg.TEEs)),
	}
	if err := c.boot(); err != nil {
		_ = c.Close()
		return nil, err
	}
	return c, nil
}

func (c *Cluster) boot() error {
	if !wire.ValidTransport(c.cfg.Transport) {
		return fmt.Errorf("confbench: unknown transport %q (want %q or %q)",
			c.cfg.Transport, wire.TransportHTTPJSON, wire.TransportBinary)
	}
	// The fault plane reports its injections to the same registry as
	// everything else, so chaos runs read faults and reactions off one
	// snapshot.
	c.cfg.Faults.SetObsRegistry(c.obsreg)
	if c.cfg.WarmPool > 0 {
		// One cache for the whole deployment: hosts of the same kind
		// share snapshot images keyed by (kind, runtime, memory size).
		c.cache = vm.NewSnapshotCache(int64(c.cfg.SnapshotCacheMB)<<20, c.obsreg)
	}
	for _, kind := range c.cfg.TEEs {
		backend, err := c.newBackend(kind)
		if err != nil {
			return err
		}
		c.backends[kind] = backend
		for i := 0; i < c.cfg.HostsPerTEE; i++ {
			name := string(kind) + "-host"
			if i > 0 {
				name = fmt.Sprintf("%s-%d", name, i+1)
			}
			agent, err := hostagent.NewAgent(hostagent.AgentConfig{
				Name:      name,
				Backend:   backend,
				Guest:     tee.GuestConfig{Name: name, MemoryMB: c.cfg.GuestMemoryMB},
				Catalog:   c.catalog,
				Obs:       c.obsreg,
				Faults:    c.cfg.Faults,
				WarmPool:  c.cfg.WarmPool,
				Cache:     c.cache,
				Transport: c.cfg.Transport,
			})
			if err != nil {
				return fmt.Errorf("confbench: boot %s host: %w", kind, err)
			}
			c.agents[kind] = append(c.agents[kind], agent)
		}
	}

	var policy func() gateway.Policy
	if c.cfg.LeastLoaded {
		policy = func() gateway.Policy { return gateway.LeastLoaded{} }
	}
	// Objectives go to whichever layer federates the whole
	// deployment: the front tier when sharded, the gateway otherwise.
	// Evaluating them on every shard too would double-alert.
	var objectives []slo.Objective
	if c.cfg.SLOSpec != "" {
		var err error
		if objectives, err = slo.ParseSpecs(c.cfg.SLOSpec); err != nil {
			return fmt.Errorf("confbench: %w", err)
		}
	}
	// durableDir roots one gateway's telemetry spill under its own
	// subdirectory of the deployment's persistence plane ("" = no
	// spill). Per-gateway subdirs keep shard logs from interleaving.
	durableDir := func(sub string) string {
		if c.cfg.DurableDir == "" {
			return ""
		}
		return filepath.Join(c.cfg.DurableDir, sub)
	}
	// newGateway builds one gateway over the full host fleet. Shards
	// are stateless equivalents: every shard sees every host, so any
	// shard can serve any key and a killed shard loses no capacity.
	newGateway := func(reg *obs.Registry, sub string, slos []slo.Objective) *gateway.Gateway {
		gw := gateway.New(gateway.Config{
			Policy:           policy,
			Obs:              reg,
			BreakerThreshold: c.cfg.BreakerThreshold,
			BreakerCooldown:  c.cfg.BreakerCooldown,
			Faults:           c.cfg.Faults,
			ScrapeInterval:   c.cfg.ObsScrapeInterval,
			Transport:        c.cfg.Transport,
			DurableDir:       durableDir(sub),
			SLO:              slos,
		})
		for _, kind := range c.cfg.TEEs {
			for _, agent := range c.agents[kind] {
				gw.AddHost(agent.Name(), agent.Endpoints())
			}
		}
		return gw
	}
	var url string
	if c.cfg.Shards > 1 {
		// Each shard reports to its own registry so the tier's
		// federated cluster view keeps shard snapshots distinct; the
		// hosts and backends stay on the cluster registry.
		shardCfgs := make([]fronttier.ShardConfig, 0, c.cfg.Shards)
		for i := 0; i < c.cfg.Shards; i++ {
			name := fmt.Sprintf("shard-%d", i)
			gw := newGateway(obs.New(), name, nil)
			gw.SetDrainer(c.DrainHost)
			u, err := gw.Start("127.0.0.1:0")
			if err != nil {
				return err
			}
			c.shardNames = append(c.shardNames, name)
			c.shardGWs = append(c.shardGWs, gw)
			shardCfgs = append(shardCfgs, fronttier.ShardConfig{Name: name, URL: u})
		}
		tier, err := fronttier.New(fronttier.Config{
			Shards:           shardCfgs,
			Obs:              c.obsreg,
			Quotas:           c.cfg.TenantQuotas,
			BreakerThreshold: c.cfg.BreakerThreshold,
			BreakerCooldown:  c.cfg.BreakerCooldown,
			Transport:        c.cfg.Transport,
			SLO:              objectives,
		})
		if err != nil {
			return err
		}
		c.tier = tier
		if url, err = tier.Start("127.0.0.1:0"); err != nil {
			return err
		}
	} else {
		c.gw = newGateway(c.obsreg, "gateway", objectives)
		// POST /v1/drain on the gateway routes into the cluster's
		// migrating drain, so remote clients get the same semantics as
		// in-process callers of DrainHost.
		c.gw.SetDrainer(c.DrainHost)
		var err error
		if url, err = c.gw.Start("127.0.0.1:0"); err != nil {
			return err
		}
	}
	var clientOpts []api.Option
	if c.cfg.Transport == wire.TransportBinary {
		c.clientTransport = wire.NewBinary(c.obsreg)
		clientOpts = append(clientOpts, api.WithTransport(c.clientTransport))
	}
	client, err := api.New(url, clientOpts...)
	if err != nil {
		return err
	}
	c.client = client

	// Attestation infrastructure for TDX (QE + PCS).
	if b, ok := c.backends[tee.KindTDX]; ok {
		tdxBackend, ok := b.(*tdx.Backend)
		if !ok {
			return errors.New("confbench: TDX backend has unexpected type")
		}
		pcs, err := dcap.NewPCS("confbench-fmspc-0001")
		if err != nil {
			return err
		}
		if err := pcs.Start(); err != nil {
			return err
		}
		c.pcs = pcs
		qe, err := dcap.NewQuotingEnclave(tdxBackend.Module(), "confbench-fmspc-0001")
		if err != nil {
			return err
		}
		c.qe = qe
	}
	return nil
}

func (c *Cluster) newBackend(kind tee.Kind) (tee.Backend, error) {
	switch kind {
	case tee.KindTDX:
		return tdx.NewBackend(tdx.Options{FirmwareVersion: c.cfg.TDXFirmware, Seed: c.cfg.Seed, Obs: c.obsreg, Faults: c.cfg.Faults})
	case tee.KindSEV:
		return sev.NewBackend(sev.Options{Seed: c.cfg.Seed + 1000, Obs: c.obsreg, Faults: c.cfg.Faults})
	case tee.KindCCA:
		return cca.NewBackend(cca.Options{Seed: c.cfg.Seed + 2000, Obs: c.obsreg, Faults: c.cfg.Faults})
	default:
		return nil, fmt.Errorf("confbench: unsupported TEE %q", kind)
	}
}

// Client returns a REST client bound to the deployment's front door —
// the front tier when sharded, the gateway otherwise.
func (c *Cluster) Client() *api.Client { return c.client }

// Obs returns the registry every layer of the deployment reports to.
func (c *Cluster) Obs() *obs.Registry { return c.obsreg }

// Workers returns the configured default benchmark concurrency.
func (c *Cluster) Workers() int { return c.cfg.Workers }

// GatewayURL returns the front door's base URL: the front tier when
// sharded, the single gateway otherwise.
func (c *Cluster) GatewayURL() string {
	if c.tier != nil {
		return c.tier.BaseURL()
	}
	return c.gw.BaseURL()
}

// Gateway returns the running gateway, exposing the federation
// scraper and invoke flight recorder to in-process harnesses. Sharded
// deployments return the first shard.
func (c *Cluster) Gateway() *gateway.Gateway {
	if c.gw == nil && len(c.shardGWs) > 0 {
		return c.shardGWs[0]
	}
	return c.gw
}

// FrontTier returns the sharded front tier (nil when Shards <= 1).
func (c *Cluster) FrontTier() *fronttier.Tier { return c.tier }

// ShardNames lists the deployed gateway shards in shard order (empty
// when the deployment is not sharded).
func (c *Cluster) ShardNames() []string {
	return append([]string(nil), c.shardNames...)
}

// CloseShard kills one gateway shard mid-run — the chaos hook behind
// the front-tier smoke test. The tier's shard breaker trips on the
// dead shard and routes its keys along the ring's successor walk.
func (c *Cluster) CloseShard(name string) error {
	for i, n := range c.shardNames {
		if n == name {
			return c.shardGWs[i].Close()
		}
	}
	return fmt.Errorf("confbench: no shard %q deployed", name)
}

// Backend returns the platform backend for kind.
func (c *Cluster) Backend(kind tee.Kind) (tee.Backend, error) {
	b, ok := c.backends[kind]
	if !ok {
		return nil, fmt.Errorf("confbench: no %q backend deployed", kind)
	}
	return b, nil
}

// Agent returns the first host agent for kind.
func (c *Cluster) Agent(kind tee.Kind) (*hostagent.Agent, error) {
	as, ok := c.agents[kind]
	if !ok || len(as) == 0 {
		return nil, fmt.Errorf("confbench: no %q host deployed", kind)
	}
	return as[0], nil
}

// Agents returns every host agent for kind (HostsPerTEE of them).
func (c *Cluster) Agents(kind tee.Kind) []*hostagent.Agent {
	return append([]*hostagent.Agent(nil), c.agents[kind]...)
}

// FaultPlane returns the configured fault-injection plane (nil when
// the deployment is fault-free).
func (c *Cluster) FaultPlane() *faultplane.Plane { return c.cfg.Faults }

// SnapshotCache returns the cluster-shared snapshot image cache (nil
// when warm pools are disabled).
func (c *Cluster) SnapshotCache() *vm.SnapshotCache { return c.cache }

// Pair returns the secure/normal VM pair on the kind host, for
// in-process classic-workload runs that bypass the network path.
func (c *Cluster) Pair(kind tee.Kind) (vm.Pair, error) {
	a, err := c.Agent(kind)
	if err != nil {
		return vm.Pair{}, err
	}
	return a.Pair(), nil
}

// Kinds lists the deployed TEE kinds in stable order.
func (c *Cluster) Kinds() []tee.Kind {
	out := make([]tee.Kind, 0, len(c.backends))
	for k := range c.backends {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Catalog returns the workload catalog shared by every VM.
func (c *Cluster) Catalog() *workloads.Registry { return c.catalog }

// UploadCatalog registers one function per (workload, language) pair
// under the name "<workload>-<language>", mirroring the paper's
// cross-language function porting. The ctx bounds the whole batch.
func (c *Cluster) UploadCatalog(ctx context.Context, languages []string) error {
	if languages == nil {
		languages = langs.Names()
	}
	for _, w := range c.catalog.Names() {
		for _, lang := range languages {
			fn := faas.Function{
				Name:     w + "-" + lang,
				Language: lang,
				Workload: w,
				Source:   []byte(fmt.Sprintf("// %s implemented in %s", w, lang)),
			}
			if err := c.client.Upload(ctx, fn); err != nil {
				return err
			}
		}
	}
	return nil
}

// TDXAttestation returns the attester and verifier implementing the
// paper's go-tdx-guest-style DCAP flow for the TDX confidential VM.
func (c *Cluster) TDXAttestation() (attest.Attester, attest.Verifier, error) {
	if c.qe == nil || c.pcs == nil {
		return nil, nil, errors.New("confbench: TDX attestation stack not deployed")
	}
	pair, err := c.Pair(tee.KindTDX)
	if err != nil {
		return nil, nil, err
	}
	return dcap.NewAttester(pair.Secure.Guest(), c.qe), dcap.NewVerifier(c.pcs), nil
}

// SEVAttestation returns the attester and verifier implementing the
// paper's snpguest-style flow for the SEV-SNP confidential VM.
func (c *Cluster) SEVAttestation() (attest.Attester, attest.Verifier, error) {
	b, err := c.Backend(tee.KindSEV)
	if err != nil {
		return nil, nil, err
	}
	sevBackend, ok := b.(*sev.Backend)
	if !ok {
		return nil, nil, errors.New("confbench: SEV backend has unexpected type")
	}
	pair, err := c.Pair(tee.KindSEV)
	if err != nil {
		return nil, nil, err
	}
	return snp.NewAttester(pair.Secure.Guest()),
		snp.NewVerifier(sevBackend.SecureProcessor().CertChainCopy()), nil
}

// PCS exposes the simulated Intel provisioning service (for tests and
// the attestation example).
func (c *Cluster) PCS() *dcap.PCS { return c.pcs }

// Close tears the whole deployment down. Every component is closed
// even when an earlier one fails; the individual errors are aggregated
// with errors.Join so none is masked.
func (c *Cluster) Close() error {
	var errs []error
	if c.tier != nil {
		errs = append(errs, c.tier.Close())
	}
	for _, gw := range c.shardGWs {
		errs = append(errs, gw.Close()) // idempotent if CloseShard hit it first
	}
	if c.gw != nil {
		errs = append(errs, c.gw.Close())
	}
	for _, kind := range c.Kinds() {
		for _, a := range c.agents[kind] {
			errs = append(errs, a.Close())
		}
	}
	if c.pcs != nil {
		errs = append(errs, c.pcs.Close())
	}
	if c.clientTransport != nil {
		errs = append(errs, c.clientTransport.Close())
	}
	return errors.Join(errs...)
}
