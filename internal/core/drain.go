package core

import (
	"context"
	"fmt"
	"time"

	"confbench/internal/api"
	"confbench/internal/cberr"
	"confbench/internal/gateway"
	"confbench/internal/hostagent"
	"confbench/internal/migrate"
	"confbench/internal/tee"
)

// drainPollInterval paces the in-flight-to-zero wait after quiescing.
const drainPollInterval = time.Millisecond

// gateways lists every gateway routing over the host fleet — the
// single gateway, or all shards (each shard sees every host).
func (c *Cluster) gateways() []*gateway.Gateway {
	if c.gw != nil {
		return []*gateway.Gateway{c.gw}
	}
	return c.shardGWs
}

// findAgent locates a host agent by name.
func (c *Cluster) findAgent(host string) (tee.Kind, int, *hostagent.Agent) {
	for kind, as := range c.agents {
		for i, a := range as {
			if a.Name() == host {
				return kind, i, a
			}
		}
	}
	return "", -1, nil
}

// DrainHost removes a host from the cluster without dropping its
// work: the host's endpoints are quiesced so new invokes route around
// it, in-flight invokes complete on the source, the serving secure
// guest and any warm-pool guests live-migrate to another host of the
// same kind behind the attestation gate, and only then does the host
// leave the ring and shut down. A failed migration (sever budget
// exhausted, tampered stream, cutover refusal) aborts the drain: the
// host is unquiesced and keeps serving, and the typed error reports
// why. When the deployment runs without warm pools there is nothing
// to carry over and the drain degrades to routing-only (quiesce,
// wait, remove, close).
func (c *Cluster) DrainHost(ctx context.Context, host string) (*api.DrainReport, error) {
	kind, idx, src := c.findAgent(host)
	if src == nil {
		return nil, cberr.Newf(cberr.CodeNotFound, cberr.LayerHost,
			"confbench: drain: unknown host %q", host)
	}
	peers := c.agents[kind]
	if len(peers) < 2 {
		return nil, cberr.Newf(cberr.CodeInvalid, cberr.LayerHost,
			"confbench: drain: %q is the last %s host", host, kind)
	}
	var dest *hostagent.Agent
	for i, a := range peers {
		if i != idx {
			dest = a
			break
		}
	}

	gws := c.gateways()
	quiesced := 0
	for i, gw := range gws {
		n := gw.QuiesceHost(host)
		if i == 0 {
			quiesced = n
		}
	}
	unquiesce := func() {
		for _, gw := range gws {
			gw.UnquiesceHost(host)
		}
	}
	// In-flight invokes drain on the source before anything moves.
	for {
		var inflight int64
		for _, gw := range gws {
			inflight += gw.HostInFlight(host)
		}
		if inflight == 0 {
			break
		}
		select {
		case <-ctx.Done():
			unquiesce()
			return nil, cberr.Wrap(cberr.CodeUnavailable, cberr.LayerHost,
				fmt.Errorf("confbench: drain %s: in-flight wait: %w", host, ctx.Err()))
		case <-time.After(drainPollInterval):
		}
	}

	report := &api.DrainReport{Host: host, TEE: string(kind), Quiesced: quiesced}

	// Live-migrate the serving secure guest plus the warm-pool idle
	// set to the destination. Without warm pools there is no pool on
	// either side and nothing survives the host anyway — routing-only.
	srcPool, destPool := src.Pool(), dest.Pool()
	if srcPool != nil && destPool != nil {
		mig, ok := c.backends[kind].(tee.Migrator)
		if !ok {
			unquiesce()
			return nil, cberr.Newf(cberr.CodeInternal, cberr.LayerHost,
				"confbench: drain: %s backend does not migrate", kind)
		}
		eng := migrate.NewEngine(migrate.Config{Obs: c.obsreg, Faults: c.cfg.Faults})
		guests := append([]tee.Guest{src.Pair().Secure.Guest()}, srcPool.DrainIdle()...)
		for _, g := range guests {
			res, err := eng.Migrate(migrate.Spec{
				Guest:      g,
				Source:     mig,
				Dest:       mig,
				DestConfig: tee.GuestConfig{Name: dest.Name(), MemoryMB: c.cfg.GuestMemoryMB},
				SourceHost: host,
				DestHost:   dest.Name(),
				// The destination's warm pool adopts the migrated guest;
				// a pool already at its high watermark discards it (the
				// same overflow rule Release applies), which is not a
				// migration failure.
				Cutover: func(ng tee.Guest) error {
					destPool.Adopt(ng)
					return nil
				},
			})
			report.Migrations = append(report.Migrations, api.MigrationSummary{
				Guest:            g.ID(),
				Outcome:          string(res.Outcome),
				DowntimeNs:       res.Downtime.Nanoseconds(),
				Resumes:          res.Resumes,
				TransferredBytes: res.Transferred,
			})
			if err != nil {
				// The source copy is still live: put the host back in
				// rotation instead of stranding a half-drained machine.
				unquiesce()
				return report, fmt.Errorf("confbench: drain %s: migrate %s: %w", host, g.ID(), err)
			}
		}
	} else {
		report.RoutingOnly = true
	}

	removed := 0
	for i, gw := range gws {
		n := gw.RemoveHost(host)
		if i == 0 {
			removed = n
		}
	}
	report.Removed = removed
	c.agents[kind] = append(peers[:idx:idx], peers[idx+1:]...)
	if err := src.Close(); err != nil {
		return report, fmt.Errorf("confbench: drain %s: close host: %w", host, err)
	}
	return report, nil
}
