package core

import (
	"context"
	"testing"

	"confbench/internal/tee"
)

func TestDefaultsFillAllThreeTEEs(t *testing.T) {
	cfg := ClusterConfig{}.withDefaults()
	if len(cfg.TEEs) != 3 || cfg.Seed == 0 || cfg.GuestMemoryMB == 0 {
		t.Errorf("defaults = %+v", cfg)
	}
}

func TestUnsupportedTEERejectedAtBoot(t *testing.T) {
	if _, err := NewCluster(ClusterConfig{TEEs: []tee.Kind{tee.Kind("sgx")}}); err == nil {
		t.Error("unsupported TEE accepted")
	}
}

func TestClusterCloseIsIdempotent(t *testing.T) {
	c, err := NewCluster(ClusterConfig{TEEs: []tee.Kind{tee.KindSEV}, GuestMemoryMB: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

func TestGatewayURLAndPools(t *testing.T) {
	c, err := NewCluster(ClusterConfig{TEEs: []tee.Kind{tee.KindTDX}, GuestMemoryMB: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.GatewayURL() == "" {
		t.Error("no gateway URL")
	}
	pools, err := c.Client().Pools(context.Background())
	if err != nil || len(pools) != 1 || pools[0].TEE != tee.KindTDX {
		t.Errorf("pools = %+v, %v", pools, err)
	}
}

func TestLeastLoadedConfig(t *testing.T) {
	c, err := NewCluster(ClusterConfig{TEEs: []tee.Kind{tee.KindTDX}, LeastLoaded: true, GuestMemoryMB: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	pools, err := c.Client().Pools(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if pools[0].Policy != "least-loaded" {
		t.Errorf("policy = %s", pools[0].Policy)
	}
}

func TestUploadCatalogAndDuplicates(t *testing.T) {
	c, err := NewCluster(ClusterConfig{TEEs: []tee.Kind{tee.KindSEV}, GuestMemoryMB: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.UploadCatalog(context.Background(), []string{"go"}); err != nil {
		t.Fatal(err)
	}
	// A second pass collides with the already-registered names.
	if err := c.UploadCatalog(context.Background(), []string{"go"}); err == nil {
		t.Error("duplicate catalog upload accepted")
	}
	// Unknown language surfaces the gateway's rejection.
	if err := c.UploadCatalog(context.Background(), []string{"cobol"}); err == nil {
		t.Error("unknown language accepted")
	}
}

func TestPairUnknownKind(t *testing.T) {
	c, err := NewCluster(ClusterConfig{TEEs: []tee.Kind{tee.KindSEV}, GuestMemoryMB: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Pair(tee.KindTDX); err == nil {
		t.Error("pair for undeployed kind should fail")
	}
	if _, err := c.Agent(tee.KindCCA); err == nil {
		t.Error("agent for undeployed kind should fail")
	}
}
