package core

import (
	"context"
	"testing"

	"confbench/internal/api"
	"confbench/internal/faas"
	"confbench/internal/tee"
)

func TestDefaultsFillAllThreeTEEs(t *testing.T) {
	cfg := ClusterConfig{}.withDefaults()
	if len(cfg.TEEs) != 3 || cfg.Seed == 0 || cfg.GuestMemoryMB == 0 {
		t.Errorf("defaults = %+v", cfg)
	}
}

func TestUnsupportedTEERejectedAtBoot(t *testing.T) {
	if _, err := NewCluster(ClusterConfig{TEEs: []tee.Kind{tee.Kind("sgx")}}); err == nil {
		t.Error("unsupported TEE accepted")
	}
}

func TestClusterCloseIsIdempotent(t *testing.T) {
	c, err := NewCluster(ClusterConfig{TEEs: []tee.Kind{tee.KindSEV}, GuestMemoryMB: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

func TestGatewayURLAndPools(t *testing.T) {
	c, err := NewCluster(ClusterConfig{TEEs: []tee.Kind{tee.KindTDX}, GuestMemoryMB: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.GatewayURL() == "" {
		t.Error("no gateway URL")
	}
	pools, err := c.Client().Pools(context.Background())
	if err != nil || len(pools) != 1 || pools[0].TEE != tee.KindTDX {
		t.Errorf("pools = %+v, %v", pools, err)
	}
}

func TestLeastLoadedConfig(t *testing.T) {
	c, err := NewCluster(ClusterConfig{TEEs: []tee.Kind{tee.KindTDX}, LeastLoaded: true, GuestMemoryMB: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	pools, err := c.Client().Pools(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if pools[0].Policy != "least-loaded" {
		t.Errorf("policy = %s", pools[0].Policy)
	}
}

func TestUploadCatalogAndDuplicates(t *testing.T) {
	c, err := NewCluster(ClusterConfig{TEEs: []tee.Kind{tee.KindSEV}, GuestMemoryMB: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.UploadCatalog(context.Background(), []string{"go"}); err != nil {
		t.Fatal(err)
	}
	// A second pass collides with the already-registered names.
	if err := c.UploadCatalog(context.Background(), []string{"go"}); err == nil {
		t.Error("duplicate catalog upload accepted")
	}
	// Unknown language surfaces the gateway's rejection.
	if err := c.UploadCatalog(context.Background(), []string{"cobol"}); err == nil {
		t.Error("unknown language accepted")
	}
}

// TestShardedClusterServesThroughFrontTier: Shards > 1 boots shard
// gateways behind a front tier, the client points at the tier, an
// invoke flows end to end, and CloseShard kills exactly the named
// shard.
func TestShardedClusterServesThroughFrontTier(t *testing.T) {
	c, err := NewCluster(ClusterConfig{TEEs: []tee.Kind{tee.KindSEV}, GuestMemoryMB: 4, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.FrontTier() == nil {
		t.Fatal("sharded cluster has no front tier")
	}
	if got := c.ShardNames(); len(got) != 2 || got[0] != "shard-0" || got[1] != "shard-1" {
		t.Fatalf("shard names = %v", got)
	}
	if c.GatewayURL() != c.FrontTier().BaseURL() {
		t.Errorf("front door URL %q is not the tier's %q", c.GatewayURL(), c.FrontTier().BaseURL())
	}
	if c.Gateway() == nil {
		t.Error("Gateway() must still expose a shard gateway")
	}
	ctx := context.Background()
	fn := faas.Function{Name: "sharded", Language: "go", Workload: "cpustress"}
	if err := c.Client().Upload(ctx, fn); err != nil {
		t.Fatal(err)
	}
	resp, err := c.Client().Invoke(ctx, api.InvokeRequest{Function: "sharded", TEE: tee.KindSEV})
	if err != nil {
		t.Fatal(err)
	}
	if resp.WallNs <= 0 {
		t.Errorf("invoke through the tier returned no wall time: %+v", resp)
	}
	if err := c.CloseShard("shard-9"); err == nil {
		t.Error("closing an unknown shard must fail")
	}
	if err := c.CloseShard("shard-1"); err != nil {
		t.Errorf("close shard-1: %v", err)
	}
}

// TestSingleGatewayClusterHasNoTier: Shards <= 1 keeps the existing
// single-gateway deployment untouched.
func TestSingleGatewayClusterHasNoTier(t *testing.T) {
	c, err := NewCluster(ClusterConfig{TEEs: []tee.Kind{tee.KindSEV}, GuestMemoryMB: 4, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.FrontTier() != nil || len(c.ShardNames()) != 0 {
		t.Error("Shards=1 must not deploy a front tier")
	}
	if c.GatewayURL() == "" {
		t.Error("no gateway URL")
	}
}

func TestPairUnknownKind(t *testing.T) {
	c, err := NewCluster(ClusterConfig{TEEs: []tee.Kind{tee.KindSEV}, GuestMemoryMB: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Pair(tee.KindTDX); err == nil {
		t.Error("pair for undeployed kind should fail")
	}
	if _, err := c.Agent(tee.KindCCA); err == nil {
		t.Error("agent for undeployed kind should fail")
	}
}
