package hostagent

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"confbench/internal/cpumodel"
	"confbench/internal/tee"
)

// slowLaunchBackend is a minimal tee.Backend whose launches past
// blockAfter park on gate — pinning the pool's refill goroutine
// inside create() for as long as a test needs.
type slowLaunchBackend struct {
	mu         sync.Mutex
	launches   int
	blockAfter int
	gate       chan struct{}
	guests     []*tee.ModelGuest
}

func (b *slowLaunchBackend) Kind() tee.Kind { return tee.KindSEV }
func (b *slowLaunchBackend) Name() string   { return "slow-launch stub" }
func (b *slowLaunchBackend) HostProfile() cpumodel.Profile { return cpumodel.EPYC9124 }

func (b *slowLaunchBackend) Launch(cfg tee.GuestConfig) (tee.Guest, error) {
	b.mu.Lock()
	b.launches++
	block := b.launches > b.blockAfter
	b.mu.Unlock()
	if block {
		<-b.gate
	}
	g := tee.NewModelGuest(tee.ModelGuestConfig{
		IDPrefix: "slow", Kind: tee.KindSEV, Secure: true, Model: tee.NormalCostModel(),
		BootBase: time.Millisecond,
	})
	b.mu.Lock()
	b.guests = append(b.guests, g)
	b.mu.Unlock()
	return g, nil
}

func (b *slowLaunchBackend) LaunchNormal(cfg tee.GuestConfig) (tee.Guest, error) {
	return b.Launch(cfg)
}

// leakedGuests counts launched guests never destroyed.
func (b *slowLaunchBackend) leakedGuests() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for _, g := range b.guests {
		if !g.Destroyed() {
			n++
		}
	}
	return n
}

// TestShutdownDestroysIdleOnExpiredContext is the regression test for
// the warm-guest leak: Shutdown used to return as soon as its context
// expired while the refill goroutine was still mid-create, without
// destroying the idle guests — and since the pool was already marked
// closed, a second Shutdown was a no-op, so the idle guests leaked
// forever. Shutdown must destroy the idle set even when it gives up
// waiting for the refill goroutine.
func TestShutdownDestroysIdleOnExpiredContext(t *testing.T) {
	// Prefill (2 launches) proceeds; the refill triggered below blocks.
	backend := &slowLaunchBackend{blockAfter: 2, gate: make(chan struct{})}
	pool, err := NewGuestPool(GuestPoolConfig{
		Backend: backend,
		Guest:   tee.GuestConfig{Name: "leaky", MemoryMB: 2},
		Low:     2,
		High:    2,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Dip below the low watermark so the refill goroutine wakes up and
	// parks inside the stub's blocked Launch.
	leased, err := pool.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		backend.mu.Lock()
		blocked := backend.launches > backend.blockAfter
		backend.mu.Unlock()
		if blocked {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("refill goroutine never reached the blocked launch")
		}
		time.Sleep(time.Millisecond)
	}

	// Shutdown with a context that expires while the refill goroutine
	// is stuck. The wait must time out, but the idle guest must still
	// be destroyed.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	serr := pool.Shutdown(ctx)
	if !errors.Is(serr, context.DeadlineExceeded) {
		t.Fatalf("shutdown error %v, want DeadlineExceeded in the chain", serr)
	}
	if pool.Idle() != 0 {
		t.Errorf("idle %d after shutdown", pool.Idle())
	}

	// Unblock the parked launch and let the refill goroutine notice the
	// closed pool and destroy its own creation.
	close(backend.gate)
	_ = leased.Destroy()
	for time.Now().Before(deadline) {
		if backend.leakedGuests() == 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if n := backend.leakedGuests(); n != 0 {
		t.Errorf("%d warm guests leaked after shutdown", n)
	}

	// A second Shutdown on the closed pool stays a clean no-op.
	if err := pool.Shutdown(context.Background()); err != nil {
		t.Errorf("second shutdown: %v", err)
	}
}
