package hostagent

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"confbench/internal/faultplane"
	"confbench/internal/obs"
	"confbench/internal/tee"
	"confbench/internal/tee/sev"
	"confbench/internal/vm"
)

func newTestPool(t *testing.T, plane *faultplane.Plane, low, high int, reg *obs.Registry) *GuestPool {
	t.Helper()
	backend, err := sev.NewBackend(sev.Options{Seed: 42, Obs: reg, Faults: plane})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewGuestPool(GuestPoolConfig{
		Backend: backend,
		Guest:   tee.GuestConfig{Name: "pool-host", MemoryMB: 2},
		Cache:   vm.NewSnapshotCache(64<<20, reg),
		Low:     low,
		High:    high,
		Obs:     reg,
		Faults:  plane,
		Host:    "pool-host",
	})
	if err != nil {
		t.Fatal(err)
	}
	return pool
}

// TestGuestPoolInvariants hammers the pool with concurrent
// acquire/release cycles while a seeded fault plane crashes a fifth of
// the restores, and checks the pool's core invariants: no guest is
// leased twice at once, the idle count never exceeds the high
// watermark, the pool refills into [low, high] after quiescence, and
// the refill goroutine does not leak. Run under -race.
func TestGuestPoolInvariants(t *testing.T) {
	plane := faultplane.New(99)
	if err := plane.Register(faultplane.Spec{
		Point: faultplane.PointSnapshotRestore, Kind: faultplane.KindCrash, Probability: 0.2,
	}); err != nil {
		t.Fatal(err)
	}
	reg := obs.New()
	before := runtime.NumGoroutine()
	const low, high = 2, 4
	pool := newTestPool(t, plane, low, high, reg)

	var mu sync.Mutex
	held := make(map[string]bool)

	const goroutines, cycles = 20, 10
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < cycles; i++ {
				guest, err := pool.Acquire()
				if err != nil {
					t.Errorf("acquire: %v", err)
					return
				}
				mu.Lock()
				if held[guest.ID()] {
					t.Errorf("guest %s double-leased", guest.ID())
				}
				held[guest.ID()] = true
				mu.Unlock()
				if idle := pool.Idle(); idle > high {
					t.Errorf("idle %d above high watermark %d", idle, high)
				}
				mu.Lock()
				delete(held, guest.ID())
				mu.Unlock()
				// Half the guests die in service — their releases drop
				// them from the pool and keep restore traffic (and its
				// injected crashes) flowing.
				if (g+i)%2 == 0 {
					_ = guest.Destroy()
				}
				pool.Release(guest)
			}
		}(g)
	}
	wg.Wait()

	// After quiescence the refill goroutine must bring idle back into
	// the watermark band.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if idle := pool.Idle(); idle >= low && idle <= high {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("idle %d outside [%d, %d] after quiescence", pool.Idle(), low, high)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if leased := pool.Leased(); leased != 0 {
		t.Errorf("%d guests still leased after all releases", leased)
	}

	// Crashed restores fell back to cold launches and hits still
	// happened — the fault plane was actually exercised.
	snap := reg.Snapshot()
	if got := snap.Counters[obs.MetricID("confbench_warm_fallbacks_total", "tee", "sev-snp")]; got == 0 {
		t.Error("no warm fallbacks despite 20% crash probability")
	}
	if got := snap.Counters[obs.MetricID("confbench_warm_hits_total", "tee", "sev-snp")]; got == 0 {
		t.Error("no warm hits")
	}

	if err := pool.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := pool.Shutdown(context.Background()); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
	if _, err := pool.Acquire(); err == nil {
		t.Error("acquire after shutdown succeeded")
	}

	// The refill goroutine must be gone; allow the runtime a moment to
	// park exiting goroutines.
	for i := 0; ; i++ {
		if runtime.NumGoroutine() <= before {
			break
		}
		if i > 100 {
			t.Errorf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestGuestPoolWatermarkDefaults pins the Low default of (High+1)/2
// and rejection of inverted watermarks.
func TestGuestPoolWatermarkDefaults(t *testing.T) {
	pool := newTestPool(t, nil, 0, 5, obs.New())
	defer pool.Shutdown(context.Background())
	low, high := pool.Watermarks()
	if low != 3 || high != 5 {
		t.Errorf("watermarks = (%d, %d), want (3, 5)", low, high)
	}
	if pool.Idle() != high {
		t.Errorf("prefill idle = %d, want %d", pool.Idle(), high)
	}

	backend, err := sev.NewBackend(sev.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewGuestPool(GuestPoolConfig{Backend: backend, Low: 6, High: 2}); err == nil {
		t.Error("inverted watermarks accepted")
	}
	if _, err := NewGuestPool(GuestPoolConfig{}); err == nil {
		t.Error("nil backend accepted")
	}
}

// TestGuestPoolReleaseSemantics pins the Release edge cases: unknown
// guests are ignored, destroyed guests are dropped from the pool, and
// a full pool destroys rather than exceeds the high watermark.
func TestGuestPoolReleaseSemantics(t *testing.T) {
	pool := newTestPool(t, nil, 1, 2, obs.New())
	defer pool.Shutdown(context.Background())

	backend, err := sev.NewBackend(sev.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	foreign, err := backend.Launch(tee.GuestConfig{Name: "foreign", MemoryMB: 2})
	if err != nil {
		t.Fatal(err)
	}
	pool.Release(foreign) // never leased: no-op
	if pool.Idle() != 2 {
		t.Errorf("foreign release changed idle to %d", pool.Idle())
	}
	pool.Release(nil)

	guest, err := pool.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if err := guest.Destroy(); err != nil {
		t.Fatal(err)
	}
	pool.Release(guest)
	if pool.Leased() != 0 {
		t.Error("destroyed guest still leased after release")
	}
	for _, g := range pool.idleSnapshot() {
		if g.ID() == guest.ID() {
			t.Error("destroyed guest returned to idle")
		}
	}
}

// idleSnapshot copies the idle slice for test inspection.
func (p *GuestPool) idleSnapshot() []tee.Guest {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]tee.Guest(nil), p.idle...)
}
