package hostagent

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"confbench/internal/api"
	"confbench/internal/cberr"
	"confbench/internal/faas"
	"confbench/internal/faultplane"
	"confbench/internal/tee"
	"confbench/internal/tee/tdx"
)

func newAgent(t *testing.T) *Agent {
	t.Helper()
	backend, err := tdx.NewBackend(tdx.Options{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAgent(AgentConfig{
		Name:    "test-host",
		Backend: backend,
		Guest:   tee.GuestConfig{MemoryMB: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = a.Close() })
	return a
}

func postJSON(t *testing.T, url string, in, out any) int {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func TestAgentEndpoints(t *testing.T) {
	a := newAgent(t)
	eps := a.Endpoints()
	if len(eps) != 2 {
		t.Fatalf("endpoints = %d, want secure+normal", len(eps))
	}
	secure, err := a.Endpoint(true)
	if err != nil || !secure.Secure || secure.TEE != tee.KindTDX {
		t.Errorf("secure endpoint = %+v, %v", secure, err)
	}
	normal, err := a.Endpoint(false)
	if err != nil || normal.Secure {
		t.Errorf("normal endpoint = %+v, %v", normal, err)
	}
	if secure.Addr == normal.Addr {
		t.Error("both VMs share one port")
	}
}

func TestInvokeThroughRelay(t *testing.T) {
	a := newAgent(t)
	ep, err := a.Endpoint(true)
	if err != nil {
		t.Fatal(err)
	}
	req := api.GuestInvokeRequest{
		Function: faas.Function{Name: "f", Language: "go", Workload: "factors"},
		Scale:    5040,
	}
	var resp api.InvokeResponse
	if code := postJSON(t, "http://"+ep.Addr+api.GuestPathInvoke, req, &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if resp.Output == "" || !resp.Secure || resp.Platform != tee.KindTDX {
		t.Errorf("response = %+v", resp)
	}
	if resp.WallNs <= 0 {
		t.Error("no timing piggybacked")
	}
	if resp.Perf.Monitor == "" {
		t.Error("no perf metrics piggybacked")
	}
	// Traffic must actually have crossed the relay.
	accepted, bytesFwd := a.RelayStats()
	if accepted == 0 || bytesFwd == 0 {
		t.Errorf("relay stats = %d conns, %d bytes", accepted, bytesFwd)
	}
}

func TestInvokeErrorsSurface(t *testing.T) {
	a := newAgent(t)
	ep, _ := a.Endpoint(true)
	req := api.GuestInvokeRequest{
		Function: faas.Function{Name: "f", Language: "cobol", Workload: "factors"},
	}
	// An unknown language is a caller mistake, classified invalid_request.
	if code := postJSON(t, "http://"+ep.Addr+api.GuestPathInvoke, req, nil); code != http.StatusBadRequest {
		t.Errorf("status = %d", code)
	}
}

func TestInvokeRejectsGet(t *testing.T) {
	a := newAgent(t)
	ep, _ := a.Endpoint(true)
	resp, err := http.Get("http://" + ep.Addr + api.GuestPathInvoke)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestAttestThroughRelay(t *testing.T) {
	a := newAgent(t)
	secure, _ := a.Endpoint(true)
	var resp api.AttestResponse
	req := api.AttestRequest{TEE: tee.KindTDX, Nonce: []byte("nonce")}
	if code := postJSON(t, "http://"+secure.Addr+api.GuestPathAttest, req, &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(resp.Evidence) == 0 || resp.AttestNs <= 0 {
		t.Errorf("attest response = %+v", resp)
	}
	// The normal VM cannot attest.
	normal, _ := a.Endpoint(false)
	if code := postJSON(t, "http://"+normal.Addr+api.GuestPathAttest, req, nil); code != http.StatusInternalServerError {
		t.Errorf("normal attest status = %d", code)
	}
}

func TestGuestHealth(t *testing.T) {
	a := newAgent(t)
	for _, ep := range a.Endpoints() {
		resp, err := http.Get("http://" + ep.Addr + api.GuestPathHealth)
		if err != nil {
			t.Fatal(err)
		}
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s health = %d", ep.VMName, resp.StatusCode)
		}
	}
}

func TestAgentCloseTearsDown(t *testing.T) {
	backend, err := tdx.NewBackend(tdx.Options{Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAgent(AgentConfig{Backend: backend, Guest: tee.GuestConfig{MemoryMB: 4}})
	if err != nil {
		t.Fatal(err)
	}
	ep, _ := a.Endpoint(true)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Timeout: 500 * time.Millisecond}
	if _, err := client.Get("http://" + ep.Addr + api.GuestPathHealth); err == nil {
		t.Error("closed agent still serving")
	}
	// VMs must be stopped.
	if _, err := a.Pair().Secure.InvokeFunction(context.Background(), faas.Function{Name: "f", Language: "go", Workload: "factors"}, 1); err == nil {
		t.Error("VM alive after close")
	}
}

func TestAgentRejectsNilBackend(t *testing.T) {
	if _, err := NewAgent(AgentConfig{}); err == nil {
		t.Error("nil backend accepted")
	}
}

// TestAgentLaunchFault: an error fault armed at hostagent.launch
// keeps the host from coming up, and a latency fault merely delays
// it.
func TestAgentLaunchFault(t *testing.T) {
	backend, err := tdx.NewBackend(tdx.Options{Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	plane := faultplane.New(1)
	if err := plane.Register(faultplane.Spec{
		Point:       faultplane.PointHostLaunch,
		Kind:        faultplane.KindError,
		Host:        "doomed-host",
		Probability: 1,
	}); err != nil {
		t.Fatal(err)
	}
	_, err = NewAgent(AgentConfig{
		Name:    "doomed-host",
		Backend: backend,
		Guest:   tee.GuestConfig{MemoryMB: 8},
		Faults:  plane,
	})
	if err == nil {
		t.Fatal("launch with an armed error fault should fail")
	}
	if !cberr.Retryable(err) {
		t.Errorf("launch fault should classify retryable, got %v", err)
	}

	// A differently-named host does not match the filter and boots.
	a, err := NewAgent(AgentConfig{
		Name:    "healthy-host",
		Backend: backend,
		Guest:   tee.GuestConfig{MemoryMB: 8},
		Faults:  plane,
	})
	if err != nil {
		t.Fatalf("unfaulted host failed to boot: %v", err)
	}
	_ = a.Close()
}

// TestGuestServerExecFault: an error fault at hostagent.exec surfaces
// as a retryable 503 from the guest agent, while unfaulted VMs on
// other hosts keep serving.
func TestGuestServerExecFault(t *testing.T) {
	backend, err := tdx.NewBackend(tdx.Options{Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	plane := faultplane.New(1)
	if err := plane.Register(faultplane.Spec{
		Point:       faultplane.PointHostExec,
		Kind:        faultplane.KindError,
		Host:        "faulted-host",
		Probability: 1,
	}); err != nil {
		t.Fatal(err)
	}
	a, err := NewAgent(AgentConfig{
		Name:    "faulted-host",
		Backend: backend,
		Guest:   tee.GuestConfig{MemoryMB: 8},
		Faults:  plane,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = a.Close() })

	ep, err := a.Endpoint(true)
	if err != nil {
		t.Fatal(err)
	}
	req := api.GuestInvokeRequest{
		Function: faas.Function{Name: "f", Language: "go", Workload: "cpustress"},
		Scale:    1,
	}
	status := postJSON(t, "http://"+ep.Addr+api.GuestPathInvoke, req, nil)
	if status != http.StatusServiceUnavailable {
		t.Errorf("faulted exec status = %d, want %d", status, http.StatusServiceUnavailable)
	}
	if plane.Injected() == 0 {
		t.Error("no injection recorded")
	}
}
