package hostagent

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"confbench/internal/faultplane"
	"confbench/internal/obs"
	"confbench/internal/tee"
	"confbench/internal/vm"
)

// GuestPoolConfig assembles a prewarmed guest pool.
type GuestPoolConfig struct {
	// Backend launches (and, when it implements tee.Snapshotter,
	// restores) guests.
	Backend tee.Backend
	// Guest is the per-guest configuration; pool guests derive seeds
	// from the backend like regular launches.
	Guest tee.GuestConfig
	// Runtime names the snapshot flavor and keys the shared cache; a
	// snapshot image captured for one host is reusable on any host of
	// the same kind running the same runtime. Defaults to "default".
	Runtime string
	// Cache is the (usually cluster-shared) snapshot image cache (nil =
	// no caching; every warm create snapshots afresh).
	Cache *vm.SnapshotCache
	// Low and High are the idle watermarks: a background refill tops
	// the pool back up to High whenever idle drops below Low. High
	// defaults to 1; Low defaults to (High+1)/2.
	Low, High int
	// Obs is the metrics registry warm-path counters report to (nil =
	// the process-wide default).
	Obs *obs.Registry
	// Faults is the fault plane evaluated at the snapshot.restore point
	// (nil = fault-free).
	Faults *faultplane.Plane
	// Host labels the pool's host for fault-spec matching.
	Host string
}

// GuestPool keeps restored-from-snapshot guests idle and ready so
// Acquire hands out a booted guest without paying the measured build.
// A background goroutine refills the pool between the low and high
// watermarks; a failed or fault-injected restore falls back to a cold
// launch so callers never see the warm path break.
type GuestPool struct {
	backend tee.Backend
	guest   tee.GuestConfig
	runtime string
	cache   *vm.SnapshotCache
	low     int
	high    int
	faults  *faultplane.Plane
	host    string

	hits      *obs.Counter
	misses    *obs.Counter
	fallbacks *obs.Counter
	idleGauge *obs.Gauge
	refillLag *obs.Histogram

	mu     sync.Mutex
	idle   []tee.Guest
	leased map[string]tee.Guest
	closed bool

	refillCh chan struct{}
	done     chan struct{}
	wg       sync.WaitGroup
}

// NewGuestPool prefills a pool to its high watermark and starts the
// refill goroutine. The prefill is synchronous so a freshly built pool
// serves its first Acquire warm.
func NewGuestPool(cfg GuestPoolConfig) (*GuestPool, error) {
	if cfg.Backend == nil {
		return nil, fmt.Errorf("hostagent: pool: nil backend")
	}
	if cfg.Runtime == "" {
		cfg.Runtime = "default"
	}
	if cfg.High <= 0 {
		cfg.High = 1
	}
	if cfg.Low <= 0 {
		cfg.Low = (cfg.High + 1) / 2
	}
	if cfg.Low > cfg.High {
		return nil, fmt.Errorf("hostagent: pool: low watermark %d above high %d", cfg.Low, cfg.High)
	}
	r := obs.OrDefault(cfg.Obs)
	kind := string(cfg.Backend.Kind())
	p := &GuestPool{
		backend:   cfg.Backend,
		guest:     cfg.Guest,
		runtime:   cfg.Runtime,
		cache:     cfg.Cache,
		low:       cfg.Low,
		high:      cfg.High,
		faults:    cfg.Faults,
		host:      cfg.Host,
		hits:      r.Counter("confbench_warm_hits_total", "tee", kind),
		misses:    r.Counter("confbench_warm_misses_total", "tee", kind),
		fallbacks: r.Counter("confbench_warm_fallbacks_total", "tee", kind),
		idleGauge: r.Gauge("confbench_warm_pool_idle", "tee", kind),
		refillLag: r.Histogram("confbench_warm_refill_lag_seconds", "tee", kind),
		leased:    make(map[string]tee.Guest),
		refillCh:  make(chan struct{}, 1),
		done:      make(chan struct{}),
	}
	for i := 0; i < p.high; i++ {
		g, err := p.create()
		if err != nil {
			for _, idle := range p.idle {
				_ = idle.Destroy()
			}
			return nil, fmt.Errorf("hostagent: pool prefill: %w", err)
		}
		p.idle = append(p.idle, g)
	}
	p.idleGauge.Set(int64(len(p.idle)))
	p.wg.Add(1)
	go p.refillLoop()
	return p, nil
}

// Watermarks returns the configured low and high idle watermarks.
func (p *GuestPool) Watermarks() (low, high int) { return p.low, p.high }

// Idle returns the current idle-guest count.
func (p *GuestPool) Idle() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.idle)
}

// Leased returns the number of guests currently checked out.
func (p *GuestPool) Leased() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.leased)
}

// create builds one warm guest: restore from a (cached) snapshot image
// when the backend supports it, falling back to a cold launch when the
// restore fails or a snapshot.restore fault severs the warm path.
func (p *GuestPool) create() (tee.Guest, error) {
	snap, ok := p.backend.(tee.Snapshotter)
	if !ok {
		return p.backend.Launch(p.guest)
	}
	cfg := p.guest.WithDefaults()
	key := vm.SnapshotKey{Kind: p.backend.Kind(), Runtime: p.runtime, MemoryMB: cfg.MemoryMB}
	img, cached := p.cache.Get(key)
	if !cached {
		// Snapshot under the runtime name, not the host name, so the
		// image (and its measurement) is host-independent and shareable
		// through the cluster cache.
		tmpl := cfg
		tmpl.Name = p.runtime
		var err error
		img, err = snap.Snapshot(tmpl)
		if err != nil {
			p.fallbacks.Inc()
			return p.backend.Launch(p.guest)
		}
		p.cache.Put(key, img)
	}
	if d := p.faults.Evaluate(faultplane.PointSnapshotRestore, faultplane.Target{
		TEE: string(p.backend.Kind()), Host: p.host,
	}); d.Inject {
		switch d.Kind {
		case faultplane.KindLatency, faultplane.KindSlowIO:
			time.Sleep(d.Latency)
		default: // error / drop / crash: the restore never completes.
			p.fallbacks.Inc()
			return p.backend.Launch(p.guest)
		}
	}
	g, err := snap.Restore(img, cfg)
	if err != nil {
		p.fallbacks.Inc()
		return p.backend.Launch(p.guest)
	}
	return g, nil
}

// Acquire checks a guest out of the pool: a warm hit pops an idle
// guest, a miss builds one inline (still via the snapshot path). The
// refill goroutine is nudged when idle dips below the low watermark.
func (p *GuestPool) Acquire() (tee.Guest, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, fmt.Errorf("hostagent: pool: acquire after shutdown")
	}
	if n := len(p.idle); n > 0 {
		g := p.idle[0]
		p.idle = p.idle[1:]
		p.leased[g.ID()] = g
		p.idleGauge.Set(int64(len(p.idle)))
		needRefill := len(p.idle) < p.low
		p.mu.Unlock()
		p.hits.Inc()
		if needRefill {
			p.nudgeRefill()
		}
		return g, nil
	}
	p.mu.Unlock()
	p.misses.Inc()
	g, err := p.create()
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		_ = g.Destroy()
		return nil, fmt.Errorf("hostagent: pool: acquire after shutdown")
	}
	p.leased[g.ID()] = g
	p.mu.Unlock()
	p.nudgeRefill()
	return g, nil
}

// Release returns a leased guest. Destroyed guests are dropped, and a
// pool already at its high watermark destroys the returned guest
// rather than exceeding it. Releasing a guest the pool does not hold
// is a no-op.
func (p *GuestPool) Release(g tee.Guest) {
	if g == nil {
		return
	}
	p.mu.Lock()
	if _, ok := p.leased[g.ID()]; !ok {
		p.mu.Unlock()
		return
	}
	delete(p.leased, g.ID())
	if dg, ok := g.(interface{ Destroyed() bool }); ok && dg.Destroyed() {
		p.mu.Unlock()
		p.nudgeRefill()
		return
	}
	if p.closed || len(p.idle) >= p.high {
		p.mu.Unlock()
		_ = g.Destroy()
		return
	}
	p.idle = append(p.idle, g)
	p.idleGauge.Set(int64(len(p.idle)))
	p.mu.Unlock()
}

// nudgeRefill wakes the refill goroutine without blocking.
func (p *GuestPool) nudgeRefill() {
	select {
	case p.refillCh <- struct{}{}:
	default:
	}
}

// refillLoop tops the pool back up to the high watermark whenever
// nudged, recording how long each whole refill round took.
func (p *GuestPool) refillLoop() {
	defer p.wg.Done()
	for {
		select {
		case <-p.done:
			return
		case <-p.refillCh:
		}
		start := time.Now()
		refilled := false
		for {
			select {
			case <-p.done:
				return
			default:
			}
			p.mu.Lock()
			full := p.closed || len(p.idle) >= p.high
			p.mu.Unlock()
			if full {
				break
			}
			g, err := p.create()
			if err != nil {
				break // even the cold fallback failed; retry on next nudge
			}
			p.mu.Lock()
			if p.closed || len(p.idle) >= p.high {
				p.mu.Unlock()
				_ = g.Destroy()
				break
			}
			p.idle = append(p.idle, g)
			p.idleGauge.Set(int64(len(p.idle)))
			p.mu.Unlock()
			refilled = true
		}
		if refilled {
			p.refillLag.Observe(time.Since(start))
		}
	}
}

// Shutdown stops the refill goroutine and destroys the idle guests.
// Leased guests are the holders' to destroy and release. The ctx
// bounds the wait for the refill goroutine to drain — but the idle
// guests are destroyed even when that wait times out: an impatient
// ctx must not leak warm guests. (A refill create still in flight at
// that point lands on the closed pool and is destroyed by the refill
// goroutine itself, so nothing escapes either way.)
func (p *GuestPool) Shutdown(ctx context.Context) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	close(p.done)
	drained := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(drained)
	}()
	var errs []error
	select {
	case <-drained:
	case <-ctx.Done():
		errs = append(errs, ctx.Err())
	}
	p.mu.Lock()
	idle := p.idle
	p.idle = nil
	p.idleGauge.Set(0)
	p.mu.Unlock()
	for _, g := range idle {
		errs = append(errs, g.Destroy())
	}
	return errors.Join(errs...)
}

// DrainIdle pops and returns every idle guest without destroying it,
// leaving the pool empty (the refill goroutine will top it back up
// unless the pool is being shut down). Live migration uses this to
// move a departing host's warm capacity instead of burning it.
func (p *GuestPool) DrainIdle() []tee.Guest {
	p.mu.Lock()
	idle := p.idle
	p.idle = nil
	p.idleGauge.Set(0)
	p.mu.Unlock()
	return idle
}

// Adopt inserts an externally built guest (e.g. one migrated in from
// a draining host) into the idle set. A closed pool, or one already
// at its high watermark, destroys the guest instead — mirroring
// Release — and Adopt reports whether the guest was kept.
func (p *GuestPool) Adopt(g tee.Guest) bool {
	if g == nil {
		return false
	}
	p.mu.Lock()
	if p.closed || len(p.idle) >= p.high {
		p.mu.Unlock()
		_ = g.Destroy()
		return false
	}
	p.idle = append(p.idle, g)
	p.idleGauge.Set(int64(len(p.idle)))
	p.mu.Unlock()
	return true
}
