package hostagent

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"confbench/internal/api"
	"confbench/internal/cberr"
	"confbench/internal/faas"
	"confbench/internal/obs"
	"confbench/internal/tee"
	"confbench/internal/tee/tdx"
	"confbench/internal/vm"
	"confbench/internal/wire"
)

// TestGuestWireDoor drives every binary frame type the guest agent
// accepts through its sniffed front door — across the relay hop, like
// gateway traffic — and checks each response against what the HTTP
// surface serves for the same request.
func TestGuestWireDoor(t *testing.T) {
	a := newAgent(t)
	ep, err := a.Endpoint(true)
	if err != nil {
		t.Fatal(err)
	}
	bt := wire.NewBinary(nil)
	defer bt.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// Invoke.
	req := api.GuestInvokeRequest{
		Function: faas.Function{Name: "f", Language: "go", Workload: "factors"},
		Scale:    5040,
	}
	var resp api.InvokeResponse
	if err := bt.RoundTrip(ctx, ep.Addr, api.GuestV1Invoke, &req, &resp); err != nil {
		t.Fatalf("wire invoke: %v", err)
	}
	if resp.Output == "" || !resp.Secure || resp.Platform != tee.KindTDX {
		t.Errorf("wire invoke response = %+v", resp)
	}
	if resp.WallNs <= 0 || resp.Perf.Monitor == "" {
		t.Errorf("wire invoke lost the piggybacked timing/perf: %+v", resp)
	}

	// Invoke errors keep their classification across the TError frame.
	bad := api.GuestInvokeRequest{
		Function: faas.Function{Name: "f", Language: "cobol", Workload: "factors"},
	}
	err = bt.RoundTrip(ctx, ep.Addr, api.GuestV1Invoke, &bad, &resp)
	var ce *cberr.Error
	if !errors.As(err, &ce) || ce.Code != cberr.CodeInvalid {
		t.Errorf("wire invoke error = %v, want classified %s", err, cberr.CodeInvalid)
	}

	// Attest.
	var att api.AttestResponse
	areq := api.AttestRequest{TEE: tee.KindTDX, Nonce: []byte("nonce")}
	if err := bt.RoundTrip(ctx, ep.Addr, api.GuestV1Attest, &areq, &att); err != nil {
		t.Fatalf("wire attest: %v", err)
	}
	if len(att.Evidence) == 0 || att.AttestNs <= 0 {
		t.Errorf("wire attest response = %+v", att)
	}

	// Health (fire-and-check: nil out just confirms a non-error frame).
	if err := bt.RoundTrip(ctx, ep.Addr, api.GuestV1Health, nil, nil); err != nil {
		t.Fatalf("wire health: %v", err)
	}

	// Obs: the snapshot rides as JSON and must show the invokes above.
	var snap obs.Snapshot
	if err := bt.RoundTrip(ctx, ep.Addr, api.GuestV1Obs, nil, &snap); err != nil {
		t.Fatalf("wire obs: %v", err)
	}
	vmName := a.guests[0].VM().Name()
	if got := snap.Counters[obs.MetricID("confbench_hostagent_requests_total", "vm", vmName)]; got == 0 {
		t.Errorf("obs snapshot over wire shows no requests for %s", vmName)
	}
}

// TestGuestWireRejectsUnknownFrame hand-crafts a frame of a type the
// guest never serves (a response type) and expects a classified TError
// back — the handler's catch-all branch.
func TestGuestWireRejectsUnknownFrame(t *testing.T) {
	a := newAgent(t)
	ep, _ := a.Endpoint(true)
	conn, err := net.DialTimeout("tcp", ep.Addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	frame := wire.AppendFrame(nil, wire.TInvokeResp, 7, []byte("junk"))
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	h, payload, err := wire.ReadFrame(conn)
	if err != nil {
		t.Fatalf("read response frame: %v", err)
	}
	defer wire.PutBuf(payload)
	if h.Type != wire.TError || h.Corr != 7 {
		t.Fatalf("frame = %s corr %d, want %s corr 7", h.Type, h.Corr, wire.TError)
	}
	werr, derr := wire.DecodeError(payload)
	if derr != nil {
		t.Fatal(derr)
	}
	var ce *cberr.Error
	if !errors.As(werr, &ce) || ce.Code != cberr.CodeInvalid {
		t.Errorf("error = %v, want classified %s", werr, cberr.CodeInvalid)
	}
}

// TestGuestObsEndpoint scrapes the guest agent's metrics door in both
// formats and checks the method guard.
func TestGuestObsEndpoint(t *testing.T) {
	a := newAgent(t)
	ep, _ := a.Endpoint(true)
	base := "http://" + ep.Addr + api.GuestPathObs
	client := &http.Client{Timeout: 5 * time.Second}

	resp, err := client.Get(base)
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prometheus scrape status %d", resp.StatusCode)
	}
	if !strings.Contains(resp.Header.Get("Content-Type"), "text/plain") {
		t.Errorf("content type = %q", resp.Header.Get("Content-Type"))
	}
	if !strings.Contains(string(prom), "confbench_") {
		t.Error("prometheus scrape carries no confbench metrics")
	}

	resp, err = client.Get(base + "?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("json scrape: %v", err)
	}
	resp.Body.Close()

	resp, err = client.Post(base, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d, want %d", resp.StatusCode, http.StatusMethodNotAllowed)
	}
}

// TestWarmAgent boots a host whose secure VM comes out of a prewarmed
// guest pool and checks the warm plumbing end to end: the pool handle,
// the warm-marked endpoint, a real invoke through the relay, and the
// accessor surface.
func TestWarmAgent(t *testing.T) {
	backend, err := tdx.NewBackend(tdx.Options{Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.New()
	a, err := NewAgent(AgentConfig{
		Name:     "warm-host",
		Backend:  backend,
		Guest:    tee.GuestConfig{MemoryMB: 8},
		Obs:      reg,
		WarmPool: 2,
		Cache:    vm.NewSnapshotCache(64<<20, reg),
		Runtime:  "go",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	if a.Name() != "warm-host" {
		t.Errorf("Name = %q", a.Name())
	}
	if a.Backend().Kind() != tee.KindTDX {
		t.Errorf("Backend kind = %s", a.Backend().Kind())
	}
	if a.Pool() == nil {
		t.Fatal("warm agent has no pool handle")
	}
	if pair := a.Pair(); pair.Secure == nil || pair.Normal == nil {
		t.Fatalf("pair = %+v", pair)
	}

	secure, err := a.Endpoint(true)
	if err != nil {
		t.Fatal(err)
	}
	if !secure.Warm {
		t.Error("secure endpoint not marked warm despite the pool")
	}
	normal, _ := a.Endpoint(false)
	if normal.Warm {
		t.Error("normal endpoint marked warm; only the secure VM is pooled")
	}

	req := api.GuestInvokeRequest{
		Function: faas.Function{Name: "f", Language: "go", Workload: "factors"},
		Scale:    42,
	}
	var resp api.InvokeResponse
	if code := postJSON(t, "http://"+secure.Addr+api.GuestPathInvoke, req, &resp); code != http.StatusOK {
		t.Fatalf("warm invoke status %d", code)
	}
	if resp.Output == "" || !resp.Secure {
		t.Errorf("warm invoke response = %+v", resp)
	}
}
