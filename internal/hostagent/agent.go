package hostagent

import (
	"context"
	"errors"
	"fmt"
	"time"

	"confbench/internal/faultplane"
	"confbench/internal/obs"
	"confbench/internal/relay"
	"confbench/internal/tee"
	"confbench/internal/vm"
	"confbench/internal/workloads"
)

// Endpoint is one VM reachable through the host's port relays.
type Endpoint struct {
	// Addr is the relayed host:port the gateway dials.
	Addr string `json:"addr"`
	// Secure reports whether the VM behind it is confidential.
	Secure bool `json:"secure"`
	// TEE is the platform kind.
	TEE tee.Kind `json:"tee"`
	// VMName labels the backing VM.
	VMName string `json:"vm"`
	// Warm marks an endpoint whose VM came out of a prewarmed guest
	// pool; the gateway prefers warm endpoints when acquiring.
	Warm bool `json:"warm,omitempty"`
}

// Agent is one TEE-enabled host: it owns the secure/normal VM pair,
// their in-VM guest agents, and the socat-style relays exposing them.
type Agent struct {
	name    string
	backend tee.Backend
	pair    vm.Pair
	guests  []*GuestServer
	relays  []*relay.Relay
	eps     []Endpoint

	// pool and warmGuest are set when the agent serves its secure VM
	// out of a prewarmed guest pool.
	pool      *GuestPool
	warmGuest tee.Guest
}

// AgentConfig assembles a host agent.
type AgentConfig struct {
	// Name labels the host.
	Name string
	// Backend is the host's TEE platform.
	Backend tee.Backend
	// Guest configures the VM pair.
	Guest tee.GuestConfig
	// Catalog backs the VMs' launchers (nil = default).
	Catalog *workloads.Registry
	// Obs is the metrics registry the guest agents report to (nil =
	// the process-wide default).
	Obs *obs.Registry
	// Faults is the fault plane threaded into the host's launch path,
	// guest agents, and relays (nil = fault-free).
	Faults *faultplane.Plane
	// WarmPool, when positive, serves the secure VM from a prewarmed
	// guest pool with this high watermark instead of a cold launch.
	WarmPool int
	// WarmLow overrides the pool's low watermark (0 = (high+1)/2).
	WarmLow int
	// Cache is the snapshot image cache backing the warm pool, usually
	// shared across the cluster's agents (nil = no caching).
	Cache *vm.SnapshotCache
	// Runtime names the snapshot flavor for the warm pool's cache key.
	Runtime string
	// Transport selects the guest agents' accepted carriers: the
	// default serves both HTTP and binary wire frames behind a
	// protocol sniffer; "httpjson" serves plain HTTP only.
	Transport string
}

// NewAgent boots a host: launches the VM pair, starts a guest agent in
// each, and wires one relay per VM.
func NewAgent(cfg AgentConfig) (*Agent, error) {
	if cfg.Backend == nil {
		return nil, fmt.Errorf("hostagent: nil backend")
	}
	if cfg.Name == "" {
		cfg.Name = string(cfg.Backend.Kind()) + "-host"
	}
	if cfg.Guest.Name == "" {
		cfg.Guest.Name = cfg.Name
	}
	if d := cfg.Faults.Evaluate(faultplane.PointHostLaunch, faultplane.Target{
		TEE: string(cfg.Backend.Kind()), Host: cfg.Name,
	}); d.Inject {
		switch d.Kind {
		case faultplane.KindLatency, faultplane.KindSlowIO:
			time.Sleep(d.Latency)
		default: // error / drop / crash: the host never comes up.
			return nil, fmt.Errorf("hostagent: %s: launch: %w", cfg.Name, d.Err)
		}
	}
	a := &Agent{name: cfg.Name, backend: cfg.Backend}
	if cfg.WarmPool > 0 {
		pool, err := NewGuestPool(GuestPoolConfig{
			Backend: cfg.Backend,
			Guest:   cfg.Guest,
			Runtime: cfg.Runtime,
			Cache:   cfg.Cache,
			Low:     cfg.WarmLow,
			High:    cfg.WarmPool,
			Obs:     cfg.Obs,
			Faults:  cfg.Faults,
			Host:    cfg.Name,
		})
		if err != nil {
			return nil, fmt.Errorf("hostagent: %s: %w", cfg.Name, err)
		}
		a.pool = pool
		pair, warmGuest, err := warmPair(pool, cfg)
		if err != nil {
			_ = pool.Shutdown(context.Background())
			return nil, fmt.Errorf("hostagent: %s: %w", cfg.Name, err)
		}
		a.pair, a.warmGuest = pair, warmGuest
	} else {
		pair, err := vm.NewPair(cfg.Backend, cfg.Guest, cfg.Catalog)
		if err != nil {
			return nil, fmt.Errorf("hostagent: %s: %w", cfg.Name, err)
		}
		a.pair = pair
	}
	for _, machine := range []*vm.VM{a.pair.Secure, a.pair.Normal} {
		gs, err := NewGuestServer(GuestServerConfig{
			VM: machine, Obs: cfg.Obs, Faults: cfg.Faults, Host: cfg.Name,
			Transport: cfg.Transport,
		})
		if err != nil {
			_ = a.Close()
			return nil, err
		}
		a.guests = append(a.guests, gs)
		rl := relay.New(gs.Addr())
		rl.SetFaults(cfg.Faults, cfg.Name, string(cfg.Backend.Kind()))
		rl.SetObs(cfg.Obs, machine.Name())
		addr, err := rl.Start("127.0.0.1:0")
		if err != nil {
			_ = gs.Close()
			_ = a.Close()
			return nil, err
		}
		a.relays = append(a.relays, rl)
		a.eps = append(a.eps, Endpoint{
			Addr:   addr,
			Secure: machine.Secure(),
			TEE:    cfg.Backend.Kind(),
			VMName: machine.Name(),
			Warm:   machine.Secure() && a.pool != nil,
		})
	}
	return a, nil
}

// warmPair assembles the secure/normal VM pair with the secure guest
// checked out of the warm pool.
func warmPair(pool *GuestPool, cfg AgentConfig) (vm.Pair, tee.Guest, error) {
	secureGuest, err := pool.Acquire()
	if err != nil {
		return vm.Pair{}, nil, fmt.Errorf("acquire warm guest: %w", err)
	}
	normalGuest, err := cfg.Backend.LaunchNormal(cfg.Guest)
	if err != nil {
		pool.Release(secureGuest)
		return vm.Pair{}, nil, fmt.Errorf("launch normal guest: %w", err)
	}
	secureVM, err := vm.New(vm.Config{
		Name: cfg.Guest.Name + "-secure", Guest: secureGuest,
		Host: cfg.Backend.HostProfile(), Catalog: cfg.Catalog,
	})
	if err != nil {
		pool.Release(secureGuest)
		_ = normalGuest.Destroy()
		return vm.Pair{}, nil, err
	}
	normalVM, err := vm.New(vm.Config{
		Name: cfg.Guest.Name + "-normal", Guest: normalGuest,
		Host: cfg.Backend.HostProfile(), Catalog: cfg.Catalog,
	})
	if err != nil {
		pool.Release(secureGuest)
		_ = normalGuest.Destroy()
		return vm.Pair{}, nil, err
	}
	return vm.Pair{Secure: secureVM, Normal: normalVM}, secureGuest, nil
}

// Name returns the host label.
func (a *Agent) Name() string { return a.name }

// Backend returns the host's TEE platform.
func (a *Agent) Backend() tee.Backend { return a.backend }

// Pair returns the secure/normal VM pair (for in-process benchmarks
// that bypass the network path).
func (a *Agent) Pair() vm.Pair { return a.pair }

// Pool returns the prewarmed guest pool, or nil when the agent was
// built without one.
func (a *Agent) Pool() *GuestPool { return a.pool }

// Endpoints lists the relayed VM endpoints.
func (a *Agent) Endpoints() []Endpoint {
	return append([]Endpoint(nil), a.eps...)
}

// Endpoint returns the relayed address of the secure or normal VM.
func (a *Agent) Endpoint(secure bool) (Endpoint, error) {
	for _, ep := range a.eps {
		if ep.Secure == secure {
			return ep, nil
		}
	}
	return Endpoint{}, fmt.Errorf("hostagent: %s has no secure=%v endpoint", a.name, secure)
}

// RelayStats sums accepted connections and forwarded bytes over the
// host's relays.
func (a *Agent) RelayStats() (accepted, bytes uint64) {
	for _, r := range a.relays {
		accepted += r.Accepted()
		bytes += r.BytesForwarded()
	}
	return accepted, bytes
}

// Close tears down relays, guest agents, and the VM pair, aggregating
// every teardown error rather than stopping at the first.
func (a *Agent) Close() error {
	var errs []error
	for _, r := range a.relays {
		errs = append(errs, r.Close())
	}
	for _, g := range a.guests {
		errs = append(errs, g.Close())
	}
	errs = append(errs, a.pair.Stop())
	if a.pool != nil {
		// The secure guest was destroyed by pair.Stop; releasing it
		// just clears the lease before the pool drains.
		a.pool.Release(a.warmGuest)
		errs = append(errs, a.pool.Shutdown(context.Background()))
	}
	return errors.Join(errs...)
}
