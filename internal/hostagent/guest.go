// Package hostagent implements ConfBench's host-side daemon: the
// TEE-enabled machine that launches the secure/normal VM pair, runs a
// guest agent inside each VM, and steers incoming gateway traffic to
// the right VM through socat-style port relays (§III-A: hosts "receive
// requests from the gateway, and, based on the query arguments (i.e.,
// destination port), they will route them to the appropriate
// destination").
package hostagent

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"

	"confbench/internal/api"
	"confbench/internal/cberr"
	"confbench/internal/faultplane"
	"confbench/internal/obs"
	"confbench/internal/vm"
	"confbench/internal/wire"
)

// GuestServer is the agent running inside one VM: a small HTTP server
// executing invoke and attest requests against the VM.
type GuestServer struct {
	vm       *vm.VM
	server   *http.Server
	listener net.Listener
	addr     string

	faults *faultplane.Plane
	host   string

	reg      *obs.Registry
	requests *obs.Counter
	errs     *obs.Counter
	latency  *obs.Histogram
}

// GuestServerConfig assembles a guest agent.
type GuestServerConfig struct {
	// VM is the machine the agent executes against (required).
	VM *vm.VM
	// Obs is the metrics registry (nil = the process-wide default).
	Obs *obs.Registry
	// Faults is the fault plane evaluated at hostagent.exec (nil =
	// fault-free).
	Faults *faultplane.Plane
	// Host labels the agent's host for fault-spec matching.
	Host string
	// Transport selects the carriers the agent accepts. The default
	// (and "binary") serves both: a protocol sniffer peeks each
	// connection's first bytes and routes wire frames to the binary
	// serving loop, everything else to the HTTP mux. "httpjson"
	// disables the sniffer and serves plain HTTP only.
	Transport string
}

// NewGuestServer starts the guest agent on a localhost ephemeral port,
// reporting its request metrics to cfg.Obs.
func NewGuestServer(cfg GuestServerConfig) (*GuestServer, error) {
	machine := cfg.VM
	if machine == nil {
		return nil, errors.New("hostagent: nil vm")
	}
	r := obs.OrDefault(cfg.Obs)
	g := &GuestServer{
		vm:       machine,
		faults:   cfg.Faults,
		host:     cfg.Host,
		reg:      r,
		requests: r.Counter("confbench_hostagent_requests_total", "vm", machine.Name()),
		errs:     r.Counter("confbench_hostagent_errors_total", "vm", machine.Name()),
		latency:  r.Histogram("confbench_hostagent_request_seconds", "vm", machine.Name()),
	}
	// The guest surface is versioned under /guest/v1 with the
	// pre-versioning spellings kept as byte-identical aliases — same
	// handlers, both mounts.
	mux := http.NewServeMux()
	health := func(w http.ResponseWriter, _ *http.Request) {
		api.WriteJSON(w, http.StatusOK, map[string]string{"status": "ok", "vm": g.vm.Name()})
	}
	mux.HandleFunc(api.GuestV1Invoke, g.handleInvoke)
	mux.HandleFunc(api.GuestPathInvoke, g.handleInvoke)
	mux.HandleFunc(api.GuestV1Attest, g.handleAttest)
	mux.HandleFunc(api.GuestPathAttest, g.handleAttest)
	mux.HandleFunc(api.GuestV1Health, health)
	mux.HandleFunc(api.GuestPathHealth, health)
	mux.HandleFunc(api.GuestV1Obs, g.handleObs)
	mux.HandleFunc(api.GuestPathObs, g.handleObs)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("hostagent: guest listen: %w", err)
	}
	g.listener = ln
	g.addr = ln.Addr().String()
	var serveLn net.Listener = ln
	if cfg.Transport != wire.TransportHTTPJSON {
		serveLn = wire.NewSniffer(ln, wire.ServerConfig{
			Handler: g.handleWire,
			Faults:  cfg.Faults,
			Target: faultplane.Target{
				TEE: string(machine.Platform()), Host: cfg.Host, VM: machine.Name(),
			},
			Obs: r,
		})
	}
	g.server = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		_ = g.server.Serve(serveLn) // returns ErrServerClosed on shutdown
	}()
	return g, nil
}

// Addr returns the guest agent's listen address.
func (g *GuestServer) Addr() string { return g.addr }

// handleObs serves the host process's metrics registry so the
// gateway's federation scraper can pull it over the relay hop:
// Prometheus text by default, the JSON snapshot via ?format=json.
// Deliberately not counted in the request metrics — scraping must not
// move what it measures.
func (g *GuestServer) handleObs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		api.WriteError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	if r.URL.Query().Get("format") == "json" {
		api.WriteJSON(w, http.StatusOK, g.reg.Snapshot())
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = g.reg.WritePrometheus(w)
}

// VM returns the wrapped VM.
func (g *GuestServer) VM() *vm.VM { return g.vm }

// execInvoke runs one guest invocation — metrics, fault injection,
// tracing, VM execution — independent of the carrier. A crash/drop
// fault returns wire.ErrSever: the HTTP handler converts it to an
// aborted connection, the wire serving loop to a severed one, so a
// dying guest looks identical under both transports.
func (g *GuestServer) execInvoke(ctx context.Context, req *api.GuestInvokeRequest) (api.InvokeResponse, error) {
	g.requests.Inc()
	start := time.Now()
	// When the caller wants a trace, this side of the network hop
	// starts its own root (the gateway's clock is not ours); the tree
	// rides back in the response for the gateway to graft.
	var root *obs.Span
	if req.Trace {
		ctx, root = obs.NewRoot(ctx, "hostagent", "invoke "+g.vm.Name())
	}
	if d := g.faults.Evaluate(faultplane.PointHostExec, faultplane.Target{
		TEE: string(g.vm.Platform()), Host: g.host, VM: g.vm.Name(),
	}); d.Inject {
		if root != nil {
			root.SetAttr("faultplane", string(d.Kind))
		}
		switch d.Kind {
		case faultplane.KindLatency, faultplane.KindSlowIO:
			time.Sleep(d.Latency)
		case faultplane.KindError:
			g.errs.Inc()
			if root != nil {
				root.End()
			}
			return api.InvokeResponse{}, d.Err
		default: // crash / drop: the agent dies mid-request — the
			// gateway sees a severed connection, not an error reply.
			g.errs.Inc()
			return api.InvokeResponse{}, wire.ErrSever
		}
	}
	res, err := g.vm.InvokeFunction(ctx, req.Function, req.Scale)
	g.latency.Observe(time.Since(start))
	if err != nil {
		g.errs.Inc()
		return api.InvokeResponse{}, cberr.From(err, cberr.LayerHost)
	}
	resp := api.InvokeResponse{
		Output:      res.Output,
		WallNs:      res.Wall.Nanoseconds(),
		BootstrapNs: res.Bootstrap.Nanoseconds(),
		Perf:        res.Perf,
		Secure:      res.Secure,
		Platform:    res.Platform,
		VM:          g.vm.Name(),
	}
	if root != nil {
		root.End()
		resp.Trace = root.Data()
	}
	return resp, nil
}

// execAttest runs one attestation round trip, carrier-independent.
func (g *GuestServer) execAttest(ctx context.Context, req *api.AttestRequest) (api.AttestResponse, error) {
	start := time.Now()
	evidence, err := g.vm.AttestationReport(ctx, req.Nonce)
	if err != nil {
		return api.AttestResponse{}, cberr.From(err, cberr.LayerHost)
	}
	return api.AttestResponse{
		Evidence: evidence,
		AttestNs: time.Since(start).Nanoseconds(),
	}, nil
}

func (g *GuestServer) handleInvoke(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		api.WriteError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	var req api.GuestInvokeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		g.errs.Inc()
		api.WriteError(w, http.StatusBadRequest,
			cberr.Wrap(cberr.CodeInvalid, cberr.LayerHost, fmt.Errorf("decode request: %w", err)))
		return
	}
	resp, err := g.execInvoke(r.Context(), &req)
	if err != nil {
		if errors.Is(err, wire.ErrSever) {
			panic(http.ErrAbortHandler)
		}
		api.WriteError(w, cberr.HTTPStatus(err), err)
		return
	}
	api.WriteJSON(w, http.StatusOK, resp)
}

func (g *GuestServer) handleAttest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		api.WriteError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	var req api.AttestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		api.WriteError(w, http.StatusBadRequest,
			cberr.Wrap(cberr.CodeInvalid, cberr.LayerHost, fmt.Errorf("decode request: %w", err)))
		return
	}
	resp, err := g.execAttest(r.Context(), &req)
	if err != nil {
		api.WriteError(w, cberr.HTTPStatus(err), err)
		return
	}
	api.WriteJSON(w, http.StatusOK, resp)
}

// handleWire serves the binary protocol against the same execution
// paths the HTTP handlers use. Request payloads arrive pooled and are
// decoded (copied) before any execution; responses are built into
// pooled buffers owned by the serving loop.
func (g *GuestServer) handleWire(ctx context.Context, t wire.Type, payload []byte) (wire.Type, []byte, error) {
	switch t {
	case wire.TInvokeReq:
		req, err := wire.DecodeGuestInvoke(payload)
		if err != nil {
			g.errs.Inc()
			return 0, nil, cberr.Wrap(cberr.CodeInvalid, cberr.LayerHost,
				fmt.Errorf("decode request: %w", err))
		}
		resp, err := g.execInvoke(ctx, &req)
		if err != nil {
			return 0, nil, err
		}
		out, err := wire.AppendInvokeResponse(wire.GetBuf(0), &resp)
		if err != nil {
			return 0, nil, cberr.Wrap(cberr.CodeInternal, cberr.LayerHost, err)
		}
		return wire.TInvokeResp, out, nil
	case wire.TAttestReq:
		_, req, err := wire.DecodeAttest(payload)
		if err != nil {
			return 0, nil, cberr.Wrap(cberr.CodeInvalid, cberr.LayerHost,
				fmt.Errorf("decode request: %w", err))
		}
		resp, err := g.execAttest(ctx, &req)
		if err != nil {
			return 0, nil, err
		}
		return wire.TAttestResp, wire.AppendAttestResp(wire.GetBuf(0), &resp), nil
	case wire.THealthReq:
		return wire.THealthResp, wire.AppendHealthResp(wire.GetBuf(0), g.vm.Name()), nil
	case wire.TObsReq:
		blob, err := json.Marshal(g.reg.Snapshot())
		if err != nil {
			return 0, nil, cberr.Wrap(cberr.CodeInternal, cberr.LayerHost, err)
		}
		return wire.TObsResp, append(wire.GetBuf(0), blob...), nil
	default:
		return 0, nil, cberr.Newf(cberr.CodeInvalid, cberr.LayerHost,
			"hostagent: unexpected frame type %s", t)
	}
}

// Close shuts the guest agent down (the VM itself is owned by the
// host agent).
func (g *GuestServer) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return g.server.Shutdown(ctx)
}
