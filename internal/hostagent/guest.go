// Package hostagent implements ConfBench's host-side daemon: the
// TEE-enabled machine that launches the secure/normal VM pair, runs a
// guest agent inside each VM, and steers incoming gateway traffic to
// the right VM through socat-style port relays (§III-A: hosts "receive
// requests from the gateway, and, based on the query arguments (i.e.,
// destination port), they will route them to the appropriate
// destination").
package hostagent

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"

	"confbench/internal/api"
	"confbench/internal/cberr"
	"confbench/internal/faultplane"
	"confbench/internal/obs"
	"confbench/internal/vm"
)

// GuestServer is the agent running inside one VM: a small HTTP server
// executing invoke and attest requests against the VM.
type GuestServer struct {
	vm       *vm.VM
	server   *http.Server
	listener net.Listener
	addr     string

	faults *faultplane.Plane
	host   string

	reg      *obs.Registry
	requests *obs.Counter
	errs     *obs.Counter
	latency  *obs.Histogram
}

// GuestServerConfig assembles a guest agent.
type GuestServerConfig struct {
	// VM is the machine the agent executes against (required).
	VM *vm.VM
	// Obs is the metrics registry (nil = the process-wide default).
	Obs *obs.Registry
	// Faults is the fault plane evaluated at hostagent.exec (nil =
	// fault-free).
	Faults *faultplane.Plane
	// Host labels the agent's host for fault-spec matching.
	Host string
}

// NewGuestServer starts the guest agent on a localhost ephemeral port,
// reporting its request metrics to cfg.Obs.
func NewGuestServer(cfg GuestServerConfig) (*GuestServer, error) {
	machine := cfg.VM
	if machine == nil {
		return nil, errors.New("hostagent: nil vm")
	}
	r := obs.OrDefault(cfg.Obs)
	g := &GuestServer{
		vm:       machine,
		faults:   cfg.Faults,
		host:     cfg.Host,
		reg:      r,
		requests: r.Counter("confbench_hostagent_requests_total", "vm", machine.Name()),
		errs:     r.Counter("confbench_hostagent_errors_total", "vm", machine.Name()),
		latency:  r.Histogram("confbench_hostagent_request_seconds", "vm", machine.Name()),
	}
	mux := http.NewServeMux()
	mux.HandleFunc(api.GuestPathInvoke, g.handleInvoke)
	mux.HandleFunc(api.GuestPathAttest, g.handleAttest)
	mux.HandleFunc(api.GuestPathHealth, func(w http.ResponseWriter, _ *http.Request) {
		api.WriteJSON(w, http.StatusOK, map[string]string{"status": "ok", "vm": g.vm.Name()})
	})
	mux.HandleFunc(api.GuestPathObs, g.handleObs)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("hostagent: guest listen: %w", err)
	}
	g.listener = ln
	g.addr = ln.Addr().String()
	g.server = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		_ = g.server.Serve(ln) // returns ErrServerClosed on shutdown
	}()
	return g, nil
}

// Addr returns the guest agent's listen address.
func (g *GuestServer) Addr() string { return g.addr }

// handleObs serves the host process's metrics registry so the
// gateway's federation scraper can pull it over the relay hop:
// Prometheus text by default, the JSON snapshot via ?format=json.
// Deliberately not counted in the request metrics — scraping must not
// move what it measures.
func (g *GuestServer) handleObs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		api.WriteError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	if r.URL.Query().Get("format") == "json" {
		api.WriteJSON(w, http.StatusOK, g.reg.Snapshot())
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = g.reg.WritePrometheus(w)
}

// VM returns the wrapped VM.
func (g *GuestServer) VM() *vm.VM { return g.vm }

func (g *GuestServer) handleInvoke(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		api.WriteError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	var req api.GuestInvokeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		g.errs.Inc()
		api.WriteError(w, http.StatusBadRequest,
			cberr.Wrap(cberr.CodeInvalid, cberr.LayerHost, fmt.Errorf("decode request: %w", err)))
		return
	}
	g.requests.Inc()
	start := time.Now()
	// When the caller wants a trace, this side of the network hop
	// starts its own root (the gateway's clock is not ours); the tree
	// rides back in the response for the gateway to graft.
	ctx := r.Context()
	var root *obs.Span
	if req.Trace {
		ctx, root = obs.NewRoot(ctx, "hostagent", "invoke "+g.vm.Name())
	}
	if d := g.faults.Evaluate(faultplane.PointHostExec, faultplane.Target{
		TEE: string(g.vm.Platform()), Host: g.host, VM: g.vm.Name(),
	}); d.Inject {
		if root != nil {
			root.SetAttr("faultplane", string(d.Kind))
		}
		switch d.Kind {
		case faultplane.KindLatency, faultplane.KindSlowIO:
			time.Sleep(d.Latency)
		case faultplane.KindError:
			g.errs.Inc()
			if root != nil {
				root.End()
			}
			api.WriteError(w, cberr.HTTPStatus(d.Err), d.Err)
			return
		default: // crash / drop: the agent dies mid-request — the
			// gateway sees a severed connection, not an HTTP error.
			g.errs.Inc()
			panic(http.ErrAbortHandler)
		}
	}
	res, err := g.vm.InvokeFunction(ctx, req.Function, req.Scale)
	g.latency.Observe(time.Since(start))
	if err != nil {
		g.errs.Inc()
		err = cberr.From(err, cberr.LayerHost)
		api.WriteError(w, cberr.HTTPStatus(err), err)
		return
	}
	resp := api.InvokeResponse{
		Output:      res.Output,
		WallNs:      res.Wall.Nanoseconds(),
		BootstrapNs: res.Bootstrap.Nanoseconds(),
		Perf:        res.Perf,
		Secure:      res.Secure,
		Platform:    res.Platform,
		VM:          g.vm.Name(),
	}
	if root != nil {
		root.End()
		resp.Trace = root.Data()
	}
	api.WriteJSON(w, http.StatusOK, resp)
}

func (g *GuestServer) handleAttest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		api.WriteError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	var req api.AttestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		api.WriteError(w, http.StatusBadRequest,
			cberr.Wrap(cberr.CodeInvalid, cberr.LayerHost, fmt.Errorf("decode request: %w", err)))
		return
	}
	start := time.Now()
	evidence, err := g.vm.AttestationReport(r.Context(), req.Nonce)
	if err != nil {
		err = cberr.From(err, cberr.LayerHost)
		api.WriteError(w, cberr.HTTPStatus(err), err)
		return
	}
	api.WriteJSON(w, http.StatusOK, api.AttestResponse{
		Evidence: evidence,
		AttestNs: time.Since(start).Nanoseconds(),
	})
}

// Close shuts the guest agent down (the VM itself is owned by the
// host agent).
func (g *GuestServer) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return g.server.Shutdown(ctx)
}
