package mlinfer

import (
	"fmt"
	"math"

	"confbench/internal/meter"
)

// Layer transforms a tensor, metering its arithmetic.
type Layer interface {
	// Name identifies the layer in model listings.
	Name() string
	// Forward applies the layer.
	Forward(m *meter.Context, in Tensor) (Tensor, error)
	// MACs estimates multiply-accumulates for an input shape.
	MACs(h, w, c int) int64
	// OutShape predicts the output shape.
	OutShape(h, w, c int) (int, int, int)
}

// Conv2D is a standard convolution with same-padding.
type Conv2D struct {
	name    string
	kernel  int
	stride  int
	inCh    int
	outCh   int
	weights []float32 // [k][k][inCh][outCh]
	bias    []float32
}

var _ Layer = (*Conv2D)(nil)

// NewConv2D builds a k×k convolution with stride s and random
// deterministic weights drawn from r.
func NewConv2D(name string, kernel, stride, inCh, outCh int, r *rng) *Conv2D {
	c := &Conv2D{
		name:    name,
		kernel:  kernel,
		stride:  stride,
		inCh:    inCh,
		outCh:   outCh,
		weights: make([]float32, kernel*kernel*inCh*outCh),
		bias:    make([]float32, outCh),
	}
	fillWeights(c.weights, kernel*kernel*inCh, r)
	fillWeights(c.bias, 4, r)
	return c
}

// Name implements Layer.
func (c *Conv2D) Name() string { return c.name }

// OutShape implements Layer.
func (c *Conv2D) OutShape(h, w, _ int) (int, int, int) {
	return (h + c.stride - 1) / c.stride, (w + c.stride - 1) / c.stride, c.outCh
}

// MACs implements Layer.
func (c *Conv2D) MACs(h, w, _ int) int64 {
	oh, ow, _ := c.OutShape(h, w, 0)
	return int64(oh) * int64(ow) * int64(c.kernel*c.kernel) * int64(c.inCh) * int64(c.outCh)
}

// Forward implements Layer.
func (c *Conv2D) Forward(m *meter.Context, in Tensor) (Tensor, error) {
	if in.C != c.inCh {
		return Tensor{}, fmt.Errorf("mlinfer: %s: input channels %d, want %d", c.name, in.C, c.inCh)
	}
	oh, ow, oc := c.OutShape(in.H, in.W, in.C)
	out := NewTensor(oh, ow, oc)
	pad := c.kernel / 2
	k, ic := c.kernel, c.inCh
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			for ky := 0; ky < k; ky++ {
				iy := oy*c.stride + ky - pad
				if iy < 0 || iy >= in.H {
					continue
				}
				for kx := 0; kx < k; kx++ {
					ix := ox*c.stride + kx - pad
					if ix < 0 || ix >= in.W {
						continue
					}
					inBase := (iy*in.W + ix) * ic
					wBase := ((ky*k + kx) * ic) * oc
					outBase := (oy*ow + ox) * oc
					for ci := 0; ci < ic; ci++ {
						v := in.Data[inBase+ci]
						wRow := wBase + ci*oc
						for co := 0; co < oc; co++ {
							out.Data[outBase+co] += v * c.weights[wRow+co]
						}
					}
				}
			}
			outBase := (oy*ow + ox) * oc
			for co := 0; co < oc; co++ {
				out.Data[outBase+co] += c.bias[co]
			}
		}
	}
	macs := c.MACs(in.H, in.W, in.C)
	m.FP(macs * 2)
	m.Touch(macs * 4)
	m.Alloc(out.Bytes())
	return out, nil
}

// DepthwiseConv2D applies one k×k filter per channel (MobileNet's
// separable building block).
type DepthwiseConv2D struct {
	name    string
	kernel  int
	stride  int
	ch      int
	weights []float32 // [k][k][ch]
	bias    []float32
}

var _ Layer = (*DepthwiseConv2D)(nil)

// NewDepthwiseConv2D builds a depthwise convolution.
func NewDepthwiseConv2D(name string, kernel, stride, ch int, r *rng) *DepthwiseConv2D {
	d := &DepthwiseConv2D{
		name:    name,
		kernel:  kernel,
		stride:  stride,
		ch:      ch,
		weights: make([]float32, kernel*kernel*ch),
		bias:    make([]float32, ch),
	}
	fillWeights(d.weights, kernel*kernel, r)
	fillWeights(d.bias, 4, r)
	return d
}

// Name implements Layer.
func (d *DepthwiseConv2D) Name() string { return d.name }

// OutShape implements Layer.
func (d *DepthwiseConv2D) OutShape(h, w, _ int) (int, int, int) {
	return (h + d.stride - 1) / d.stride, (w + d.stride - 1) / d.stride, d.ch
}

// MACs implements Layer.
func (d *DepthwiseConv2D) MACs(h, w, _ int) int64 {
	oh, ow, _ := d.OutShape(h, w, 0)
	return int64(oh) * int64(ow) * int64(d.kernel*d.kernel) * int64(d.ch)
}

// Forward implements Layer.
func (d *DepthwiseConv2D) Forward(m *meter.Context, in Tensor) (Tensor, error) {
	if in.C != d.ch {
		return Tensor{}, fmt.Errorf("mlinfer: %s: input channels %d, want %d", d.name, in.C, d.ch)
	}
	oh, ow, oc := d.OutShape(in.H, in.W, in.C)
	out := NewTensor(oh, ow, oc)
	pad := d.kernel / 2
	k := d.kernel
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			outBase := (oy*ow + ox) * oc
			for ky := 0; ky < k; ky++ {
				iy := oy*d.stride + ky - pad
				if iy < 0 || iy >= in.H {
					continue
				}
				for kx := 0; kx < k; kx++ {
					ix := ox*d.stride + kx - pad
					if ix < 0 || ix >= in.W {
						continue
					}
					inBase := (iy*in.W + ix) * oc
					wBase := (ky*k + kx) * oc
					for ch := 0; ch < oc; ch++ {
						out.Data[outBase+ch] += in.Data[inBase+ch] * d.weights[wBase+ch]
					}
				}
			}
			for ch := 0; ch < oc; ch++ {
				out.Data[outBase+ch] += d.bias[ch]
			}
		}
	}
	macs := d.MACs(in.H, in.W, in.C)
	m.FP(macs * 2)
	m.Touch(macs * 4)
	m.Alloc(out.Bytes())
	return out, nil
}

// ReLU6 clamps activations to [0, 6] in place.
type ReLU6 struct{ name string }

var _ Layer = (*ReLU6)(nil)

// NewReLU6 builds the activation layer.
func NewReLU6(name string) *ReLU6 { return &ReLU6{name: name} }

// Name implements Layer.
func (r *ReLU6) Name() string { return r.name }

// OutShape implements Layer.
func (r *ReLU6) OutShape(h, w, c int) (int, int, int) { return h, w, c }

// MACs implements Layer.
func (r *ReLU6) MACs(h, w, c int) int64 { return int64(h) * int64(w) * int64(c) }

// Forward implements Layer.
func (r *ReLU6) Forward(m *meter.Context, in Tensor) (Tensor, error) {
	for i, v := range in.Data {
		if v < 0 {
			in.Data[i] = 0
		} else if v > 6 {
			in.Data[i] = 6
		}
	}
	m.FP(int64(in.Len()))
	m.Touch(int64(in.Len()) * 4)
	return in, nil
}

// GlobalAvgPool reduces H×W×C to 1×1×C.
type GlobalAvgPool struct{ name string }

var _ Layer = (*GlobalAvgPool)(nil)

// NewGlobalAvgPool builds the pooling layer.
func NewGlobalAvgPool(name string) *GlobalAvgPool { return &GlobalAvgPool{name: name} }

// Name implements Layer.
func (g *GlobalAvgPool) Name() string { return g.name }

// OutShape implements Layer.
func (g *GlobalAvgPool) OutShape(_, _, c int) (int, int, int) { return 1, 1, c }

// MACs implements Layer.
func (g *GlobalAvgPool) MACs(h, w, c int) int64 { return int64(h) * int64(w) * int64(c) }

// Forward implements Layer.
func (g *GlobalAvgPool) Forward(m *meter.Context, in Tensor) (Tensor, error) {
	out := NewTensor(1, 1, in.C)
	n := float32(in.H * in.W)
	for y := 0; y < in.H; y++ {
		for x := 0; x < in.W; x++ {
			base := (y*in.W + x) * in.C
			for c := 0; c < in.C; c++ {
				out.Data[c] += in.Data[base+c]
			}
		}
	}
	for c := 0; c < in.C; c++ {
		out.Data[c] /= n
	}
	m.FP(int64(in.Len()) + int64(in.C))
	m.Touch(int64(in.Len()) * 4)
	m.Alloc(out.Bytes())
	return out, nil
}

// Dense is a fully connected layer over a 1×1×C input.
type Dense struct {
	name    string
	in, out int
	weights []float32 // [in][out]
	bias    []float32
}

var _ Layer = (*Dense)(nil)

// NewDense builds a fully connected layer.
func NewDense(name string, in, out int, r *rng) *Dense {
	d := &Dense{
		name:    name,
		in:      in,
		out:     out,
		weights: make([]float32, in*out),
		bias:    make([]float32, out),
	}
	fillWeights(d.weights, in, r)
	fillWeights(d.bias, 4, r)
	return d
}

// Name implements Layer.
func (d *Dense) Name() string { return d.name }

// OutShape implements Layer.
func (d *Dense) OutShape(_, _, _ int) (int, int, int) { return 1, 1, d.out }

// MACs implements Layer.
func (d *Dense) MACs(_, _, _ int) int64 { return int64(d.in) * int64(d.out) }

// Forward implements Layer.
func (d *Dense) Forward(m *meter.Context, in Tensor) (Tensor, error) {
	if in.Len() != d.in {
		return Tensor{}, fmt.Errorf("mlinfer: %s: input size %d, want %d", d.name, in.Len(), d.in)
	}
	out := NewTensor(1, 1, d.out)
	for i := 0; i < d.in; i++ {
		v := in.Data[i]
		row := i * d.out
		for j := 0; j < d.out; j++ {
			out.Data[j] += v * d.weights[row+j]
		}
	}
	for j := 0; j < d.out; j++ {
		out.Data[j] += d.bias[j]
	}
	macs := d.MACs(0, 0, 0)
	m.FP(macs * 2)
	m.Touch(macs * 4)
	m.Alloc(out.Bytes())
	return out, nil
}

// Softmax normalizes a 1×1×C vector into a probability distribution.
type Softmax struct{ name string }

var _ Layer = (*Softmax)(nil)

// NewSoftmax builds the softmax head.
func NewSoftmax(name string) *Softmax { return &Softmax{name: name} }

// Name implements Layer.
func (s *Softmax) Name() string { return s.name }

// OutShape implements Layer.
func (s *Softmax) OutShape(h, w, c int) (int, int, int) { return h, w, c }

// MACs implements Layer.
func (s *Softmax) MACs(h, w, c int) int64 { return int64(h) * int64(w) * int64(c) * 4 }

// Forward implements Layer.
func (s *Softmax) Forward(m *meter.Context, in Tensor) (Tensor, error) {
	maxV := in.Data[0]
	for _, v := range in.Data {
		if v > maxV {
			maxV = v
		}
	}
	var sum float64
	for i, v := range in.Data {
		e := math.Exp(float64(v - maxV))
		in.Data[i] = float32(e)
		sum += e
	}
	if sum == 0 {
		return Tensor{}, fmt.Errorf("mlinfer: %s: degenerate logits", s.name)
	}
	for i := range in.Data {
		in.Data[i] = float32(float64(in.Data[i]) / sum)
	}
	m.FP(int64(in.Len()) * 8)
	return in, nil
}
