package mlinfer

import (
	"fmt"
	"sort"

	"confbench/internal/meter"
)

// Model is a sequential network.
type Model struct {
	Name   string
	InputH int
	InputW int
	InputC int
	Layers []Layer
	Labels []string
}

// Forward runs the network over an input tensor.
func (mo *Model) Forward(m *meter.Context, in Tensor) (Tensor, error) {
	if in.H != mo.InputH || in.W != mo.InputW || in.C != mo.InputC {
		return Tensor{}, fmt.Errorf("mlinfer: model %s expects %dx%dx%d input, got %s",
			mo.Name, mo.InputH, mo.InputW, mo.InputC, in.ShapeString())
	}
	t := in
	for _, l := range mo.Layers {
		var err error
		t, err = l.Forward(m, t)
		if err != nil {
			return Tensor{}, fmt.Errorf("mlinfer: layer %s: %w", l.Name(), err)
		}
	}
	return t, nil
}

// TotalMACs estimates the network's multiply-accumulate count.
func (mo *Model) TotalMACs() int64 {
	h, w, c := mo.InputH, mo.InputW, mo.InputC
	var total int64
	for _, l := range mo.Layers {
		total += l.MACs(h, w, c)
		h, w, c = l.OutShape(h, w, c)
	}
	return total
}

// Prediction is one classification outcome.
type Prediction struct {
	Label      string  `json:"label"`
	Index      int     `json:"index"`
	Confidence float32 `json:"confidence"`
}

// Classify runs the model on an image and returns the top-k classes.
func (mo *Model) Classify(m *meter.Context, img Tensor, k int) ([]Prediction, error) {
	probs, err := mo.Forward(m, img)
	if err != nil {
		return nil, err
	}
	type scored struct {
		idx int
		p   float32
	}
	all := make([]scored, probs.Len())
	for i, p := range probs.Data {
		all[i] = scored{idx: i, p: p}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].p > all[j].p })
	if k > len(all) {
		k = len(all)
	}
	out := make([]Prediction, k)
	for i := 0; i < k; i++ {
		label := fmt.Sprintf("class-%d", all[i].idx)
		if all[i].idx < len(mo.Labels) {
			label = mo.Labels[all[i].idx]
		}
		out[i] = Prediction{Label: label, Index: all[i].idx, Confidence: all[i].p}
	}
	return out, nil
}

// MobileNetConfig parameterizes the MobileNetV1-style builder.
type MobileNetConfig struct {
	// InputSize is the square input resolution (paper-class MobileNet
	// uses 224; the default here is 96 to keep CI runs quick while
	// preserving the architecture).
	InputSize int
	// Alpha is the width multiplier (0 < alpha ≤ 1).
	Alpha float64
	// Classes is the classifier width (ImageNet uses 1000).
	Classes int
	// Seed drives deterministic weight initialization.
	Seed uint64
}

func (c MobileNetConfig) withDefaults() MobileNetConfig {
	if c.InputSize <= 0 {
		c.InputSize = 96
	}
	if c.Alpha <= 0 {
		c.Alpha = 0.25
	}
	if c.Classes <= 0 {
		c.Classes = 1000
	}
	if c.Seed == 0 {
		c.Seed = 0x5eed0de1
	}
	return c
}

// depthwiseBlock describes one separable block: a depthwise conv
// followed by a 1×1 pointwise conv.
type depthwiseBlock struct {
	stride int
	outCh  int
}

// NewMobileNet builds a MobileNetV1-style network: a strided 3×3 stem
// followed by 13 depthwise-separable blocks, global average pooling,
// and a dense softmax classifier — the same topology as the paper's
// MobileNet, width-scaled by Alpha.
func NewMobileNet(cfg MobileNetConfig) (*Model, error) {
	cfg = cfg.withDefaults()
	scale := func(ch int) int {
		v := int(float64(ch) * cfg.Alpha)
		if v < 4 {
			v = 4
		}
		return v
	}
	r := newRNG(cfg.Seed)
	blocks := []depthwiseBlock{
		{1, 64}, {2, 128}, {1, 128}, {2, 256}, {1, 256},
		{2, 512}, {1, 512}, {1, 512}, {1, 512}, {1, 512}, {1, 512},
		{2, 1024}, {1, 1024},
	}

	model := &Model{
		Name:   fmt.Sprintf("mobilenet-v1-%.2f-%d", cfg.Alpha, cfg.InputSize),
		InputH: cfg.InputSize,
		InputW: cfg.InputSize,
		InputC: 3,
	}
	ch := scale(32)
	model.Layers = append(model.Layers,
		NewConv2D("stem", 3, 2, 3, ch, r),
		NewReLU6("stem/relu6"),
	)
	for i, b := range blocks {
		out := scale(b.outCh)
		model.Layers = append(model.Layers,
			NewDepthwiseConv2D(fmt.Sprintf("block%d/dw", i+1), 3, b.stride, ch, r),
			NewReLU6(fmt.Sprintf("block%d/dw-relu", i+1)),
			NewConv2D(fmt.Sprintf("block%d/pw", i+1), 1, 1, ch, out, r),
			NewReLU6(fmt.Sprintf("block%d/pw-relu", i+1)),
		)
		ch = out
	}
	model.Layers = append(model.Layers,
		NewGlobalAvgPool("avgpool"),
		NewDense("classifier", ch, cfg.Classes, r),
		NewSoftmax("softmax"),
	)
	model.Labels = make([]string, cfg.Classes)
	for i := range model.Labels {
		model.Labels[i] = fmt.Sprintf("imagenet-%04d", i)
	}
	return model, nil
}

// ImageBytes is the raw size of one dataset image (~1 MB, matching the
// paper's 40 diversified 1-MB images).
const ImageBytes = 592 * 592 * 3

// GenerateImage synthesizes image idx of the dataset: a 592×592 RGB
// (≈1 MB) gradient-plus-texture pattern, deterministic per index.
func GenerateImage(idx int) []byte {
	const side = 592
	img := make([]byte, ImageBytes)
	r := newRNG(uint64(idx)*0x9E3779B9 + 12345)
	// Low-frequency gradient + per-image pseudo-random texture keeps
	// the 40 images "diversified" while deterministic.
	phase := byte(r.next())
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			base := (y*side + x) * 3
			img[base] = byte(x*255/side) + phase
			img[base+1] = byte(y*255/side) ^ phase
			img[base+2] = byte((x*y)>>6) + byte(r.next()&0x0f)
		}
	}
	return img
}

// DecodeAndResize converts a raw 592×592 RGB image into a normalized
// float tensor of the target size using bilinear interpolation —
// ConfBench's stand-in for the JPEG decode + resize preprocessing of
// the TFLite label_image demo.
func DecodeAndResize(m *meter.Context, raw []byte, size int) (Tensor, error) {
	const side = 592
	if len(raw) != ImageBytes {
		return Tensor{}, fmt.Errorf("mlinfer: raw image is %d bytes, want %d", len(raw), ImageBytes)
	}
	out := NewTensor(size, size, 3)
	fscale := float32(side-1) / float32(size-1)
	for y := 0; y < size; y++ {
		sy := float32(y) * fscale
		y0 := int(sy)
		fy := sy - float32(y0)
		y1 := y0 + 1
		if y1 >= side {
			y1 = side - 1
		}
		for x := 0; x < size; x++ {
			sx := float32(x) * fscale
			x0 := int(sx)
			fx := sx - float32(x0)
			x1 := x0 + 1
			if x1 >= side {
				x1 = side - 1
			}
			for c := 0; c < 3; c++ {
				v00 := float32(raw[(y0*side+x0)*3+c])
				v01 := float32(raw[(y0*side+x1)*3+c])
				v10 := float32(raw[(y1*side+x0)*3+c])
				v11 := float32(raw[(y1*side+x1)*3+c])
				top := v00 + (v01-v00)*fx
				bot := v10 + (v11-v10)*fx
				out.Set(y, x, c, (top+(bot-top)*fy)/127.5-1)
			}
		}
	}
	m.Touch(int64(len(raw)))
	m.FP(int64(size) * int64(size) * 3 * 10)
	m.Alloc(out.Bytes())
	return out, nil
}

// Dataset generates the n-image dataset (the paper uses 40).
func Dataset(n int) [][]byte {
	imgs := make([][]byte, n)
	for i := range imgs {
		imgs[i] = GenerateImage(i)
	}
	return imgs
}
