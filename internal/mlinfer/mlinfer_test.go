package mlinfer

import (
	"math"
	"testing"

	"confbench/internal/meter"
)

func smallModel(t *testing.T) *Model {
	t.Helper()
	m, err := NewMobileNet(MobileNetConfig{InputSize: 32, Alpha: 0.25, Classes: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTensorAccessors(t *testing.T) {
	tn := NewTensor(2, 3, 4)
	if tn.Len() != 24 || tn.Bytes() != 96 {
		t.Errorf("len/bytes = %d/%d", tn.Len(), tn.Bytes())
	}
	tn.Set(1, 2, 3, 42)
	if tn.At(1, 2, 3) != 42 {
		t.Error("Set/At mismatch")
	}
	if tn.ShapeString() != "2x3x4" {
		t.Errorf("shape = %s", tn.ShapeString())
	}
}

func TestConv2DShapes(t *testing.T) {
	r := newRNG(1)
	conv := NewConv2D("c", 3, 2, 3, 8, r)
	h, w, c := conv.OutShape(32, 32, 3)
	if h != 16 || w != 16 || c != 8 {
		t.Errorf("out shape = %dx%dx%d", h, w, c)
	}
	in := NewTensor(32, 32, 3)
	out, err := conv.Forward(meter.NewContext(), in)
	if err != nil {
		t.Fatal(err)
	}
	if out.H != 16 || out.W != 16 || out.C != 8 {
		t.Errorf("forward shape = %s", out.ShapeString())
	}
}

func TestConv2DRejectsWrongChannels(t *testing.T) {
	r := newRNG(1)
	conv := NewConv2D("c", 3, 1, 3, 8, r)
	if _, err := conv.Forward(meter.NewContext(), NewTensor(8, 8, 5)); err == nil {
		t.Error("wrong channel count accepted")
	}
	dw := NewDepthwiseConv2D("d", 3, 1, 4, r)
	if _, err := dw.Forward(meter.NewContext(), NewTensor(8, 8, 5)); err == nil {
		t.Error("depthwise wrong channels accepted")
	}
}

func TestConv2DIdentityKernel(t *testing.T) {
	// A 1×1 conv with identity weights must reproduce its input.
	conv := &Conv2D{
		name: "id", kernel: 1, stride: 1, inCh: 2, outCh: 2,
		weights: []float32{1, 0, 0, 1}, // [1][1][in=2][out=2]
		bias:    []float32{0, 0},
	}
	in := NewTensor(2, 2, 2)
	for i := range in.Data {
		in.Data[i] = float32(i) + 1
	}
	out, err := conv.Forward(meter.NewContext(), in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in.Data {
		if math.Abs(float64(out.Data[i]-in.Data[i])) > 1e-6 {
			t.Fatalf("identity conv changed data at %d: %v vs %v", i, out.Data[i], in.Data[i])
		}
	}
}

func TestReLU6Clamps(t *testing.T) {
	relu := NewReLU6("r")
	in := NewTensor(1, 1, 3)
	in.Data[0], in.Data[1], in.Data[2] = -5, 3, 100
	out, err := relu.Forward(meter.NewContext(), in)
	if err != nil {
		t.Fatal(err)
	}
	if out.Data[0] != 0 || out.Data[1] != 3 || out.Data[2] != 6 {
		t.Errorf("relu6 = %v", out.Data)
	}
}

func TestGlobalAvgPool(t *testing.T) {
	pool := NewGlobalAvgPool("p")
	in := NewTensor(2, 2, 1)
	in.Data = []float32{1, 2, 3, 4}
	out, err := pool.Forward(meter.NewContext(), in)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || out.Data[0] != 2.5 {
		t.Errorf("avgpool = %v", out.Data)
	}
}

func TestDense(t *testing.T) {
	d := &Dense{
		name: "fc", in: 2, out: 2,
		weights: []float32{1, 2, 3, 4}, // row-major [in][out]
		bias:    []float32{10, 20},
	}
	in := NewTensor(1, 1, 2)
	in.Data = []float32{1, 1}
	out, err := d.Forward(meter.NewContext(), in)
	if err != nil {
		t.Fatal(err)
	}
	if out.Data[0] != 14 || out.Data[1] != 26 {
		t.Errorf("dense = %v", out.Data)
	}
	if _, err := d.Forward(meter.NewContext(), NewTensor(1, 1, 3)); err == nil {
		t.Error("wrong input size accepted")
	}
}

func TestSoftmaxNormalizes(t *testing.T) {
	s := NewSoftmax("s")
	in := NewTensor(1, 1, 4)
	in.Data = []float32{1, 2, 3, 4}
	out, err := s.Forward(meter.NewContext(), in)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for i := 1; i < len(out.Data); i++ {
		if out.Data[i-1] >= out.Data[i] {
			t.Error("softmax not monotone in logits")
		}
	}
	for _, p := range out.Data {
		if p < 0 || p > 1 {
			t.Errorf("probability %v out of range", p)
		}
		sum += float64(p)
	}
	if math.Abs(sum-1) > 1e-5 {
		t.Errorf("probabilities sum to %v", sum)
	}
}

func TestMobileNetForward(t *testing.T) {
	model := smallModel(t)
	m := meter.NewContext()
	in := NewTensor(32, 32, 3)
	out, err := model.Forward(m, in)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 10 {
		t.Errorf("output classes = %d", out.Len())
	}
	if m.Get(meter.FPOps) == 0 {
		t.Error("forward metered no FP work")
	}
}

func TestMobileNetRejectsWrongInput(t *testing.T) {
	model := smallModel(t)
	if _, err := model.Forward(meter.NewContext(), NewTensor(16, 16, 3)); err == nil {
		t.Error("wrong input shape accepted")
	}
}

func TestMobileNetDeterministic(t *testing.T) {
	a := smallModel(t)
	b := smallModel(t)
	img, err := DecodeAndResize(meter.NewContext(), GenerateImage(3), 32)
	if err != nil {
		t.Fatal(err)
	}
	pa, err := a.Classify(meter.NewContext(), img, 3)
	if err != nil {
		t.Fatal(err)
	}
	img2, _ := DecodeAndResize(meter.NewContext(), GenerateImage(3), 32)
	pb, err := b.Classify(meter.NewContext(), img2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pa {
		if pa[i].Index != pb[i].Index {
			t.Errorf("prediction %d differs: %v vs %v", i, pa[i], pb[i])
		}
	}
}

func TestClassifyTopKOrdered(t *testing.T) {
	model := smallModel(t)
	img, _ := DecodeAndResize(meter.NewContext(), GenerateImage(0), 32)
	preds, err := model.Classify(meter.NewContext(), img, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 5 {
		t.Fatalf("got %d predictions", len(preds))
	}
	for i := 1; i < len(preds); i++ {
		if preds[i-1].Confidence < preds[i].Confidence {
			t.Error("predictions not sorted by confidence")
		}
	}
	if preds[0].Label == "" {
		t.Error("empty label")
	}
}

func TestDifferentImagesClassifyIndependently(t *testing.T) {
	// At least the confidences should differ across distinct images.
	model := smallModel(t)
	p0, _ := model.Classify(meter.NewContext(), mustImg(t, 0), 1)
	p1, _ := model.Classify(meter.NewContext(), mustImg(t, 17), 1)
	if p0[0].Confidence == p1[0].Confidence {
		t.Error("distinct images yield identical confidence — inputs likely ignored")
	}
}

func mustImg(t *testing.T, idx int) Tensor {
	t.Helper()
	img, err := DecodeAndResize(meter.NewContext(), GenerateImage(idx), 32)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestImageIsOneMB(t *testing.T) {
	img := GenerateImage(0)
	if len(img) != ImageBytes {
		t.Fatalf("image = %d bytes", len(img))
	}
	if ImageBytes < 1_000_000 || ImageBytes > 1_100_000 {
		t.Errorf("dataset images should be ≈1 MB, got %d", ImageBytes)
	}
}

func TestDatasetDiversified(t *testing.T) {
	imgs := Dataset(4)
	if len(imgs) != 4 {
		t.Fatal("dataset size")
	}
	same := 0
	for i := 0; i < len(imgs[0]); i += 1024 {
		if imgs[0][i] == imgs[1][i] {
			same++
		}
	}
	if same > len(imgs[0])/1024/2 {
		t.Error("images 0 and 1 look identical — not diversified")
	}
}

func TestDecodeRejectsBadSize(t *testing.T) {
	if _, err := DecodeAndResize(meter.NewContext(), make([]byte, 100), 32); err == nil {
		t.Error("short image accepted")
	}
}

func TestDecodeNormalizesRange(t *testing.T) {
	img, err := DecodeAndResize(meter.NewContext(), GenerateImage(1), 32)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range img.Data {
		if v < -1.0001 || v > 1.0001 {
			t.Fatalf("pixel %v outside [-1,1]", v)
		}
	}
}

func TestTotalMACsPositiveAndScalesWithInput(t *testing.T) {
	small, _ := NewMobileNet(MobileNetConfig{InputSize: 32, Classes: 10})
	big, _ := NewMobileNet(MobileNetConfig{InputSize: 64, Classes: 10})
	if small.TotalMACs() <= 0 {
		t.Error("MACs not positive")
	}
	if big.TotalMACs() <= small.TotalMACs() {
		t.Error("larger input should need more MACs")
	}
}
