// Package mlinfer is ConfBench's machine-learning inference substrate:
// a pure-Go convolutional neural network engine standing in for the
// TensorFlow Lite + MobileNet setup of the paper's confidential-ML
// experiment (§IV-C, Fig. 3).
//
// The engine implements the layer types MobileNet needs — standard and
// depthwise convolutions, ReLU6, global average pooling, a fully
// connected classifier head, and softmax — with real float32
// arithmetic. A MobileNetV1-style network with deterministic
// pseudo-random weights classifies synthetic 1-MB RGB images (the
// paper uses 40 diversified 1-MB images), metering multiply-
// accumulates as floating-point work so the TEE cost models price the
// workload like the real thing: CPU-bound dense arithmetic.
package mlinfer

import (
	"fmt"
	"math"
)

// Tensor is a dense float32 tensor in HWC layout (height, width,
// channels). A fully connected vector uses H=W=1.
type Tensor struct {
	H, W, C int
	Data    []float32
}

// NewTensor allocates a zero tensor of the given shape.
func NewTensor(h, w, c int) Tensor {
	return Tensor{H: h, W: w, C: c, Data: make([]float32, h*w*c)}
}

// At returns the element at (y, x, ch).
func (t Tensor) At(y, x, ch int) float32 {
	return t.Data[(y*t.W+x)*t.C+ch]
}

// Set stores v at (y, x, ch).
func (t Tensor) Set(y, x, ch int, v float32) {
	t.Data[(y*t.W+x)*t.C+ch] = v
}

// Len returns the number of elements.
func (t Tensor) Len() int { return len(t.Data) }

// Bytes returns the storage size in bytes.
func (t Tensor) Bytes() int64 { return int64(len(t.Data)) * 4 }

// ShapeString renders the shape for error messages.
func (t Tensor) ShapeString() string { return fmt.Sprintf("%dx%dx%d", t.H, t.W, t.C) }

// rng is a deterministic xorshift64* generator for weight init.
type rng uint64

func newRNG(seed uint64) *rng {
	r := rng(seed | 1)
	return &r
}

func (r *rng) next() uint64 {
	v := uint64(*r)
	v ^= v >> 12
	v ^= v << 25
	v ^= v >> 27
	*r = rng(v)
	return v * 0x2545F4914F6CDD1D
}

// float31 returns a float in [-0.5, 0.5).
func (r *rng) float() float32 {
	return float32(r.next()>>11)/float32(1<<53) - 0.5
}

// fillWeights initializes data with He-uniform pseudo-random values:
// uniform in ±√(6/fanIn), giving variance 2/fanIn. This keeps the
// activation signal alive through the 13-block stack — with smaller
// scales the input washes out and every image classifies identically.
func fillWeights(data []float32, fanIn int, r *rng) {
	if fanIn < 1 {
		fanIn = 1
	}
	bound := 2 * float32(math.Sqrt(6/float64(fanIn)))
	for i := range data {
		data[i] = r.float() * bound
	}
}
