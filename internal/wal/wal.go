// Package wal is ConfBench's durable persistence plane: a bitcask-style
// append-only entry log with an in-memory key index.
//
// Records are length-prefixed and CRC32-checksummed, appended to
// numbered segment files that roll over at a byte budget. Open rebuilds
// the key → (segment, offset) index by scanning every segment in order;
// a torn tail record (the footprint of a crash mid-append) is truncated
// away instead of failing the open, so the log always recovers every
// record written before the corruption. Superseded and tombstoned
// entries are dropped by merge compaction, which rewrites the live set
// into fresh segments and deletes the old ones — triggered explicitly
// via Compact or in the background once the dead-byte ratio crosses the
// configured threshold.
//
// Two consumers mount it: internal/minidb's durable storage backend
// (committed row mutations, so speedtest prices real write
// amplification and fsync pairs) and internal/obs's telemetry spill
// (series windows and flight-recorder event batches as saved-record
// column blocks, so windowed queries and postmortems span restarts).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Defaults.
const (
	// DefaultSegmentBytes is the roll-over budget of one segment file.
	DefaultSegmentBytes = 4 << 20
	// DefaultCompactRatio is the dead/total byte ratio past which a
	// write triggers background compaction.
	DefaultCompactRatio = 0.5
	// compactMinBytes is the total log size below which automatic
	// compaction never triggers (tiny logs are not worth rewriting).
	compactMinBytes = 64 << 10
	// MaxKeyLen and MaxValueLen bound one record's key and value; the
	// scanner treats larger claimed lengths as corruption.
	MaxKeyLen   = 1 << 16
	MaxValueLen = 64 << 20
)

// recordHeaderLen is crc32(4) + flags(1) + keyLen(4) + valLen(4).
const recordHeaderLen = 13

// Record flags.
const flagTombstone = 1

// ErrClosed reports an operation on a closed log.
var ErrClosed = errors.New("wal: log closed")

// Options tunes a Log.
type Options struct {
	// SegmentBytes is the per-segment roll-over budget
	// (0 = DefaultSegmentBytes).
	SegmentBytes int64
	// CompactRatio is the dead/total byte ratio past which appends
	// schedule a background compaction (0 = DefaultCompactRatio;
	// negative disables automatic compaction — Compact still works).
	CompactRatio float64
	// NoFsync skips the physical fsync in Sync (the metered cost is
	// charged by callers regardless); tests on slow filesystems use it.
	NoFsync bool
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.CompactRatio == 0 {
		o.CompactRatio = DefaultCompactRatio
	}
	return o
}

// ref locates one live record.
type ref struct {
	seg  int
	off  int64
	size int64 // full record footprint, header included
}

// segment is one log file open for reading (and, for the active one,
// appending).
type segment struct {
	id   int
	f    *os.File
	size int64
}

// Stats is a point-in-time summary of the log.
type Stats struct {
	// Segments counts live segment files.
	Segments int
	// Keys counts live (non-tombstoned, non-superseded) keys.
	Keys int
	// LiveBytes is the record footprint of the live keys.
	LiveBytes int64
	// TotalBytes is the on-disk footprint of every segment.
	TotalBytes int64
	// Compactions counts completed merge passes.
	Compactions int
	// TruncatedTail reports whether Open found and cut a torn tail.
	TruncatedTail bool
	// RecoveredRecords counts records recovered by the opening scan.
	RecoveredRecords int
}

// DeadRatio is the fraction of on-disk bytes owed to superseded and
// tombstoned records.
func (s Stats) DeadRatio() float64 {
	if s.TotalBytes == 0 {
		return 0
	}
	return float64(s.TotalBytes-s.LiveBytes) / float64(s.TotalBytes)
}

// Log is an append-only keyed entry log. All methods are safe for
// concurrent use.
type Log struct {
	dir  string
	opts Options

	mu          sync.Mutex
	segments    map[int]*segment
	active      *segment
	index       map[string]ref
	liveBytes   int64
	totalBytes  int64
	compacting  bool
	compactions int
	closed      bool
	wg          sync.WaitGroup

	truncatedTail bool
	recovered     int
}

// Open opens (or creates) the log rooted at dir, rebuilding the key
// index by scanning every segment in id order. A torn or corrupted
// tail is truncated, never fatal: every record before the corruption
// point is recovered.
func Open(dir string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{
		dir:      dir,
		opts:     opts,
		segments: make(map[int]*segment, 4),
		index:    make(map[string]ref, 64),
	}
	ids, err := listSegmentIDs(dir)
	if err != nil {
		return nil, err
	}
	for _, id := range ids {
		seg, err := l.openSegment(id)
		if err != nil {
			l.closeAllLocked()
			return nil, err
		}
		if err := l.scanSegment(seg); err != nil {
			l.closeAllLocked()
			return nil, err
		}
		l.segments[id] = seg
		l.totalBytes += seg.size
	}
	if len(ids) == 0 {
		if err := l.rollLocked(1); err != nil {
			return nil, err
		}
	} else {
		l.active = l.segments[ids[len(ids)-1]]
	}
	return l, nil
}

// segmentName renders one segment file name.
func segmentName(id int) string { return fmt.Sprintf("seg-%08d.wal", id) }

// listSegmentIDs returns the segment ids present in dir, ascending.
func listSegmentIDs(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var ids []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".wal") {
			continue
		}
		var id int
		if _, err := fmt.Sscanf(name, "seg-%08d.wal", &id); err != nil {
			continue
		}
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids, nil
}

func (l *Log) openSegment(id int) (*segment, error) {
	f, err := os.OpenFile(filepath.Join(l.dir, segmentName(id)), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %w", err)
	}
	return &segment{id: id, f: f, size: fi.Size()}, nil
}

// scanSegment replays one segment into the index, truncating at the
// first torn or corrupted record. Records later in the scan supersede
// earlier ones (and tombstones delete), so replaying segments in id
// order reproduces last-write-wins.
func (l *Log) scanSegment(seg *segment) error {
	var off int64
	header := make([]byte, recordHeaderLen)
	for off < seg.size {
		key, valLen, recLen, ok := l.readRecordMeta(seg, off, header)
		if !ok {
			// Torn or corrupted tail: cut the segment here. Everything
			// before off was verified and stays recovered.
			if err := seg.f.Truncate(off); err != nil {
				return fmt.Errorf("wal: truncate torn tail of %s: %w", segmentName(seg.id), err)
			}
			seg.size = off
			l.truncatedTail = true
			return nil
		}
		tombstone := valLen < 0
		if prev, exists := l.index[key]; exists {
			l.liveBytes -= prev.size
		}
		if tombstone {
			delete(l.index, key)
		} else {
			l.index[key] = ref{seg: seg.id, off: off, size: recLen}
			l.liveBytes += recLen
		}
		l.recovered++
		off += recLen
	}
	return nil
}

// readRecordMeta reads and verifies the record at off. It returns the
// key, the value length (-1 for tombstones), and the full record
// length. ok is false when the record is torn or fails its checksum.
func (l *Log) readRecordMeta(seg *segment, off int64, header []byte) (key string, valLen int64, recLen int64, ok bool) {
	if _, err := seg.f.ReadAt(header, off); err != nil {
		return "", 0, 0, false
	}
	crc := binary.BigEndian.Uint32(header[0:4])
	flags := header[4]
	kl := int64(binary.BigEndian.Uint32(header[5:9]))
	vl := int64(binary.BigEndian.Uint32(header[9:13]))
	if kl == 0 || kl > MaxKeyLen || vl > MaxValueLen {
		return "", 0, 0, false
	}
	recLen = recordHeaderLen + kl + vl
	if off+recLen > seg.size {
		return "", 0, 0, false
	}
	body := make([]byte, kl+vl)
	if _, err := seg.f.ReadAt(body, off+recordHeaderLen); err != nil {
		return "", 0, 0, false
	}
	h := crc32.NewIEEE()
	h.Write(header[4:])
	h.Write(body)
	if h.Sum32() != crc {
		return "", 0, 0, false
	}
	valLen = vl
	if flags&flagTombstone != 0 {
		valLen = -1
	}
	return string(body[:kl]), valLen, recLen, true
}

// encodeRecord renders one record: crc | flags | keyLen | valLen |
// key | val. The CRC covers everything after itself.
func encodeRecord(key string, val []byte, tombstone bool) []byte {
	buf := make([]byte, recordHeaderLen+len(key)+len(val))
	var flags byte
	if tombstone {
		flags = flagTombstone
	}
	buf[4] = flags
	binary.BigEndian.PutUint32(buf[5:9], uint32(len(key)))
	binary.BigEndian.PutUint32(buf[9:13], uint32(len(val)))
	copy(buf[recordHeaderLen:], key)
	copy(buf[recordHeaderLen+len(key):], val)
	binary.BigEndian.PutUint32(buf[0:4], crc32.ChecksumIEEE(buf[4:]))
	return buf
}

// rollLocked starts a fresh active segment with the given id.
func (l *Log) rollLocked(id int) error {
	seg, err := l.openSegment(id)
	if err != nil {
		return err
	}
	l.segments[id] = seg
	l.active = seg
	return nil
}

// appendLocked writes one encoded record to the active segment,
// rolling over first when the active segment is past its budget.
func (l *Log) appendLocked(rec []byte) (seg int, off int64, err error) {
	if l.active.size >= l.opts.SegmentBytes {
		if err := l.rollLocked(l.active.id + 1); err != nil {
			return 0, 0, err
		}
	}
	off = l.active.size
	if _, err := l.active.f.WriteAt(rec, off); err != nil {
		return 0, 0, fmt.Errorf("wal: append: %w", err)
	}
	l.active.size += int64(len(rec))
	l.totalBytes += int64(len(rec))
	return l.active.id, off, nil
}

// Put appends key → val, superseding any earlier record for key. It
// returns the on-disk record footprint in bytes (the write
// amplification callers meter).
func (l *Log) Put(key string, val []byte) (int64, error) {
	if key == "" || len(key) > MaxKeyLen {
		return 0, fmt.Errorf("wal: invalid key length %d", len(key))
	}
	if len(val) > MaxValueLen {
		return 0, fmt.Errorf("wal: value too large (%d bytes)", len(val))
	}
	rec := encodeRecord(key, val, false)
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, ErrClosed
	}
	seg, off, err := l.appendLocked(rec)
	if err != nil {
		l.mu.Unlock()
		return 0, err
	}
	if prev, ok := l.index[key]; ok {
		l.liveBytes -= prev.size
	}
	l.index[key] = ref{seg: seg, off: off, size: int64(len(rec))}
	l.liveBytes += int64(len(rec))
	l.maybeCompactLocked()
	l.mu.Unlock()
	return int64(len(rec)), nil
}

// Delete appends a tombstone for key and drops it from the index. It
// returns the tombstone's on-disk footprint (0 when the key was never
// live — the append is skipped, there is nothing to shadow).
func (l *Log) Delete(key string) (int64, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, ErrClosed
	}
	prev, ok := l.index[key]
	if !ok {
		l.mu.Unlock()
		return 0, nil
	}
	rec := encodeRecord(key, nil, true)
	if _, _, err := l.appendLocked(rec); err != nil {
		l.mu.Unlock()
		return 0, err
	}
	l.liveBytes -= prev.size
	delete(l.index, key)
	l.maybeCompactLocked()
	l.mu.Unlock()
	return int64(len(rec)), nil
}

// Get reads the live value under key.
func (l *Log) Get(key string) ([]byte, bool, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, false, ErrClosed
	}
	r, ok := l.index[key]
	if !ok {
		l.mu.Unlock()
		return nil, false, nil
	}
	val, err := l.readValueLocked(r)
	l.mu.Unlock()
	if err != nil {
		return nil, false, err
	}
	return val, true, nil
}

// readValueLocked fetches the value bytes of one indexed record.
func (l *Log) readValueLocked(r ref) ([]byte, error) {
	seg, ok := l.segments[r.seg]
	if !ok {
		return nil, fmt.Errorf("wal: segment %d vanished", r.seg)
	}
	header := make([]byte, recordHeaderLen)
	if _, err := seg.f.ReadAt(header, r.off); err != nil {
		return nil, fmt.Errorf("wal: read: %w", err)
	}
	kl := int64(binary.BigEndian.Uint32(header[5:9]))
	vl := int64(binary.BigEndian.Uint32(header[9:13]))
	val := make([]byte, vl)
	if _, err := seg.f.ReadAt(val, r.off+recordHeaderLen+kl); err != nil {
		return nil, fmt.Errorf("wal: read: %w", err)
	}
	return val, nil
}

// Keys returns every live key, sorted.
func (l *Log) Keys() []string {
	l.mu.Lock()
	out := make([]string, 0, len(l.index))
	for k := range l.index {
		out = append(out, k)
	}
	l.mu.Unlock()
	sort.Strings(out)
	return out
}

// Len returns the live key count.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.index)
}

// Range calls fn for every live entry in sorted key order, stopping at
// the first error.
func (l *Log) Range(fn func(key string, val []byte) error) error {
	for _, k := range l.Keys() {
		val, ok, err := l.Get(k)
		if err != nil {
			return err
		}
		if !ok {
			continue // deleted between Keys and Get
		}
		if err := fn(k, val); err != nil {
			return err
		}
	}
	return nil
}

// Sync flushes the active segment to stable storage — the commit
// point's fsync. The metered cost (one fsync pair) is charged by the
// caller; Sync performs the physical one.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.opts.NoFsync {
		return nil
	}
	return l.active.f.Sync()
}

// maybeCompactLocked schedules a background merge when the dead-byte
// ratio crosses the configured threshold. Caller holds l.mu.
func (l *Log) maybeCompactLocked() {
	if l.opts.CompactRatio < 0 || l.compacting || l.closed {
		return
	}
	if l.totalBytes < compactMinBytes {
		return
	}
	dead := l.totalBytes - l.liveBytes
	if float64(dead)/float64(l.totalBytes) < l.opts.CompactRatio {
		return
	}
	l.compacting = true
	l.wg.Add(1)
	go func() {
		defer l.wg.Done()
		_ = l.compact()
	}()
}

// Compact merges the live set into fresh segments, dropping superseded
// and tombstoned records, and deletes the old segment files.
func (l *Log) Compact() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if l.compacting {
		// A background merge is in flight; it will do the same work.
		l.mu.Unlock()
		return nil
	}
	l.compacting = true
	l.mu.Unlock()
	return l.compact()
}

// compact performs the merge. Only one runs at a time (l.compacting).
func (l *Log) compact() error {
	l.mu.Lock()
	defer func() {
		l.compacting = false
		l.mu.Unlock()
	}()
	if l.closed {
		return ErrClosed
	}
	// Rewrite live records, sorted by key for a deterministic layout,
	// into fresh segments numbered above every existing one.
	keys := make([]string, 0, len(l.index))
	for k := range l.index {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	oldSegments := l.segments
	nextID := l.active.id + 1
	l.segments = make(map[int]*segment, 4)
	if err := l.rollLocked(nextID); err != nil {
		l.segments = oldSegments
		return err
	}
	newIndex := make(map[string]ref, len(keys))
	var live, total int64
	for _, k := range keys {
		r := l.index[k]
		seg, ok := oldSegments[r.seg]
		if !ok {
			continue
		}
		rec := make([]byte, r.size)
		if _, err := seg.f.ReadAt(rec, r.off); err != nil {
			return fmt.Errorf("wal: compact read: %w", err)
		}
		id, off, err := l.appendLocked(rec)
		if err != nil {
			return err
		}
		newIndex[k] = ref{seg: id, off: off, size: r.size}
		live += r.size
		total += r.size
	}
	if !l.opts.NoFsync {
		if err := l.active.f.Sync(); err != nil {
			return fmt.Errorf("wal: compact sync: %w", err)
		}
	}
	l.index = newIndex
	l.liveBytes = live
	l.totalBytes = total
	for id, seg := range oldSegments {
		seg.f.Close()
		_ = os.Remove(filepath.Join(l.dir, segmentName(id)))
		_ = id
	}
	l.compactions++
	return nil
}

// Stats summarizes the log.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		Segments:         len(l.segments),
		Keys:             len(l.index),
		LiveBytes:        l.liveBytes,
		TotalBytes:       l.totalBytes,
		Compactions:      l.compactions,
		TruncatedTail:    l.truncatedTail,
		RecoveredRecords: l.recovered,
	}
}

// Dir returns the log's root directory.
func (l *Log) Dir() string { return l.dir }

// closeAllLocked closes every open segment handle.
func (l *Log) closeAllLocked() {
	for _, seg := range l.segments {
		seg.f.Close()
	}
}

// Close waits for any background compaction, syncs the active
// segment, and releases every file handle. Further operations return
// ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.mu.Unlock()
	l.wg.Wait()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	var err error
	if !l.opts.NoFsync && l.active != nil {
		if serr := l.active.f.Sync(); serr != nil && !errors.Is(serr, os.ErrClosed) {
			err = serr
		}
	}
	l.closeAllLocked()
	return err
}

// CorruptTailForTest appends garbage bytes to the active segment —
// the footprint of a crash mid-append — so recovery tests can assert
// the torn tail is truncated. Exposed for tests only.
func (l *Log) CorruptTailForTest(garbage []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if _, err := l.active.f.WriteAt(garbage, l.active.size); err != nil {
		return err
	}
	l.active.size += int64(len(garbage))
	l.totalBytes += int64(len(garbage))
	return nil
}

var _ io.Closer = (*Log)(nil)
