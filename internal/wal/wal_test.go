package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// openT opens a log rooted in a fresh temp dir and registers cleanup.
func openT(t *testing.T, opts Options) *Log {
	t.Helper()
	dir := t.TempDir()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func mustPut(t *testing.T, l *Log, key, val string) {
	t.Helper()
	if _, err := l.Put(key, []byte(val)); err != nil {
		t.Fatalf("Put(%q): %v", key, err)
	}
}

func wantGet(t *testing.T, l *Log, key, val string) {
	t.Helper()
	got, ok, err := l.Get(key)
	if err != nil {
		t.Fatalf("Get(%q): %v", key, err)
	}
	if !ok {
		t.Fatalf("Get(%q): missing, want %q", key, val)
	}
	if string(got) != val {
		t.Fatalf("Get(%q) = %q, want %q", key, got, val)
	}
}

func wantMissing(t *testing.T, l *Log, key string) {
	t.Helper()
	if _, ok, err := l.Get(key); err != nil {
		t.Fatalf("Get(%q): %v", key, err)
	} else if ok {
		t.Fatalf("Get(%q): present, want missing", key)
	}
}

func TestPutGetDelete(t *testing.T) {
	l := openT(t, Options{})
	mustPut(t, l, "a", "1")
	mustPut(t, l, "b", "2")
	mustPut(t, l, "a", "3") // supersede
	wantGet(t, l, "a", "3")
	wantGet(t, l, "b", "2")
	wantMissing(t, l, "nope")

	n, err := l.Delete("a")
	if err != nil || n == 0 {
		t.Fatalf("Delete(a) = %d, %v; want tombstone bytes, nil", n, err)
	}
	wantMissing(t, l, "a")

	// Deleting a key that was never live appends nothing.
	n, err = l.Delete("ghost")
	if err != nil || n != 0 {
		t.Fatalf("Delete(ghost) = %d, %v; want 0, nil", n, err)
	}

	if got := l.Len(); got != 1 {
		t.Fatalf("Len = %d, want 1", got)
	}
}

func TestPutReportsRecordFootprint(t *testing.T) {
	l := openT(t, Options{})
	n, err := l.Put("key", []byte("value"))
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	want := int64(recordHeaderLen + len("key") + len("value"))
	if n != want {
		t.Fatalf("Put footprint = %d, want %d", n, want)
	}
}

func TestReopenRebuildsIndex(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	mustPut(t, l, "a", "1")
	mustPut(t, l, "b", "2")
	mustPut(t, l, "a", "updated")
	if _, err := l.Delete("b"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	wantGet(t, l2, "a", "updated")
	wantMissing(t, l2, "b")
	st := l2.Stats()
	if st.Keys != 1 {
		t.Fatalf("Keys = %d, want 1", st.Keys)
	}
	if st.RecoveredRecords != 4 {
		t.Fatalf("RecoveredRecords = %d, want 4", st.RecoveredRecords)
	}
	if st.TruncatedTail {
		t.Fatal("TruncatedTail set on a clean log")
	}
}

func TestSegmentRollover(t *testing.T) {
	l := openT(t, Options{SegmentBytes: 256, CompactRatio: -1})
	for i := 0; i < 50; i++ {
		mustPut(t, l, fmt.Sprintf("k%02d", i), "0123456789abcdef")
	}
	st := l.Stats()
	if st.Segments < 2 {
		t.Fatalf("Segments = %d, want >= 2 after roll-over", st.Segments)
	}
	for i := 0; i < 50; i++ {
		wantGet(t, l, fmt.Sprintf("k%02d", i), "0123456789abcdef")
	}

	// Reopen spans segments too.
	dir := l.Dir()
	l.Close()
	l2, err := Open(dir, Options{SegmentBytes: 256, CompactRatio: -1})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if got := l2.Len(); got != 50 {
		t.Fatalf("Len after reopen = %d, want 50", got)
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	mustPut(t, l, "committed1", "v1")
	mustPut(t, l, "committed2", "v2")
	// Crash mid-append: a partial record header lands at the tail.
	if err := l.CorruptTailForTest([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatalf("CorruptTailForTest: %v", err)
	}
	l.Close()

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	defer l2.Close()
	wantGet(t, l2, "committed1", "v1")
	wantGet(t, l2, "committed2", "v2")
	st := l2.Stats()
	if !st.TruncatedTail {
		t.Fatal("TruncatedTail not reported")
	}
	if st.RecoveredRecords != 2 {
		t.Fatalf("RecoveredRecords = %d, want 2", st.RecoveredRecords)
	}

	// The log stays writable after recovery.
	if _, err := l2.Put("post", []byte("recovery")); err != nil {
		t.Fatalf("Put after recovery: %v", err)
	}
	wantGet(t, l2, "post", "recovery")
}

func TestCorruptedChecksumCutsTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	mustPut(t, l, "good", "keep")
	mustPut(t, l, "bad", "flip")
	l.Close()

	// Bit-flip a byte inside the second record's value.
	seg := filepath.Join(dir, segmentName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatalf("write segment: %v", err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after bit flip: %v", err)
	}
	defer l2.Close()
	wantGet(t, l2, "good", "keep")
	wantMissing(t, l2, "bad")
	if st := l2.Stats(); !st.TruncatedTail || st.RecoveredRecords != 1 {
		t.Fatalf("Stats = %+v, want TruncatedTail with 1 recovered record", st)
	}
}

func TestCompactDropsDeadRecords(t *testing.T) {
	l := openT(t, Options{SegmentBytes: 512, CompactRatio: -1})
	for i := 0; i < 40; i++ {
		mustPut(t, l, fmt.Sprintf("k%02d", i%4), fmt.Sprintf("gen-%02d-0123456789", i))
	}
	if _, err := l.Delete("k03"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	before := l.Stats()
	if before.DeadRatio() < 0.5 {
		t.Fatalf("test setup: DeadRatio = %.2f, want mostly dead", before.DeadRatio())
	}

	if err := l.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	after := l.Stats()
	if after.TotalBytes != after.LiveBytes {
		t.Fatalf("after compact TotalBytes=%d LiveBytes=%d, want equal", after.TotalBytes, after.LiveBytes)
	}
	if after.TotalBytes >= before.TotalBytes {
		t.Fatalf("compact did not shrink: %d -> %d", before.TotalBytes, after.TotalBytes)
	}
	if after.Compactions != 1 {
		t.Fatalf("Compactions = %d, want 1", after.Compactions)
	}
	wantGet(t, l, "k00", "gen-36-0123456789")
	wantGet(t, l, "k01", "gen-37-0123456789")
	wantGet(t, l, "k02", "gen-38-0123456789")
	wantMissing(t, l, "k03")

	// Post-compact state survives reopen.
	dir := l.Dir()
	l.Close()
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after compact: %v", err)
	}
	defer l2.Close()
	wantGet(t, l2, "k02", "gen-38-0123456789")
	wantMissing(t, l2, "k03")
}

func TestAutoCompactionTriggers(t *testing.T) {
	// Small segments plus heavy overwrite of one key pushes the dead
	// ratio past the threshold and total bytes past compactMinBytes.
	l := openT(t, Options{SegmentBytes: 8 << 10, CompactRatio: 0.5})
	val := bytes.Repeat([]byte("x"), 1024)
	for i := 0; i < 200; i++ {
		if _, err := l.Put("hot", val); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	l.wg.Wait() // drain any in-flight background merge
	st := l.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no automatic compaction after %d overwrites (stats %+v)", 200, st)
	}
	wantGet(t, l, "hot", string(val))
}

func TestRangeSortedAndComplete(t *testing.T) {
	l := openT(t, Options{})
	mustPut(t, l, "b", "2")
	mustPut(t, l, "a", "1")
	mustPut(t, l, "c", "3")
	var keys []string
	err := l.Range(func(k string, v []byte) error {
		keys = append(keys, k+"="+string(v))
		return nil
	})
	if err != nil {
		t.Fatalf("Range: %v", err)
	}
	want := []string{"a=1", "b=2", "c=3"}
	if len(keys) != len(want) {
		t.Fatalf("Range visited %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("Range visited %v, want %v", keys, want)
		}
	}
}

func TestClosedLogRejectsOps(t *testing.T) {
	l := openT(t, Options{})
	mustPut(t, l, "k", "v")
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := l.Put("k", nil); err != ErrClosed {
		t.Fatalf("Put after close: %v, want ErrClosed", err)
	}
	if _, _, err := l.Get("k"); err != ErrClosed {
		t.Fatalf("Get after close: %v, want ErrClosed", err)
	}
	if err := l.Sync(); err != ErrClosed {
		t.Fatalf("Sync after close: %v, want ErrClosed", err)
	}
	if err := l.Compact(); err != ErrClosed {
		t.Fatalf("Compact after close: %v, want ErrClosed", err)
	}
	// Double close is a no-op.
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestInvalidKeysRejected(t *testing.T) {
	l := openT(t, Options{})
	if _, err := l.Put("", []byte("v")); err == nil {
		t.Fatal("Put with empty key succeeded")
	}
	if _, err := l.Put(string(bytes.Repeat([]byte("k"), MaxKeyLen+1)), nil); err == nil {
		t.Fatal("Put with oversized key succeeded")
	}
}

func TestConcurrentPutsAndGets(t *testing.T) {
	l := openT(t, Options{SegmentBytes: 4 << 10})
	done := make(chan error, 4)
	for w := 0; w < 4; w++ {
		go func(w int) {
			for i := 0; i < 100; i++ {
				key := fmt.Sprintf("w%d-k%d", w, i%10)
				if _, err := l.Put(key, []byte(fmt.Sprintf("%d", i))); err != nil {
					done <- err
					return
				}
				if _, _, err := l.Get(key); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < 4; w++ {
		if err := <-done; err != nil {
			t.Fatalf("worker: %v", err)
		}
	}
	if got := l.Len(); got != 40 {
		t.Fatalf("Len = %d, want 40", got)
	}
}

func TestSyncAndNoFsync(t *testing.T) {
	l := openT(t, Options{})
	mustPut(t, l, "k", "v")
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	nf := openT(t, Options{NoFsync: true})
	mustPut(t, nf, "k", "v")
	if err := nf.Sync(); err != nil {
		t.Fatalf("Sync (NoFsync): %v", err)
	}
}
