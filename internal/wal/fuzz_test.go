package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// FuzzRecovery is the crash-recovery property harness: write a known
// record sequence, then truncate or bit-flip the segment at an
// arbitrary offset. Open must never panic or fail, and must recover
// exactly the prefix of records that lies wholly before the damage.
func FuzzRecovery(f *testing.F) {
	f.Add(uint16(0), true, uint8(0))
	f.Add(uint16(7), false, uint8(0x80))
	f.Add(uint16(100), true, uint8(1))
	f.Add(uint16(9999), false, uint8(0xff))
	f.Fuzz(func(t *testing.T, rawOff uint16, truncate bool, flip uint8) {
		dir := t.TempDir()
		l, err := Open(dir, Options{NoFsync: true, CompactRatio: -1})
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		// A deterministic sequence of records with known boundaries.
		const n = 12
		var bounds []int64 // cumulative end offset of record i
		var end int64
		for i := 0; i < n; i++ {
			sz, err := l.Put(fmt.Sprintf("key-%02d", i), []byte(fmt.Sprintf("value-%02d-padding", i)))
			if err != nil {
				t.Fatalf("Put: %v", err)
			}
			end += sz
			bounds = append(bounds, end)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}

		seg := filepath.Join(dir, segmentName(1))
		data, err := os.ReadFile(seg)
		if err != nil {
			t.Fatalf("read segment: %v", err)
		}
		if int64(len(data)) != end {
			t.Fatalf("segment size %d, want %d", len(data), end)
		}
		off := int64(rawOff) % (end + 1)
		if truncate {
			data = data[:off]
		} else {
			if off == end {
				off = end - 1
			}
			if flip == 0 {
				flip = 0xff // ensure the byte actually changes
			}
			data[off] ^= flip
		}
		if err := os.WriteFile(seg, data, 0o644); err != nil {
			t.Fatalf("write segment: %v", err)
		}

		// Every record wholly before the damage must survive; the
		// damaged record and everything after it is cut. Open must not
		// panic or error regardless of where the damage landed.
		l2, err := Open(dir, Options{NoFsync: true, CompactRatio: -1})
		if err != nil {
			t.Fatalf("reopen after corruption at %d: %v", off, err)
		}
		defer l2.Close()
		intact := 0
		for i, b := range bounds {
			if b <= off {
				intact = i + 1
			}
		}
		st := l2.Stats()
		if st.RecoveredRecords != intact {
			t.Fatalf("corruption at %d (truncate=%v): recovered %d records, want %d",
				off, truncate, st.RecoveredRecords, intact)
		}
		for i := 0; i < intact; i++ {
			got, ok, err := l2.Get(fmt.Sprintf("key-%02d", i))
			if err != nil || !ok {
				t.Fatalf("key-%02d lost (ok=%v err=%v), damage at %d", i, ok, err, off)
			}
			want := fmt.Sprintf("value-%02d-padding", i)
			if string(got) != want {
				t.Fatalf("key-%02d = %q, want %q", i, got, want)
			}
		}
		for i := intact; i < n; i++ {
			if _, ok, _ := l2.Get(fmt.Sprintf("key-%02d", i)); ok {
				t.Fatalf("key-%02d survived damage at %d, should have been cut", i, off)
			}
		}
		// Recovered log stays writable.
		if _, err := l2.Put("post-recovery", []byte("ok")); err != nil {
			t.Fatalf("Put after recovery: %v", err)
		}
	})
}
