// Package profiler exposes Go's net/http/pprof surface on a dedicated
// listener, gated behind an explicit -pprof flag on each command so a
// production-shaped run never serves profiling endpoints by accident.
// The handlers live on their own mux — the benchmark and gateway muxes
// stay clean of debug routes.
package profiler

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Enable starts serving the pprof handlers (index, cmdline, profile,
// symbol, trace, and the runtime profiles behind the index) on addr
// and returns the index URL plus a shutdown func. A typical CPU
// capture against a running benchmark:
//
//	go tool pprof 'http://127.0.0.1:6060/debug/pprof/profile?seconds=10'
func Enable(addr string) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("profiler: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return "http://" + ln.Addr().String() + "/debug/pprof/", srv.Close, nil
}
