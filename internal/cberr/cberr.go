// Package cberr defines ConfBench's error taxonomy: every failure
// that crosses a layer boundary of the invocation pipeline
// (client → gateway → pool → host agent → VM → guest → launcher) is
// classified with a machine-readable Code, the Layer that produced
// it, and a Retryable hint. Errors travel the wire as part of the
// gateway's JSON error envelope and are reconstructed on the client
// side, so errors.Is works end-to-end across process boundaries.
//
// The taxonomy follows the idiom of production Go systems: sentinel
// values for errors.Is dispatch, a single concrete *Error carrying
// the structured fields, and wrapping that preserves the cause chain
// (context.Canceled stays reachable through errors.Is after crossing
// the gateway).
package cberr

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"
)

// Code classifies a failure independently of the layer that raised it.
type Code string

// The taxonomy. Codes are stable wire strings; do not renumber.
const (
	// CodeInvalid marks malformed or unsatisfiable requests.
	CodeInvalid Code = "invalid_request"
	// CodeNotFound marks lookups of unknown functions, pools, or TEEs.
	CodeNotFound Code = "not_found"
	// CodeConflict marks requests racing an existing resource.
	CodeConflict Code = "conflict"
	// CodeUnavailable marks transient resource exhaustion (no endpoint
	// in a pool, VM stopped, connection refused). Retryable.
	CodeUnavailable Code = "unavailable"
	// CodeUpstream marks failures forwarded from a host agent or VM
	// behind the gateway. Retryable.
	CodeUpstream Code = "upstream_error"
	// CodeCanceled marks work aborted by context cancellation.
	CodeCanceled Code = "canceled"
	// CodeDeadline marks work aborted by a context deadline. Retryable.
	CodeDeadline Code = "deadline_exceeded"
	// CodeAttestation marks evidence that failed verification.
	CodeAttestation Code = "attestation_failed"
	// CodeInternal marks everything else.
	CodeInternal Code = "internal"
)

// Layer names the pipeline stage that classified the failure.
type Layer string

// Pipeline layers, outermost first.
const (
	LayerClient  Layer = "client"
	LayerFront   Layer = "front"
	LayerGateway Layer = "gateway"
	LayerPool    Layer = "pool"
	LayerHost    Layer = "host"
	LayerVM      Layer = "vm"
	LayerGuest   Layer = "guest"
	LayerFaaS    Layer = "faas"
	LayerAttest  Layer = "attest"
	LayerBench   Layer = "bench"
)

// Error is the concrete error type carrying the taxonomy fields. Its
// JSON form is the wire representation inside the gateway's error
// envelope.
type Error struct {
	Code      Code   `json:"code"`
	Layer     Layer  `json:"layer,omitempty"`
	Retryable bool   `json:"retryable,omitempty"`
	Message   string `json:"message"`
	// RetryAfter is the server's advice on when a retry may succeed
	// (0 = no advice). It maps to/from the HTTP Retry-After header on
	// the wire, and clients honor it over their computed backoff.
	RetryAfter time.Duration `json:"retry_after_ns,omitempty"`

	cause error
}

// Sentinels for errors.Is dispatch: errors.Is(err, cberr.ErrCanceled)
// matches any *Error carrying CodeCanceled, wherever in the pipeline
// it was raised.
var (
	ErrInvalid     = &Error{Code: CodeInvalid, Message: "invalid request"}
	ErrNotFound    = &Error{Code: CodeNotFound, Message: "not found"}
	ErrConflict    = &Error{Code: CodeConflict, Message: "conflict"}
	ErrUnavailable = &Error{Code: CodeUnavailable, Retryable: true, Message: "unavailable"}
	ErrUpstream    = &Error{Code: CodeUpstream, Retryable: true, Message: "upstream error"}
	ErrCanceled    = &Error{Code: CodeCanceled, Message: "canceled", cause: context.Canceled}
	ErrDeadline    = &Error{Code: CodeDeadline, Retryable: true, Message: "deadline exceeded", cause: context.DeadlineExceeded}
	ErrAttestation = &Error{Code: CodeAttestation, Message: "attestation failed"}
	ErrInternal    = &Error{Code: CodeInternal, Message: "internal error"}
)

// retryableByDefault reports the Retryable hint a fresh error of the
// given code carries.
func retryableByDefault(c Code) bool {
	switch c {
	case CodeUnavailable, CodeUpstream, CodeDeadline:
		return true
	default:
		return false
	}
}

// Error implements error.
func (e *Error) Error() string {
	if e.Layer != "" {
		return string(e.Layer) + ": " + e.Message
	}
	return e.Message
}

// Unwrap exposes the cause chain, so errors.Is reaches wrapped
// sentinels (context.Canceled, vm.ErrNoLauncher, ...).
func (e *Error) Unwrap() error { return e.cause }

// Is matches other *Error values by Code, making the package-level
// sentinels work as errors.Is targets.
func (e *Error) Is(target error) bool {
	t, ok := target.(*Error)
	return ok && e.Code == t.Code
}

// New builds a fresh classified error.
func New(code Code, layer Layer, msg string) *Error {
	return &Error{Code: code, Layer: layer, Retryable: retryableByDefault(code), Message: msg}
}

// Newf builds a fresh classified error with a formatted message.
func Newf(code Code, layer Layer, format string, args ...any) *Error {
	return New(code, layer, fmt.Sprintf(format, args...))
}

// Wrap classifies an existing error, preserving it as the cause. A nil
// err yields nil. If err is already an *Error it is returned unchanged
// (first classification wins — the innermost layer knows best).
func Wrap(code Code, layer Layer, err error) error {
	if err == nil {
		return nil
	}
	var ce *Error
	if errors.As(err, &ce) {
		return err
	}
	return &Error{
		Code:      code,
		Layer:     layer,
		Retryable: retryableByDefault(code),
		Message:   err.Error(),
		cause:     err,
	}
}

// From classifies an arbitrary error, mapping context cancellation and
// deadline errors onto their taxonomy codes and defaulting the rest to
// CodeInternal. Already-classified errors pass through unchanged.
func From(err error, layer Layer) error {
	if err == nil {
		return nil
	}
	var ce *Error
	if errors.As(err, &ce) {
		return err
	}
	switch {
	case errors.Is(err, context.Canceled):
		return Wrap(CodeCanceled, layer, err)
	case errors.Is(err, context.DeadlineExceeded):
		return Wrap(CodeDeadline, layer, err)
	default:
		return Wrap(CodeInternal, layer, err)
	}
}

// CodeOf extracts the taxonomy code, classifying unwrapped context
// errors on the fly. Unclassifiable errors report CodeInternal; a nil
// error reports the empty code.
func CodeOf(err error) Code {
	if err == nil {
		return ""
	}
	var ce *Error
	if errors.As(err, &ce) {
		return ce.Code
	}
	switch {
	case errors.Is(err, context.Canceled):
		return CodeCanceled
	case errors.Is(err, context.DeadlineExceeded):
		return CodeDeadline
	default:
		return CodeInternal
	}
}

// LayerOf extracts the layer of the outermost classified error.
func LayerOf(err error) Layer {
	var ce *Error
	if errors.As(err, &ce) {
		return ce.Layer
	}
	return ""
}

// WithRetryAfter attaches retry timing advice to a classified error:
// the returned error carries d in its RetryAfter field while keeping
// the original error reachable through errors.Is/As. An unclassified
// err is first classified as retryable CodeUnavailable (retry advice
// only makes sense for failures a retry can cure). Nil errors and
// non-positive durations pass through unchanged.
func WithRetryAfter(err error, d time.Duration) error {
	if err == nil || d <= 0 {
		return err
	}
	var ce *Error
	if errors.As(err, &ce) {
		out := *ce
		out.RetryAfter = d
		out.cause = err
		return &out
	}
	return &Error{
		Code:       CodeUnavailable,
		Retryable:  true,
		Message:    err.Error(),
		RetryAfter: d,
		cause:      err,
	}
}

// RetryAfterOf extracts the server-supplied retry advice (0 = none).
func RetryAfterOf(err error) time.Duration {
	var ce *Error
	if errors.As(err, &ce) && ce.RetryAfter > 0 {
		return ce.RetryAfter
	}
	return 0
}

// Retryable reports whether a retry may succeed.
func Retryable(err error) bool {
	var ce *Error
	if errors.As(err, &ce) {
		return ce.Retryable
	}
	return false
}

// StatusClientClosedRequest is the non-standard (nginx-convention)
// status the gateway reports when the caller canceled mid-request.
const StatusClientClosedRequest = 499

// HTTPStatus maps an error onto the gateway's HTTP status.
func HTTPStatus(err error) int {
	switch CodeOf(err) {
	case CodeInvalid:
		return http.StatusBadRequest
	case CodeNotFound:
		return http.StatusNotFound
	case CodeConflict:
		return http.StatusConflict
	case CodeUnavailable:
		return http.StatusServiceUnavailable
	case CodeUpstream:
		return http.StatusBadGateway
	case CodeCanceled:
		return StatusClientClosedRequest
	case CodeDeadline:
		return http.StatusGatewayTimeout
	case CodeAttestation:
		return http.StatusForbidden
	default:
		return http.StatusInternalServerError
	}
}

// CodeForHTTPStatus is the client-side fallback mapping for error
// responses that carry no structured code (legacy peers, proxies).
func CodeForHTTPStatus(status int) Code {
	switch status {
	case http.StatusBadRequest, http.StatusMethodNotAllowed:
		return CodeInvalid
	case http.StatusNotFound:
		return CodeNotFound
	case http.StatusConflict:
		return CodeConflict
	case http.StatusServiceUnavailable:
		return CodeUnavailable
	case http.StatusBadGateway:
		return CodeUpstream
	case StatusClientClosedRequest:
		return CodeCanceled
	case http.StatusGatewayTimeout:
		return CodeDeadline
	case http.StatusForbidden:
		return CodeAttestation
	default:
		return CodeInternal
	}
}

// FromWire reconstructs a classified error from the gateway's error
// envelope. Canceled and deadline codes re-attach the matching context
// sentinel as the cause, so errors.Is(err, context.Canceled) keeps
// holding after a network hop.
func FromWire(code Code, layer Layer, retryable bool, message string) *Error {
	e := &Error{Code: code, Layer: layer, Retryable: retryable, Message: message}
	switch code {
	case CodeCanceled:
		e.cause = context.Canceled
	case CodeDeadline:
		e.cause = context.DeadlineExceeded
	}
	return e
}
