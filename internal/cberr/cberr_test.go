package cberr

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"testing"
	"time"
)

func TestSentinelMatchingByCode(t *testing.T) {
	err := Newf(CodeNotFound, LayerGateway, "no function %q", "ghost")
	if !errors.Is(err, ErrNotFound) {
		t.Error("fresh not_found error does not match ErrNotFound")
	}
	if errors.Is(err, ErrInvalid) {
		t.Error("not_found error matches ErrInvalid")
	}
	var ce *Error
	if !errors.As(err, &ce) || ce.Layer != LayerGateway {
		t.Errorf("As failed or layer lost: %+v", ce)
	}
}

func TestWrapPreservesCause(t *testing.T) {
	cause := errors.New("socket closed")
	err := Wrap(CodeUpstream, LayerGateway, cause)
	if !errors.Is(err, cause) {
		t.Error("cause unreachable through Wrap")
	}
	if !errors.Is(err, ErrUpstream) {
		t.Error("wrapped error does not match ErrUpstream")
	}
	if !Retryable(err) {
		t.Error("upstream error not retryable")
	}
}

func TestWrapNilAndDoubleWrap(t *testing.T) {
	if Wrap(CodeInternal, LayerVM, nil) != nil {
		t.Error("Wrap(nil) != nil")
	}
	inner := New(CodeNotFound, LayerVM, "no launcher")
	outer := Wrap(CodeInternal, LayerGateway, fmt.Errorf("forward: %w", inner))
	// First classification wins: the code must stay not_found.
	if CodeOf(outer) != CodeNotFound {
		t.Errorf("double wrap reclassified: %v", CodeOf(outer))
	}
}

func TestFromClassifiesContextErrors(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := From(ctx.Err(), LayerVM)
	if !errors.Is(err, ErrCanceled) {
		t.Error("canceled context not classified as ErrCanceled")
	}
	if !errors.Is(err, context.Canceled) {
		t.Error("context.Canceled lost by classification")
	}
	if Retryable(err) {
		t.Error("canceled must not be retryable")
	}

	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	<-dctx.Done()
	derr := From(dctx.Err(), LayerClient)
	if !errors.Is(derr, ErrDeadline) || !errors.Is(derr, context.DeadlineExceeded) {
		t.Errorf("deadline classification broken: %v", derr)
	}
}

func TestHTTPStatusRoundTrip(t *testing.T) {
	codes := []Code{
		CodeInvalid, CodeNotFound, CodeConflict, CodeUnavailable,
		CodeUpstream, CodeCanceled, CodeDeadline, CodeAttestation, CodeInternal,
	}
	for _, c := range codes {
		status := HTTPStatus(New(c, LayerGateway, "x"))
		if got := CodeForHTTPStatus(status); got != c {
			t.Errorf("code %s → status %d → code %s", c, status, got)
		}
	}
	if HTTPStatus(errors.New("plain")) != http.StatusInternalServerError {
		t.Error("unclassified error should map to 500")
	}
	if HTTPStatus(New(CodeCanceled, "", "x")) != StatusClientClosedRequest {
		t.Error("canceled should map to 499")
	}
}

func TestFromWireReattachesContextSentinels(t *testing.T) {
	err := FromWire(CodeCanceled, LayerGateway, false, "invoke canceled")
	if !errors.Is(err, context.Canceled) {
		t.Error("wire-reconstructed canceled error lost context.Canceled")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Error("wire-reconstructed error does not match ErrCanceled")
	}
	derr := FromWire(CodeDeadline, LayerGateway, true, "slow host")
	if !errors.Is(derr, context.DeadlineExceeded) {
		t.Error("wire-reconstructed deadline error lost context.DeadlineExceeded")
	}
}

func TestCodeOfFallbacks(t *testing.T) {
	if CodeOf(nil) != "" {
		t.Error("CodeOf(nil) should be empty")
	}
	if CodeOf(errors.New("x")) != CodeInternal {
		t.Error("plain errors classify as internal")
	}
	if CodeOf(fmt.Errorf("op: %w", context.Canceled)) != CodeCanceled {
		t.Error("bare context.Canceled should classify as canceled")
	}
	if LayerOf(New(CodeInternal, LayerHost, "x")) != LayerHost {
		t.Error("LayerOf lost the layer")
	}
}

func TestWithRetryAfter(t *testing.T) {
	if got := WithRetryAfter(nil, time.Second); got != nil {
		t.Fatalf("WithRetryAfter(nil) = %v, want nil", got)
	}
	base := New(CodeUnavailable, LayerPool, "queue full")
	if got := WithRetryAfter(base, 0); got != base {
		t.Error("non-positive duration should pass the error through")
	}
	err := WithRetryAfter(base, 250*time.Millisecond)
	if RetryAfterOf(err) != 250*time.Millisecond {
		t.Fatalf("RetryAfterOf = %v, want 250ms", RetryAfterOf(err))
	}
	// The classification and identity survive the attachment.
	if !errors.Is(err, ErrUnavailable) {
		t.Error("retry-after attachment lost the unavailable code")
	}
	if !errors.Is(err, base) {
		t.Error("retry-after attachment lost the original error")
	}
	if !Retryable(err) {
		t.Error("retry-after attachment lost retryability")
	}
	// The original error is untouched — sentinels stay shareable.
	if base.RetryAfter != 0 {
		t.Error("WithRetryAfter mutated its input")
	}
	// Unclassified errors get classified as retryable unavailable.
	plain := WithRetryAfter(errors.New("busy"), time.Second)
	if CodeOf(plain) != CodeUnavailable || !Retryable(plain) {
		t.Errorf("plain error classified as %v retryable=%v, want unavailable/true",
			CodeOf(plain), Retryable(plain))
	}
	if RetryAfterOf(New(CodeInternal, LayerHost, "x")) != 0 {
		t.Error("RetryAfterOf without advice should be 0")
	}
}
