package confbench_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"confbench"
	"confbench/internal/api"
	"confbench/internal/cberr"
	"confbench/internal/fronttier"
	"confbench/internal/obs"
)

// TestFrontTierSmoke is the end-to-end front-tier check behind `make
// fronttier-smoke`: a seeded two-shard deployment absorbs one shard
// being killed mid-bench with zero client-visible failures (the
// tier's shard breaker trips and its keys fail over along the ring's
// successor walk), an over-quota tenant is shed with HTTP 503 and a
// Retry-After the client demonstrably honors, and the shed counters
// surface in the shard-federated cluster snapshot.
func TestFrontTierSmoke(t *testing.T) {
	for _, transport := range smokeTransports {
		t.Run(transport, func(t *testing.T) { frontTierSmoke(t, transport) })
	}
}

func frontTierSmoke(t *testing.T, transport string) {
	reg := confbench.NewObsRegistry()
	c, err := confbench.New(
		confbench.WithTEEs(confbench.KindSEV),
		confbench.WithSeed(42),
		confbench.WithGuestMemoryMB(8),
		confbench.WithObsRegistry(reg),
		confbench.WithShards(2),
		confbench.WithTransport(transport),
		// The hour-long cooldown pins the dead shard's breaker open for
		// the final assertions; threshold 2 trips it after two walk-offs.
		confbench.WithBreakerThreshold(2, time.Hour),
		// 2 tokens/s, burst 1: the second immediate request sheds and a
		// token refills within 500ms — fast enough to demonstrate the
		// client honoring the advice.
		confbench.WithTenantQuota("greedy", confbench.TenantLimits{RatePerSec: 2, Burst: 1}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	client := c.Client()
	tier := c.FrontTier()
	if tier == nil {
		t.Fatal("no front tier deployed")
	}

	// Pick one function routed to each shard, so the bench provably
	// exercises both the killed shard and its survivor. The ring is
	// seedless and deterministic, so the scan always converges the same
	// way.
	owned := map[string]string{}
	for i := 0; len(owned) < 2; i++ {
		name := fmt.Sprintf("smoke-%d", i)
		owner := tier.Ring().Owner(fronttier.RouteKey(name, api.TenantDefault))
		if _, ok := owned[owner]; !ok {
			owned[owner] = name
		}
	}
	fns := []string{owned["shard-0"], owned["shard-1"]}
	for _, fn := range fns {
		if err := client.Upload(ctx, confbench.Function{Name: fn, Language: "go", Workload: "cpustress"}); err != nil {
			t.Fatal(err)
		}
	}

	// The bench: 30 invokes alternating across both shards' keys, with
	// shard-1 killed a third of the way in. The client must never see
	// a failure — the tier absorbs the loss.
	const invokes = 30
	failures := 0
	for i := 0; i < invokes; i++ {
		if i == invokes/3 {
			if err := c.CloseShard("shard-1"); err != nil {
				t.Fatal(err)
			}
		}
		_, err := client.Invoke(ctx, confbench.InvokeRequest{
			Function: fns[i%2], Secure: i%2 == 0, TEE: confbench.KindSEV, Scale: 1,
		})
		if err != nil {
			failures++
			t.Logf("invoke %d failed: %v", i, err)
		}
	}
	if failures != 0 {
		t.Errorf("client-visible failures = %d, want 0 (the surviving shard must absorb the traffic)", failures)
	}

	snap := reg.Snapshot()
	if got := snap.Counters[obs.MetricID("confbench_fronttier_invokes_total", "shard", "shard-1")]; got == 0 {
		t.Error("shard-1 served nothing before being killed — the bench never exercised it")
	}
	if got := snap.Counters[obs.MetricID("confbench_fronttier_failovers_total")]; got == 0 {
		t.Error("no failovers recorded despite a shard dying mid-bench")
	}
	if got := snap.Gauges[obs.MetricID("confbench_fronttier_shard_breaker_state", "shard", "shard-1")]; got != 1 {
		t.Errorf("dead shard's breaker gauge = %d, want 1 (open)", got)
	}

	// Over-quota tenant: the second immediate request sheds with a
	// retryable unavailable carrying refill-derived retry advice.
	start := time.Now()
	oneShot, err := confbench.NewClient(c.GatewayURL(),
		confbench.WithClientTenant("greedy"), api.WithRetries(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := oneShot.Invoke(ctx, confbench.InvokeRequest{
		Function: fns[0], TEE: confbench.KindSEV, Scale: 1,
	}); err != nil {
		t.Fatalf("greedy tenant's first request must pass: %v", err)
	}
	_, shedErr := oneShot.Invoke(ctx, confbench.InvokeRequest{
		Function: fns[0], TEE: confbench.KindSEV, Scale: 1,
	})
	if shedErr == nil {
		t.Fatal("over-quota request admitted")
	}
	if cberr.CodeOf(shedErr) != cberr.CodeUnavailable || !cberr.Retryable(shedErr) {
		t.Errorf("shed is not a retryable unavailable: %v", shedErr)
	}
	if ra := cberr.RetryAfterOf(shedErr); ra <= 0 || ra > 500*time.Millisecond {
		t.Errorf("shed RetryAfter = %v, want (0, 500ms]", ra)
	}

	// On the wire that shed is HTTP 503 with a Retry-After header.
	body, _ := json.Marshal(api.InvokeRequest{Function: fns[0], TEE: confbench.KindSEV, Scale: 1})
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.GatewayURL()+api.PathV1Invoke, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	httpReq.Header.Set(confbench.HeaderTenant, "greedy")
	httpResp, err := http.DefaultClient.Do(httpReq)
	if err != nil {
		t.Fatal(err)
	}
	httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("over-quota status = %d, want 503", httpResp.StatusCode)
	}
	if httpResp.Header.Get("Retry-After") == "" {
		t.Error("503 shed carries no Retry-After header")
	}

	// A retrying client honors the advice: its success implies a token
	// had refilled, which takes 500ms from the bucket's last grant — so
	// the client must have waited instead of surfacing the shed.
	honoring, err := confbench.NewClient(c.GatewayURL(), confbench.WithClientTenant("greedy"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := honoring.Invoke(ctx, confbench.InvokeRequest{
		Function: fns[0], TEE: confbench.KindSEV, Scale: 1,
	}); err != nil {
		t.Fatalf("retrying client must outwait the quota: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 400*time.Millisecond {
		t.Errorf("retrying client succeeded after %v — a token cannot have refilled that fast", elapsed)
	}

	// The federated cluster snapshot: the survivor's counters under its
	// shard label, the dead shard as a scrape error, and the tier's
	// shed counters under shard="front".
	cs, err := client.ObsCluster(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := cs.Merged.Counters[obs.MetricID("confbench_http_requests_total",
		"route", api.PathV1Invoke, "status", "200", "shard", "shard-0")]; got == 0 {
		t.Error("federated snapshot misses the surviving shard's served invokes")
	}
	if _, dead := cs.ScrapeErrors["shard-1"]; !dead {
		t.Errorf("dead shard missing from scrape errors: %v", cs.ScrapeErrors)
	}
	if got := cs.Merged.Counters[obs.MetricID("confbench_fronttier_sheds_total",
		"reason", "tenant_rate", "shard", "front")]; got == 0 {
		t.Error("tenant_rate sheds missing from the federated snapshot under shard=\"front\"")
	}
}
