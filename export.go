package confbench

import (
	"confbench/internal/api"
	"confbench/internal/faas"
	"confbench/internal/fronttier"
	"confbench/internal/obs"
	"confbench/internal/tee"
)

// Re-exports of the types a ConfBench consumer touches on every call,
// so typical programs import only the root package. The internal
// packages stay the source of truth; these are aliases, not copies.

// Function is a FaaS function definition uploaded to the gateway.
type Function = faas.Function

// InvokeRequest asks the gateway to run a function in a secure or
// normal VM on a chosen TEE.
type InvokeRequest = api.InvokeRequest

// InvokeResponse carries the result: virtual wall time, the perf
// metrics piggybacked from the guest, and — when tracing was
// requested — the span tree of the invocation.
type InvokeResponse = api.InvokeResponse

// Kind identifies a TEE platform.
type Kind = tee.Kind

// The platforms of the paper's test bed.
const (
	KindTDX = tee.KindTDX
	KindSEV = tee.KindSEV
	KindCCA = tee.KindCCA
)

// Client is the REST client returned by Cluster.Client.
type Client = api.Client

// SpanData is one node of a trace span tree (see InvokeRequest.Trace
// and Client.Obs).
type SpanData = obs.SpanData

// ObsSnapshot is a point-in-time copy of a metrics registry, as
// returned by Client.Obs.
type ObsSnapshot = obs.Snapshot

// ClusterObsSnapshot is the federated cluster view served by GET
// /v1/obs/cluster: every host agent's registry merged under host
// labels, plus windowed rates, as returned by Client.ObsCluster.
type ClusterObsSnapshot = obs.ClusterSnapshot

// ObsEvent is one invoke's flight-recorder record, as returned by
// Client.ObsEvents.
type ObsEvent = obs.Event

// RenderTrace formats a span tree as an indented text tree, one line
// per span with layer, name, and duration.
func RenderTrace(d *SpanData) string { return obs.RenderTree(d) }

// TenantLimits caps one tenant at the front tier: a token-bucket
// invoke rate (RatePerSec/Burst) and an in-flight quota (MaxInFlight).
// Zero fields are unlimited. See WithTenantQuota.
type TenantLimits = fronttier.TenantLimits

// AsyncSubmitResponse acknowledges an async invoke submission with
// the invoke ID to poll.
type AsyncSubmitResponse = api.AsyncSubmitResponse

// AsyncResult is one async invoke's lifecycle record, as returned by
// Client.Result: pending, done with the response, or error with the
// envelope.
type AsyncResult = api.AsyncResult

// Async invoke lifecycle states (AsyncResult.Status).
const (
	AsyncPending = api.AsyncPending
	AsyncDone    = api.AsyncDone
	AsyncError   = api.AsyncError
)

// HeaderTenant carries the caller's tenant identity to the front
// tier; absent means TenantDefault. Client-side, prefer the
// WithClientTenant option.
const HeaderTenant = api.HeaderTenant

// TenantDefault is the tenant unstamped requests fall under.
const TenantDefault = api.TenantDefault

// DrainReport summarizes one host drain: endpoints quiesced and
// removed, and the per-guest live-migration outcomes, as returned by
// Cluster.DrainHost and Client.DrainHost.
type DrainReport = api.DrainReport

// MigrationSummary is one guest's migration inside a DrainReport.
type MigrationSummary = api.MigrationSummary

// ClientOption configures a Client built by NewClient.
type ClientOption = api.Option

// WithClientTenant stamps every request from a Client with a tenant
// identity, so the front tier applies that tenant's quotas.
func WithClientTenant(tenant string) ClientOption { return api.WithTenant(tenant) }

// NewClient returns a REST client for an already-running deployment's
// base URL — a front tier or a gateway; both serve the same API.
func NewClient(baseURL string, opts ...ClientOption) (*Client, error) {
	return api.New(baseURL, opts...)
}
