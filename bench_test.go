// Benchmarks regenerating every table and figure of the paper's
// evaluation (§IV). Each benchmark runs the corresponding experiment
// end-to-end on the simulated test bed and reports the paper's headline
// numbers as custom benchmark metrics, so
//
//	go test -bench=. -benchmem
//
// prints the full reproduction. Sizes are CI-friendly; the
// cmd/confbench-bench binary runs the same experiments at the paper's
// full protocol (10 trials, full scales) and renders the figures.
package confbench_test

import (
	"context"
	"strings"
	"sync"
	"testing"

	"confbench"
	"confbench/internal/api"
	"confbench/internal/attest/dcap"
	"confbench/internal/bench"
	"confbench/internal/faas"
	"confbench/internal/meter"
	"confbench/internal/minidb"
	"confbench/internal/mlinfer"
	"confbench/internal/tee"
	"confbench/internal/tee/container"
	"confbench/internal/vm"
	"confbench/internal/wasmvm"
)

// benchCluster lazily boots one shared cluster for all benchmarks.
var (
	benchClusterOnce sync.Once
	benchClusterInst *confbench.Cluster
	benchClusterErr  error
)

func sharedCluster(b *testing.B) *confbench.Cluster {
	b.Helper()
	benchClusterOnce.Do(func() {
		benchClusterInst, benchClusterErr = confbench.NewCluster(confbench.ClusterConfig{GuestMemoryMB: 8})
	})
	if benchClusterErr != nil {
		b.Fatal(benchClusterErr)
	}
	return benchClusterInst
}

// BenchmarkFig3ConfidentialML regenerates Fig. 3: per-image inference
// time distributions for secure vs normal VMs on TDX, SEV-SNP, and
// CCA. Reported metrics are the secure/normal ratios of mean
// inference times per platform (paper: TDX/SEV ≈ 1, CCA ≤ 1.33).
func BenchmarkFig3ConfidentialML(b *testing.B) {
	c := sharedCluster(b)
	for i := 0; i < b.N; i++ {
		for _, kind := range c.Kinds() {
			pair, err := c.Pair(kind)
			if err != nil {
				b.Fatal(err)
			}
			res, err := bench.ML(context.Background(), pair, bench.MLOptions{Images: 10, InputSize: 64})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.Times.Ratio(), "ratio-"+string(kind))
		}
	}
}

// BenchmarkTableDBMS regenerates the §IV-C DBMS findings: the
// speedtest1-style suite's average secure/normal ratio per platform
// (paper: TDX/SEV close to 1; CCA on average up to 10×).
func BenchmarkTableDBMS(b *testing.B) {
	c := sharedCluster(b)
	for i := 0; i < b.N; i++ {
		for _, kind := range c.Kinds() {
			pair, err := c.Pair(kind)
			if err != nil {
				b.Fatal(err)
			}
			res, err := bench.DBMS(context.Background(), pair, bench.DBMSOptions{Size: 30})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.AvgRatio, "avg-ratio-"+string(kind))
			b.ReportMetric(res.MaxRatio, "max-ratio-"+string(kind))
		}
	}
}

// BenchmarkFig4UnixBench regenerates Fig. 4: UnixBench index-score
// time ratios per platform (paper: larger than ML/DBMS; TDX least,
// CCA most).
func BenchmarkFig4UnixBench(b *testing.B) {
	c := sharedCluster(b)
	for i := 0; i < b.N; i++ {
		for _, kind := range c.Kinds() {
			pair, err := c.Pair(kind)
			if err != nil {
				b.Fatal(err)
			}
			res, err := bench.UnixBench(context.Background(), pair, bench.UnixBenchOptions{Scale: 0.25})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.TimeRatio, "ratio-"+string(kind))
		}
	}
}

// BenchmarkFig5Attestation regenerates Fig. 5: absolute attest/check
// latencies for TDX (DCAP quote + PCS-backed verification) and
// SEV-SNP (AMD-SP report + local chain), in milliseconds (paper: SEV
// faster at both phases; TDX check network-dominated).
func BenchmarkFig5Attestation(b *testing.B) {
	c := sharedCluster(b)
	for i := 0; i < b.N; i++ {
		ta, tv, err := c.TDXAttestation()
		if err != nil {
			b.Fatal(err)
		}
		tdxRes, err := bench.Attestation(context.Background(), tee.KindTDX, ta, tv, 5)
		if err != nil {
			b.Fatal(err)
		}
		sa, sv, err := c.SEVAttestation()
		if err != nil {
			b.Fatal(err)
		}
		sevRes, err := bench.Attestation(context.Background(), tee.KindSEV, sa, sv, 5)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(tdxRes.AttestMs.Mean, "tdx-attest-ms")
		b.ReportMetric(tdxRes.CheckMs.Mean, "tdx-check-ms")
		b.ReportMetric(sevRes.AttestMs.Mean, "sev-attest-ms")
		b.ReportMetric(sevRes.CheckMs.Mean, "sev-check-ms")
	}
}

// fig6Options sizes the heatmap benchmarks: the full 30-workload ×
// 7-language matrix at reduced trials/scales.
func fig6Options() bench.FaaSOptions {
	return bench.FaaSOptions{Options: bench.Options{Trials: 2, ScaleDivisor: 8}}
}

// BenchmarkFig6FaaSHeatmap regenerates Fig. 6: the full workload ×
// language ratio heatmaps for TDX and SEV-SNP (paper: TDX wins
// CPU/memory cells, SEV wins I/O cells, a few cells < 1).
func BenchmarkFig6FaaSHeatmap(b *testing.B) {
	c := sharedCluster(b)
	for i := 0; i < b.N; i++ {
		for _, kind := range bench.KindsTDXSEV {
			pair, err := c.Pair(kind)
			if err != nil {
				b.Fatal(err)
			}
			res, err := bench.FaaS(context.Background(), pair, c.Catalog(), fig6Options())
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.MeanRatio(), "mean-ratio-"+string(kind))
			b.ReportMetric(float64(res.CellsBelowOne()), "cells-below-1-"+string(kind))
		}
	}
}

// BenchmarkFig7CCAHeatmap regenerates Fig. 7: the same matrix on CCA
// (paper: markedly larger overheads than the bare-metal TEEs).
func BenchmarkFig7CCAHeatmap(b *testing.B) {
	c := sharedCluster(b)
	for i := 0; i < b.N; i++ {
		pair, err := c.Pair(tee.KindCCA)
		if err != nil {
			b.Fatal(err)
		}
		res, err := bench.FaaS(context.Background(), pair, c.Catalog(), fig6Options())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MeanRatio(), "mean-ratio-cca")
	}
}

// BenchmarkFig8CCADistribution regenerates Fig. 8: per-function
// execution-time distributions over 10 independent runs on CCA,
// reporting the relative whisker spans (paper: secure whiskers
// longer).
func BenchmarkFig8CCADistribution(b *testing.B) {
	c := sharedCluster(b)
	opts := bench.FaaSOptions{
		Options:   bench.Options{Trials: 10, ScaleDivisor: 8},
		Workloads: []string{"cpustress", "memstress", "iostress", "logging", "factors", "filesystem"},
		Languages: []string{"go", "python", "lua"},
	}
	for i := 0; i < b.N; i++ {
		pair, err := c.Pair(tee.KindCCA)
		if err != nil {
			b.Fatal(err)
		}
		res, err := bench.FaaS(context.Background(), pair, c.Catalog(), opts)
		if err != nil {
			b.Fatal(err)
		}
		boxes, err := res.BoxPlotsFor("go")
		if err != nil {
			b.Fatal(err)
		}
		var secSpan, norSpan float64
		for _, box := range boxes {
			secSpan += box.Secure.WhiskerSpan() / box.Secure.Median
			norSpan += box.Normal.WhiskerSpan() / box.Normal.Median
		}
		b.ReportMetric(secSpan/float64(len(boxes)), "secure-rel-span")
		b.ReportMetric(norSpan/float64(len(boxes)), "normal-rel-span")
	}
}

// BenchmarkAblationTDXFirmware reproduces §III-B's firmware anecdote:
// the pre-upgrade TDX module made runs ~10× slower. Reported metric is
// the buggy/current execution-time ratio.
func BenchmarkAblationTDXFirmware(b *testing.B) {
	buggy, err := confbench.NewCluster(confbench.ClusterConfig{
		TEEs: []tee.Kind{tee.KindTDX}, TDXFirmware: "TDX_1.5.00.41.610", GuestMemoryMB: 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer buggy.Close()
	good := sharedCluster(b)

	fn := faas.Function{Name: "probe", Language: "go", Workload: "cpustress"}
	for i := 0; i < b.N; i++ {
		goodPair, err := good.Pair(tee.KindTDX)
		if err != nil {
			b.Fatal(err)
		}
		buggyPair, err := buggy.Pair(tee.KindTDX)
		if err != nil {
			b.Fatal(err)
		}
		g, err := goodPair.Secure.InvokeFunction(context.Background(), fn, 50_000)
		if err != nil {
			b.Fatal(err)
		}
		bad, err := buggyPair.Secure.InvokeFunction(context.Background(), fn, 50_000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(bad.Wall.Seconds()/g.Wall.Seconds(), "firmware-penalty-x")
	}
}

// BenchmarkAblationCollateralCache measures the TDX "check" phase with
// and without collateral caching, isolating the network share the
// paper identifies (the measured flow fetches on every check).
func BenchmarkAblationCollateralCache(b *testing.B) {
	c := sharedCluster(b)
	for i := 0; i < b.N; i++ {
		ta, tv, err := c.TDXAttestation()
		if err != nil {
			b.Fatal(err)
		}
		cold, err := bench.Attestation(context.Background(), tee.KindTDX, ta, tv, 3)
		if err != nil {
			b.Fatal(err)
		}
		ta2, tv2, err := c.TDXAttestation()
		if err != nil {
			b.Fatal(err)
		}
		cached, ok := tv2.(*dcap.Verifier)
		if !ok {
			b.Fatal("TDX verifier has unexpected type")
		}
		cached.CacheCollateral = true
		warm, err := bench.Attestation(context.Background(), tee.KindTDX, ta2, cached, 3)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cold.CheckMs.Mean, "check-uncached-ms")
		b.ReportMetric(warm.CheckMs.Mean, "check-cached-ms")
	}
}

// BenchmarkColocation runs the §VI future-work extension: probe
// latency versus co-located confidential VM count on the TDX host.
func BenchmarkColocation(b *testing.B) {
	c := sharedCluster(b)
	backend, err := c.Backend(tee.KindTDX)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res, err := bench.CoLocation(context.Background(), backend, c.Catalog(), bench.CoLocationOptions{Tenants: 4, Trials: 2})
		if err != nil {
			b.Fatal(err)
		}
		last := res.Points[len(res.Points)-1]
		b.ReportMetric(last.VsSingle, "slowdown-at-4-tenants")
	}
}

// BenchmarkGatewayInvoke measures the full REST path: gateway → host
// relay → guest agent → launcher → TEE-priced execution.
func BenchmarkGatewayInvoke(b *testing.B) {
	c := sharedCluster(b)
	fn := faas.Function{Name: "bench-gw", Language: "go", Workload: "factors"}
	// The benchmark body re-runs during b.N calibration; tolerate the
	// function already being registered.
	if err := c.Client().Upload(context.Background(), fn); err != nil && !strings.Contains(err.Error(), "already registered") {
		b.Fatal(err)
	}
	req := api.InvokeRequest{Function: "bench-gw", Secure: true, TEE: tee.KindTDX, Scale: 5040}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Client().Invoke(context.Background(), req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWasmVM measures the Wasm substrate's interpreter throughput
// (instructions retired per benchmark iteration on the fib kernel).
func BenchmarkWasmVM(b *testing.B) {
	mod, err := wasmvm.BuildBenchModule()
	if err != nil {
		b.Fatal(err)
	}
	inst, err := wasmvm.NewInstance(mod)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst.Fuel = wasmvm.DefaultFuel
		if _, err := inst.Invoke("fib", 20); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(inst.Stats().Instructions)/float64(b.N), "wasm-instrs/op")
}

// BenchmarkMiniDBSpeedtest measures the embedded SQL engine running
// the full speedtest suite at a small size.
func BenchmarkMiniDBSpeedtest(b *testing.B) {
	for i := 0; i < b.N; i++ {
		st := minidb.NewSpeedTest(10)
		if _, err := st.Run(meter.NewContext()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMLInference measures one MobileNet-style classification.
func BenchmarkMLInference(b *testing.B) {
	model, err := mlinfer.NewMobileNet(mlinfer.MobileNetConfig{InputSize: 64})
	if err != nil {
		b.Fatal(err)
	}
	raw := mlinfer.GenerateImage(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := meter.NewContext()
		img, err := mlinfer.DecodeAndResize(m, raw, 64)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := model.Classify(m, img, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionContainers exercises the §V/§VI extension point:
// confidential containers as an additional execution-unit type. The
// reported metric compares the confidential container's I/O time to
// the confidential VM's on the same TDX host — the "unpractical"
// overhead the paper references.
func BenchmarkExtensionContainers(b *testing.B) {
	c := sharedCluster(b)
	inner, err := c.Backend(tee.KindTDX)
	if err != nil {
		b.Fatal(err)
	}
	ccBackend, err := container.NewBackend(inner, container.Options{})
	if err != nil {
		b.Fatal(err)
	}
	fn := faas.Function{Name: "probe", Language: "go", Workload: "iostress"}
	for i := 0; i < b.N; i++ {
		ccPair, err := vm.NewPair(ccBackend, tee.GuestConfig{MemoryMB: 8}, c.Catalog())
		if err != nil {
			b.Fatal(err)
		}
		vmPair, err := c.Pair(tee.KindTDX)
		if err != nil {
			_ = ccPair.Stop()
			b.Fatal(err)
		}
		cc, err := ccPair.Secure.InvokeFunction(context.Background(), fn, 4)
		if err != nil {
			_ = ccPair.Stop()
			b.Fatal(err)
		}
		vmRes, err := vmPair.Secure.InvokeFunction(context.Background(), fn, 4)
		if err != nil {
			_ = ccPair.Stop()
			b.Fatal(err)
		}
		b.ReportMetric(cc.Wall.Seconds()/vmRes.Wall.Seconds(), "container-vs-vm-x")
		if err := ccPair.Stop(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBootCosts reports each platform's confidential-guest boot
// cost (measured TD build / SNP launch / realm delegation plus the
// plain-VM baseline), the lifecycle cost §III-B calls "particularly
// time-consuming" to set up.
func BenchmarkBootCosts(b *testing.B) {
	c := sharedCluster(b)
	for i := 0; i < b.N; i++ {
		for _, kind := range c.Kinds() {
			backend, err := c.Backend(kind)
			if err != nil {
				b.Fatal(err)
			}
			secure, err := backend.Launch(tee.GuestConfig{MemoryMB: 8})
			if err != nil {
				b.Fatal(err)
			}
			normal, err := backend.LaunchNormal(tee.GuestConfig{MemoryMB: 8})
			if err != nil {
				_ = secure.Destroy()
				b.Fatal(err)
			}
			b.ReportMetric(secure.BootCost().Seconds(), "secure-boot-s-"+string(kind))
			b.ReportMetric(secure.BootCost().Seconds()/normal.BootCost().Seconds(), "boot-ratio-"+string(kind))
			_ = secure.Destroy()
			_ = normal.Destroy()
		}
	}
}

// BenchmarkWireTransportInvoke is the committed relay trajectory
// (BENCH_relay.json): one synchronous invoke per iteration through the
// full pipeline — client, front tier, gateway shard, guest server —
// once per hop carrier. The bench-gate target holds binary to at least
// 2x the httpjson invoke rate and at most 25% of its allocations.
func BenchmarkWireTransportInvoke(b *testing.B) {
	for _, transport := range []string{"httpjson", "binary"} {
		b.Run(transport, func(b *testing.B) {
			c, err := confbench.New(
				confbench.WithTEEs(confbench.KindSEV),
				confbench.WithSeed(7),
				confbench.WithGuestMemoryMB(8),
				confbench.WithTransport(transport),
			)
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			ctx := context.Background()
			client := c.Client()
			if err := client.Upload(ctx, confbench.Function{Name: "wirebench", Language: "go", Workload: "fib"}); err != nil {
				b.Fatal(err)
			}
			req := api.InvokeRequest{Function: "wirebench", Scale: 5}
			// One warm-up invoke keeps pool spin-up off the clock.
			if _, err := client.Invoke(ctx, req); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := client.Invoke(ctx, req); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "invokes/s")
		})
	}
}
