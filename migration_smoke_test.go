package confbench_test

import (
	"context"
	"testing"

	"confbench"
	"confbench/internal/obs"
)

// migrationSmoke boots a seeded two-host SEV deployment with 1% chaos
// armed on migrate.stream, drains the first host mid-bench, and
// returns the rendered drain outcome (per-guest downtime, resumes,
// bytes) plus the client-visible failure count. Everything returned
// is deterministic per seed.
func migrationSmoke(t *testing.T, seed int64) (downtimes []int64, failures int) {
	t.Helper()
	reg := confbench.NewObsRegistry()
	plane := confbench.NewFaultPlane(seed)
	specs, err := confbench.ParseFaultSpecs("migrate.stream:drop:0.01")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range specs {
		if err := plane.Register(s); err != nil {
			t.Fatal(err)
		}
	}
	c, err := confbench.New(
		confbench.WithTEEs(confbench.KindSEV),
		confbench.WithSeed(seed),
		confbench.WithGuestMemoryMB(8),
		confbench.WithObsRegistry(reg),
		confbench.WithFaultPlane(plane),
		confbench.WithHostsPerTEE(2),
		confbench.WithWarmPool(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	client := c.Client()
	if err := client.Upload(ctx, confbench.Function{
		Name: "mig-smoke", Language: "go", Workload: "cpustress",
	}); err != nil {
		t.Fatal(err)
	}

	// The bench: 30 invokes with the first host drained a third of the
	// way in. The drain quiesces, migrates the serving and warm guests
	// to the surviving host, and removes the source — the client must
	// never see a failure.
	const invokes = 30
	var report *confbench.DrainReport
	for i := 0; i < invokes; i++ {
		if i == invokes/3 {
			report, err = c.DrainHost(ctx, "sev-snp-host")
			if err != nil {
				t.Fatalf("drain: %v", err)
			}
		}
		_, err := client.Invoke(ctx, confbench.InvokeRequest{
			Function: "mig-smoke", Secure: i%2 == 0, TEE: confbench.KindSEV, Scale: 1,
		})
		if err != nil {
			failures++
			t.Logf("invoke %d failed: %v", i, err)
		}
	}
	if report == nil {
		t.Fatal("drain never ran")
	}
	if report.Quiesced == 0 || report.Removed == 0 {
		t.Errorf("drain removed nothing: quiesced %d removed %d", report.Quiesced, report.Removed)
	}
	if len(report.Migrations) != 2 {
		t.Fatalf("migrated %d guests, want serving + 1 idle", len(report.Migrations))
	}
	for _, m := range report.Migrations {
		if m.Outcome != "migrated" {
			t.Errorf("guest %s outcome %q, want migrated", m.Guest, m.Outcome)
		}
		if m.DowntimeNs <= 0 {
			t.Errorf("guest %s reported no downtime", m.Guest)
		}
		downtimes = append(downtimes, m.DowntimeNs)
	}

	// The migration counters surface in the deployment registry.
	snap := reg.Snapshot()
	if got := snap.Counters[obs.MetricID("confbench_migrations_total",
		"kind", "sev-snp", "outcome", "migrated")]; got != 2 {
		t.Errorf("confbench_migrations_total{sev-snp,migrated} = %d, want 2", got)
	}
	if got := snap.Counters[obs.MetricID("confbench_migration_bytes_total",
		"kind", "sev-snp")]; got == 0 {
		t.Error("no migration stream bytes counted")
	}
	return downtimes, failures
}

// TestMigrationSmoke is the end-to-end live-migration check behind
// `make migration-smoke`: a seeded two-host SEV deployment drains one
// host mid-bench under 1% migrate.stream chaos with zero
// client-visible invoke failures, every guest live-migrates behind the
// attestation gate, and the reported downtime is bit-identical across
// two same-seed runs.
func TestMigrationSmoke(t *testing.T) {
	down1, failures := migrationSmoke(t, 42)
	if failures != 0 {
		t.Errorf("client-visible failures = %d, want 0 (the drain must be invisible to clients)", failures)
	}
	down2, _ := migrationSmoke(t, 42)
	if len(down1) != len(down2) {
		t.Fatalf("same-seed runs migrated different guest counts: %d vs %d", len(down1), len(down2))
	}
	for i := range down1 {
		if down1[i] != down2[i] {
			t.Errorf("migration %d downtime differs across same-seed runs: %d vs %d ns",
				i, down1[i], down2[i])
		}
	}
}
