package confbench_test

import (
	"context"
	"reflect"
	"testing"
	"time"

	"confbench"
	"confbench/internal/faultplane"
	"confbench/internal/obs"
)

// smokeTransports parametrizes the end-to-end smokes over both hop
// carriers: every scenario must hold identically whether the pipeline
// rides JSON-over-HTTP or the binary wire protocol.
var smokeTransports = []string{"httpjson", "binary"}

// chaosRun boots a two-host SEV pool with every exec on the first
// host erroring, fires 100 invocations, and returns the injected
// fault history plus the client-visible failure count and the final
// obs snapshot. It is the repeatable unit behind the smoke's two
// assertions: graceful degradation and seed determinism.
func chaosRun(t *testing.T, seed int64, transport string) (history []faultplane.Injection, failures int, snap obs.Snapshot) {
	t.Helper()
	plane := confbench.NewFaultPlane(seed)
	specs, err := confbench.ParseFaultSpecs("hostagent.exec:error:1.0:host=sev-snp-host")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range specs {
		if err := plane.Register(s); err != nil {
			t.Fatal(err)
		}
	}
	reg := confbench.NewObsRegistry()
	c, err := confbench.New(
		confbench.WithTEEs(confbench.KindSEV),
		confbench.WithSeed(seed),
		confbench.WithGuestMemoryMB(8),
		confbench.WithObsRegistry(reg),
		confbench.WithFaultPlane(plane),
		confbench.WithHostsPerTEE(2),
		confbench.WithTransport(transport),
		// The hour-long cooldown pins tripped breakers open for the
		// final assertions — no half-open probe can race the snapshot.
		confbench.WithBreakerThreshold(3, time.Hour),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx := context.Background()
	client := c.Client()
	if err := client.Upload(ctx, confbench.Function{Name: "chaos", Language: "go", Workload: "cpustress"}); err != nil {
		t.Fatal(err)
	}
	const invokes = 100
	for i := 0; i < invokes; i++ {
		_, err := client.Invoke(ctx, confbench.InvokeRequest{
			Function: "chaos", Secure: i%2 == 0, TEE: confbench.KindSEV, Scale: 1,
		})
		if err != nil {
			failures++
			t.Logf("invoke %d failed: %v", i, err)
		}
	}

	snap, err = client.Obs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	return plane.History(), failures, snap
}

// TestChaosSmoke is the end-to-end chaos check behind `make
// chaos-smoke`, matching the fault plane's acceptance scenario: with
// one of two hosts in the SEV pool hard-erroring at the hostagent
// layer, a 100-invoke run must complete with zero client-visible
// failures — the dispatcher retries onto the healthy host and the
// faulted endpoints' breakers trip out of rotation, visible as open
// breaker gauges in /v1/obs. The same seed must reproduce the
// identical injected-fault sequence.
func TestChaosSmoke(t *testing.T) {
	for _, transport := range smokeTransports {
		t.Run(transport, func(t *testing.T) { chaosSmoke(t, transport) })
	}
}

func chaosSmoke(t *testing.T, transport string) {
	history, failures, snap := chaosRun(t, 42, transport)

	if failures != 0 {
		t.Errorf("client-visible failures = %d, want 0 (healthy host must absorb the traffic)", failures)
	}
	if len(history) == 0 {
		t.Fatal("no faults injected — the chaos spec did not match anything")
	}
	for _, inj := range history {
		if inj.Host != "sev-snp-host" {
			t.Errorf("fault injected on %q, spec pinned host=sev-snp-host", inj.Host)
		}
	}

	// The faulted host's two endpoints (secure+normal see i%2
	// alternation) read open; the sibling host stays closed.
	breaker := func(host, vm string) int64 {
		return snap.Gauges[obs.MetricID("confbench_breaker_state",
			"tee", "sev-snp", "host", host, "vm", vm)]
	}
	const open, closed = 1, 0
	for _, vm := range []string{"sev-snp-host-secure", "sev-snp-host-normal"} {
		if got := breaker("sev-snp-host", vm); got != open {
			t.Errorf("breaker gauge for %s = %d, want %d (open)", vm, got, open)
		}
	}
	for _, vm := range []string{"sev-snp-host-2-secure", "sev-snp-host-2-normal"} {
		if got := breaker("sev-snp-host-2", vm); got != closed {
			t.Errorf("breaker gauge for %s = %d, want %d (closed)", vm, got, closed)
		}
	}

	// Each faulted endpoint absorbed threshold (3) failures before its
	// breaker opened; every one was retried onto the healthy sibling.
	if got := snap.Counters["confbench_invoke_retries_total"]; got != uint64(len(history)) {
		t.Errorf("gateway retries = %d, want %d (one per injected fault)", got, len(history))
	}
	if got := snap.Counters[obs.MetricID("confbench_faults_injected_total",
		"point", "hostagent.exec", "kind", "error")]; got != uint64(len(history)) {
		t.Errorf("faults-injected counter = %d, want %d", got, len(history))
	}

	// Determinism: a second full run with the same seed reproduces the
	// identical injected-fault sequence, injection for injection.
	history2, _, _ := chaosRun(t, 42, transport)
	if !reflect.DeepEqual(history, history2) {
		t.Errorf("same seed produced different fault sequences:\nrun1: %v\nrun2: %v", history, history2)
	}
}

// TestChaosSmokeWarmRestoreFallback is the warm-pool counterpart to
// TestChaosSmoke: with every snapshot restore hard-erroring, a
// warm-pooled SEV cluster must still boot and serve all invocations —
// each failed restore silently falls back to a cold measured launch,
// so the chaos is visible only in the fault history and fallback
// counters, never to the client.
func TestChaosSmokeWarmRestoreFallback(t *testing.T) {
	for _, transport := range smokeTransports {
		t.Run(transport, func(t *testing.T) { warmRestoreFallback(t, transport) })
	}
}

func warmRestoreFallback(t *testing.T, transport string) {
	plane := confbench.NewFaultPlane(42)
	specs, err := confbench.ParseFaultSpecs("snapshot.restore:error:1.0")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range specs {
		if err := plane.Register(s); err != nil {
			t.Fatal(err)
		}
	}
	reg := confbench.NewObsRegistry()
	c, err := confbench.New(
		confbench.WithTEEs(confbench.KindSEV),
		confbench.WithSeed(42),
		confbench.WithGuestMemoryMB(8),
		confbench.WithObsRegistry(reg),
		confbench.WithFaultPlane(plane),
		confbench.WithWarmPool(2),
		confbench.WithSnapshotCacheMB(64),
		confbench.WithTransport(transport),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx := context.Background()
	client := c.Client()
	if err := client.Upload(ctx, confbench.Function{Name: "chaos-warm", Language: "go", Workload: "cpustress"}); err != nil {
		t.Fatal(err)
	}
	failures := 0
	for i := 0; i < 20; i++ {
		_, err := client.Invoke(ctx, confbench.InvokeRequest{
			Function: "chaos-warm", Secure: i%2 == 0, TEE: confbench.KindSEV, Scale: 1,
		})
		if err != nil {
			failures++
			t.Logf("invoke %d failed: %v", i, err)
		}
	}
	if failures != 0 {
		t.Errorf("client-visible failures = %d, want 0 (restore faults must fall back to cold launches)", failures)
	}

	history := plane.History()
	if len(history) == 0 {
		t.Fatal("no faults injected — the restore chaos spec did not match anything")
	}
	for _, inj := range history {
		if string(inj.Point) != "snapshot.restore" {
			t.Errorf("fault injected at %q, spec pinned snapshot.restore", inj.Point)
		}
	}

	snap, err := client.Obs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	fallbacks := snap.Counters[obs.MetricID("confbench_warm_fallbacks_total", "tee", "sev-snp")]
	if fallbacks == 0 {
		t.Error("no warm fallbacks recorded despite every restore erroring")
	}
	if got := snap.Counters[obs.MetricID("confbench_warm_hits_total", "tee", "sev-snp")]; got == 0 {
		t.Error("no warm hits — the agent never acquired from its pool")
	}
	// Every restore attempt errored, so no restore ever completed.
	if got := snap.Counters[obs.MetricID("confbench_tee_guest_restores_total", "tee", "sev-snp")]; got != 0 {
		t.Errorf("restores completed = %d, want 0 under a 1.0 error spec", got)
	}
}
