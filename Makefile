GO ?= go

# Concurrency-sensitive packages: the bench Runner worker pool, the
# gateway (TEE pools, load balancer, forwarding), the retrying HTTP
# client, and the sharded metrics registry.
RACE_PKGS = ./internal/bench/... ./internal/gateway/... ./internal/api/... ./internal/obs/...

.PHONY: build test vet race obs-smoke verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race $(RACE_PKGS)

# End-to-end observability check: boot a cluster, run a mixed batch of
# invocations, and assert the /v1/obs plane (route counters, pool
# checkouts, TEE transition counters) reports consistent values.
obs-smoke:
	$(GO) test -run TestObsSmoke -count=1 .

# Full pre-merge check: compile, vet, unit tests, the race detector
# over the concurrency-sensitive packages, and the observability
# smoke test.
verify: build vet test race obs-smoke
