GO ?= go

# Concurrency-sensitive packages: the bench Runner worker pool, the
# gateway (TEE pools, load balancer, forwarding), and the retrying
# HTTP client.
RACE_PKGS = ./internal/bench/... ./internal/gateway/... ./internal/api/...

.PHONY: build test vet race verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race $(RACE_PKGS)

# Full pre-merge check: compile, vet, unit tests, then the race
# detector over the worker pool / gateway / client packages.
verify: build vet test race
