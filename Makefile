GO ?= go

# Concurrency-sensitive packages: the bench Runner worker pool, the
# gateway (TEE pools, circuit breakers, load balancer, forwarding),
# the retrying HTTP client, the fault plane, and the sharded metrics
# registry.
RACE_PKGS = ./internal/bench/... ./internal/gateway/... ./internal/api/... ./internal/obs/... ./internal/faultplane/...

.PHONY: build test vet race obs-smoke chaos-smoke verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race $(RACE_PKGS)

# End-to-end observability check: boot a cluster, run a mixed batch of
# invocations, and assert the /v1/obs plane (route counters, pool
# checkouts, TEE transition counters) reports consistent values.
obs-smoke:
	$(GO) test -run TestObsSmoke -count=1 .

# End-to-end chaos check: with one of two hosts in a pool
# hard-erroring via the fault plane, a 100-invoke run must finish with
# zero client-visible failures, the faulted endpoints' breakers must
# read open, and the same seed must reproduce the identical
# injected-fault sequence. Runs under the race detector — the
# breaker/retry path is the most concurrent code in the gateway.
chaos-smoke:
	$(GO) test -race -run TestChaosSmoke -count=1 .

# Full pre-merge check: compile, vet, unit tests, the race detector
# over the concurrency-sensitive packages, and the observability and
# chaos smoke tests.
verify: build vet test race obs-smoke chaos-smoke
