GO ?= go

# Concurrency-sensitive packages: the bench Runner worker pool, the
# gateway (TEE pools, circuit breakers, load balancer, forwarding),
# the front tier (admission queues, shard breakers, async completion
# goroutines), the retrying HTTP client, the fault plane, the sharded
# metrics registry, the warm guest pool's refill goroutine, the
# live-migration engine's chunk-resume path, and the SLO engine
# (evaluated from federation sweeps while handlers read its status).
RACE_PKGS = ./internal/bench/... ./internal/gateway/... ./internal/fronttier/... ./internal/api/... ./internal/obs/... ./internal/faultplane/... ./internal/hostagent/... ./internal/wire/... ./internal/wal/... ./internal/migrate/... ./internal/slo/...

# Packages held to the coverage floor: the statistics toolkit every
# reported number flows through, the gateway dispatch path, the
# sharded front tier, the warm-pool/snapshot-cache subsystem, the
# telemetry plane, the persistence plane's log, the live-migration
# engine, and the SLO engine.
COVER_FLOOR ?= 70
COVER_PKGS = ./internal/stats ./internal/gateway ./internal/fronttier ./internal/hostagent ./internal/vm ./internal/obs ./internal/wire ./internal/wal ./internal/migrate ./internal/slo

# The relay benchmark suite behind the committed perf trajectory
# (BENCH_relay.json). Iterations are pinned so baseline and gate runs
# measure identical work; each benchmark runs BENCH_COUNT times and
# benchgate keeps the best sample per metric, absorbing machine noise.
BENCH_TIME ?= 2000x
BENCH_COUNT ?= 3
BENCH_RUN = $(GO) test -run xxx -bench 'BenchmarkWireTransportInvoke|BenchmarkCodec|BenchmarkTransportRoundTrip' \
	-benchmem -benchtime=$(BENCH_TIME) -count=$(BENCH_COUNT) . ./internal/wire

.PHONY: build test vet race cover cover-floor fuzz-smoke bench bench-gate obs-smoke chaos-smoke telemetry-smoke fronttier-smoke durability-smoke migration-smoke slo-smoke lint-metrics verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race $(RACE_PKGS)

# Per-package coverage report over the whole module.
cover:
	$(GO) test -cover ./...

# Enforce the coverage floor on the load-bearing packages. Each
# package is checked individually so one over-covered package cannot
# mask an under-covered one.
cover-floor:
	@for pkg in $(COVER_PKGS); do \
		pct=$$($(GO) test -cover $$pkg | sed -n 's/.*coverage: \([0-9.]*\)%.*/\1/p'); \
		if [ -z "$$pct" ]; then echo "FAIL $$pkg: no coverage output"; exit 1; fi; \
		ok=$$(awk -v p="$$pct" -v f="$(COVER_FLOOR)" 'BEGIN { print (p >= f) ? 1 : 0 }'); \
		if [ "$$ok" != "1" ]; then echo "FAIL $$pkg: coverage $$pct% below floor $(COVER_FLOOR)%"; exit 1; fi; \
		echo "ok   $$pkg coverage $$pct% (floor $(COVER_FLOOR)%)"; \
	done

# Short fuzz pass over every harness, seeded by the committed corpora
# in testdata/fuzz. Go permits one -fuzz pattern per invocation, hence
# one run per target.
fuzz-smoke:
	$(GO) test -run xxx -fuzz 'FuzzParseSpec$$' -fuzztime 5s ./internal/faultplane
	$(GO) test -run xxx -fuzz 'FuzzParseSpecs$$' -fuzztime 5s ./internal/faultplane
	$(GO) test -run xxx -fuzz 'FuzzWireDecode$$' -fuzztime 5s ./internal/api
	$(GO) test -run xxx -fuzz 'FuzzWireFrame$$' -fuzztime 5s ./internal/wire
	$(GO) test -run xxx -fuzz 'FuzzRecovery$$' -fuzztime 5s ./internal/wal
	$(GO) test -run xxx -fuzz 'FuzzMigrationStream$$' -fuzztime 5s ./internal/migrate

# Refresh the committed relay perf trajectory. Refuses to write a
# baseline where binary is not >= 2x httpjson invokes/s at <= 25% of
# its allocs/op on the e2e invoke pair.
bench:
	$(BENCH_RUN) | $(GO) run ./tools/benchgate -update -out BENCH_relay.json

# Enforce the committed trajectory: a fresh seed-pinned run must stay
# within 10% on allocs/op and 15% on invokes/s of BENCH_relay.json,
# and the binary-vs-httpjson e2e claim must still hold.
bench-gate:
	$(BENCH_RUN) | $(GO) run ./tools/benchgate -gate -baseline BENCH_relay.json

# End-to-end observability check: boot a cluster, run a mixed batch of
# invocations, and assert the /v1/obs plane (route counters, pool
# checkouts, TEE transition counters) reports consistent values.
obs-smoke:
	$(GO) test -run TestObsSmoke -count=1 .

# End-to-end chaos check: with one of two hosts in a pool
# hard-erroring via the fault plane, a 100-invoke run must finish with
# zero client-visible failures, the faulted endpoints' breakers must
# read open, and the same seed must reproduce the identical
# injected-fault sequence. Runs under the race detector — the
# breaker/retry path is the most concurrent code in the gateway.
chaos-smoke:
	$(GO) test -race -run TestChaosSmoke -count=1 .

# End-to-end telemetry check: federation over multiple hosts, the
# pinned windowed invoke rate, and the flight-recorder postmortem on
# an exhausted-retry invoke.
telemetry-smoke:
	$(GO) test -run TestTelemetry -count=1 .

# End-to-end front-tier check: a seeded two-shard deployment absorbs
# one shard being killed mid-bench with zero client-visible failures,
# an over-quota tenant is shed with 503 + Retry-After that the client
# honors, and the shed counters surface in the shard-federated
# snapshot. Runs under the race detector — the tier's admission
# queues, shard breakers, and async completions are concurrent.
fronttier-smoke:
	$(GO) test -race -run TestFrontTierSmoke -count=1 .

# End-to-end durability check: committed minidb batches survive a
# crash that tears the log tail, and a cluster rebooted on the same
# durable dir serves restart-spanning windowed rates and replayed
# flight-recorder events.
durability-smoke:
	$(GO) test -run TestDurabilitySmoke -count=1 .

# End-to-end live-migration check: a seeded two-host SEV deployment
# drains one host mid-bench under 1% migrate.stream chaos with zero
# client-visible invoke failures, both the serving and warm guests
# live-migrate behind the attestation gate, and the reported downtime
# is bit-identical across same-seed runs. Runs under the race detector
# — the drain path quiesces pools while invokes are in flight.
migration-smoke:
	$(GO) test -race -run TestMigrationSmoke -count=1 .

# End-to-end SLO check: a seeded sharded deployment under chaos drives
# one availability objective through the full warn → firing → resolved
# → ok alert cycle with a byte-identical timeline across same-seed
# runs, and a durable single-gateway deployment proves the timeline
# survives a restart through the telemetry spill.
slo-smoke:
	$(GO) test -run TestSLOSmoke -count=1 .

# Static metric-naming lint: every literal metric family registered in
# the tree must start with confbench_, counters must end in _total,
# histograms must end in a unit suffix (_seconds/_ms/_bytes/_size),
# and gauges must not end in _total.
lint-metrics:
	$(GO) test -run TestLintMetricNames -count=1 ./internal/obs

# Full pre-merge check: compile, vet, unit tests, the race detector
# over the concurrency-sensitive packages, the coverage floor, the
# metric-naming lint, the observability/chaos/telemetry/front-tier/
# durability/migration/SLO smokes, and the committed relay perf
# trajectory.
verify: build vet test race cover-floor lint-metrics obs-smoke chaos-smoke telemetry-smoke fronttier-smoke durability-smoke migration-smoke slo-smoke bench-gate
