package confbench_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"confbench"
	"confbench/internal/api"
	"confbench/internal/slo"
)

// This file is the end-to-end SLO check behind `make slo-smoke`: a
// seeded sharded deployment under chaos drives one availability
// objective through the full warn → firing → resolved → ok alert
// cycle on a synthetic sweep clock, with a byte-identical timeline
// across same-seed runs; and a single-gateway deployment proves the
// timeline survives a restart through the telemetry spill — the
// pre-shutdown /v1/obs/alerts body replays verbatim, and the restored
// firing state resolves once clean sweeps land.

// mustRegister parses one chaos spec and arms it on the plane.
func mustRegister(t *testing.T, plane *confbench.FaultPlane, spec string) {
	t.Helper()
	specs, err := confbench.ParseFaultSpecs(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range specs {
		if err := plane.Register(s); err != nil {
			t.Fatal(err)
		}
	}
}

// getBody fetches one URL and returns the raw response body, so runs
// can be compared byte-for-byte.
func getBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d: %s", url, resp.StatusCode, body)
	}
	return body
}

// sloSmokeSharded boots a seeded two-shard deployment evaluating an
// availability and a migration-downtime objective at the front tier,
// drives the availability objective through warn → firing → resolved
// → ok by faulting both TDX hosts mid-run, drains a SEV host to feed
// the downtime objective, and returns the raw /v1/obs/alerts body.
func sloSmokeSharded(t *testing.T, seed int64) []byte {
	t.Helper()
	ctx := context.Background()
	plane := confbench.NewFaultPlane(seed)
	// Latency chaos on the migration stream: every chunk pays 1ms, so
	// the drain below exercises the downtime objective under faults.
	mustRegister(t, plane, "migrate.stream:latency:1.0:latency=1ms")
	c, err := confbench.New(
		confbench.WithTEEs(confbench.KindSEV, confbench.KindTDX),
		confbench.WithSeed(seed),
		confbench.WithGuestMemoryMB(8),
		confbench.WithObsRegistry(confbench.NewObsRegistry()),
		confbench.WithFaultPlane(plane),
		confbench.WithHostsPerTEE(2),
		confbench.WithWarmPool(2),
		confbench.WithShards(2),
		// No breaker trips: the objectives must see every failure as a
		// 5xx, not have the pools quietly absorb the bad hosts.
		confbench.WithBreakerThreshold(1000, time.Second),
		confbench.WithSLOSpec(
			"invoke-availability:availability:success>=99%:short=1:long=2:warn=2,"+
				"migration-downtime:downtime:p99<1s:short=1:long=2"),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// One attempt per call: a failed invoke must count exactly one
	// client-visible failure (the tier's shard failover still means
	// one bad invoke lands one 5xx per shard).
	client, err := api.New(c.GatewayURL(), api.WithRetries(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Upload(ctx, confbench.Function{
		Name: "slo-smoke", Language: "go", Workload: "cpustress",
	}); err != nil {
		t.Fatal(err)
	}

	tier := c.FrontTier()
	base := time.Unix(1_700_000_000, 0)
	sweep := func(n int) {
		tier.ScrapeOnce(ctx, base.Add(time.Duration(n)*time.Second))
	}
	invoke := func(kind confbench.Kind, wantErr bool) {
		t.Helper()
		_, err := client.Invoke(ctx, confbench.InvokeRequest{
			Function: "slo-smoke", Secure: true, TEE: kind, Scale: 1,
		})
		if wantErr != (err != nil) {
			t.Fatalf("invoke on %s: wantErr=%v, got %v", kind, wantErr, err)
		}
	}
	good := func(n int) {
		for i := 0; i < n; i++ {
			invoke(confbench.KindSEV, false)
		}
	}
	bad := func(n int) {
		for i := 0; i < n; i++ {
			invoke(confbench.KindTDX, true)
		}
	}

	// Sweep 1: a clean baseline (mixed platforms, zero failures).
	for i := 0; i < 30; i++ {
		if i%2 == 0 {
			invoke(confbench.KindSEV, false)
		} else {
			invoke(confbench.KindTDX, false)
		}
	}
	sweep(1)
	// Both TDX hosts start failing. Each bad invoke is one 5xx per
	// shard (the tier fails over once), so sweep 2 sees 2 bad of 31:
	// burn 6.45x short / 3.28x long against the 1% budget — over the
	// 2x warn line, under the 14.4x page line.
	mustRegister(t, plane, "hostagent.exec:error:1.0:host=tdx-host")
	mustRegister(t, plane, "hostagent.exec:error:1.0:host=tdx-host-2")
	good(29)
	bad(1)
	sweep(2)
	// Sweep 3: 10 bad of 35 — 28.6x short, 18.2x long: both over the
	// page line, the alert fires.
	good(25)
	bad(5)
	sweep(3)
	// Sweeps 4 and 5: clean traffic; a clean short window resolves the
	// alert, and a clean resolved objective returns to ok.
	good(30)
	sweep(4)
	good(30)
	sweep(5)

	// Drain a SEV host under the migration-stream latency chaos: the
	// recorded downtime feeds the p99<1s objective, which must stay ok.
	report, err := c.DrainHost(ctx, "sev-snp-host")
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	if len(report.Migrations) == 0 {
		t.Fatal("drain migrated nothing; the downtime objective saw no samples")
	}
	sweep(6)

	var statuses []slo.Status
	if err := json.Unmarshal(getBody(t, c.GatewayURL()+"/v1/obs/slo"), &statuses); err != nil {
		t.Fatal(err)
	}
	byName := map[string]slo.Status{}
	for _, s := range statuses {
		byName[s.Objective] = s
	}
	if s := byName["invoke-availability"]; s.State != slo.StateOK {
		t.Errorf("availability objective = %+v, want ok after the recovery sweeps", s)
	}
	down, ok := byName["migration-downtime"]
	if !ok {
		t.Fatalf("no migration-downtime status in %+v", statuses)
	}
	if down.State != slo.StateOK || down.BudgetRemaining != 1 {
		t.Errorf("downtime objective = %+v, want ok with a full budget", down)
	}

	body := getBody(t, c.GatewayURL()+"/v1/obs/alerts")
	var timeline []slo.Transition
	if err := json.Unmarshal(body, &timeline); err != nil {
		t.Fatal(err)
	}
	wantStates := []slo.State{slo.StateWarn, slo.StateFiring, slo.StateResolved, slo.StateOK}
	if len(timeline) != len(wantStates) {
		t.Fatalf("timeline has %d transitions, want %d: %s", len(timeline), len(wantStates), body)
	}
	for i, tr := range timeline {
		if tr.Objective != "invoke-availability" || tr.To != wantStates[i] {
			t.Errorf("transition %d = %+v, want invoke-availability -> %s", i, tr, wantStates[i])
		}
		// Transitions land on the synthetic sweep clock: warn at sweep
		// 2, firing at 3, resolved at 4, ok at 5.
		if want := base.Add(time.Duration(i+2) * time.Second).UnixNano(); tr.AtUnixNs != want {
			t.Errorf("transition %d at %d, want sweep instant %d", i, tr.AtUnixNs, want)
		}
	}
	return body
}

// sloSmokeRestart proves the alert timeline spans a gateway restart: a
// durable single-gateway deployment is driven to firing, shut down,
// and rebooted on the same directory — the replayed /v1/obs/alerts
// body is byte-identical to the pre-shutdown one, the firing state is
// restored, and clean post-restart sweeps resolve it (the counter
// reset across the restart must read as burn 0, not as recovery-
// blocking garbage).
func sloSmokeRestart(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	const spec = "invoke-availability:availability:success>=99%:short=1:long=2"
	boot := func(plane *confbench.FaultPlane) *confbench.Cluster {
		t.Helper()
		opts := []confbench.Option{
			confbench.WithTEEs(confbench.KindSEV, confbench.KindTDX),
			confbench.WithSeed(7),
			confbench.WithGuestMemoryMB(8),
			confbench.WithObsRegistry(confbench.NewObsRegistry()),
			confbench.WithDurableDir(dir),
			confbench.WithBreakerThreshold(1000, time.Second),
			confbench.WithSLOSpec(spec),
		}
		if plane != nil {
			opts = append(opts, confbench.WithFaultPlane(plane))
		}
		c, err := confbench.New(opts...)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Client().Upload(ctx, confbench.Function{
			Name: "slo-smoke", Language: "go", Workload: "cpustress",
		}); err != nil {
			t.Fatal(err)
		}
		return c
	}
	base := time.Unix(1_700_000_000, 0)
	drive := func(c *confbench.Cluster, sweep, goodN, badN int) {
		t.Helper()
		client, err := api.New(c.GatewayURL(), api.WithRetries(1))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < goodN; i++ {
			if _, err := client.Invoke(ctx, confbench.InvokeRequest{
				Function: "slo-smoke", Secure: true, TEE: confbench.KindSEV, Scale: 1,
			}); err != nil {
				t.Fatalf("good invoke %d: %v", i, err)
			}
		}
		for i := 0; i < badN; i++ {
			if _, err := client.Invoke(ctx, confbench.InvokeRequest{
				Function: "slo-smoke", Secure: true, TEE: confbench.KindTDX, Scale: 1,
			}); err == nil {
				t.Fatalf("bad invoke %d unexpectedly succeeded", i)
			}
		}
		c.Gateway().ScrapeOnce(ctx, base.Add(time.Duration(sweep)*time.Second))
	}

	// First life: clean baseline, then the single TDX host fails.
	// Sweep 2 (4 bad of 30: 13.3x short, 6.7x long) warns; sweep 3
	// (10 bad of 30: 33.3x short, 23.3x long) fires.
	plane := confbench.NewFaultPlane(7)
	c1 := boot(plane)
	drive(c1, 1, 30, 0)
	mustRegister(t, plane, "hostagent.exec:error:1.0:host=tdx-host")
	drive(c1, 2, 26, 4)
	drive(c1, 3, 20, 10)
	pre := getBody(t, c1.GatewayURL()+"/v1/obs/alerts")
	var preTimeline []slo.Transition
	if err := json.Unmarshal(pre, &preTimeline); err != nil {
		t.Fatal(err)
	}
	if len(preTimeline) != 2 || preTimeline[1].To != slo.StateFiring {
		t.Fatalf("pre-restart timeline = %s, want ok->warn->firing", pre)
	}
	for _, tr := range preTimeline {
		if !strings.HasPrefix(tr.Trace, "inv-") {
			t.Errorf("transition %s->%s trace = %q, want a failed-invoke exemplar",
				tr.From, tr.To, tr.Trace)
		}
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	// Second life on the same dir, faults gone: the replayed timeline
	// must be byte-identical before any new sweep, with firing
	// restored as the live state.
	c2 := boot(nil)
	defer c2.Close()
	post := getBody(t, c2.GatewayURL()+"/v1/obs/alerts")
	if !bytes.Equal(pre, post) {
		t.Fatalf("alert timeline did not survive the restart:\npre:  %s\npost: %s", pre, post)
	}
	var statuses []slo.Status
	if err := json.Unmarshal(getBody(t, c2.GatewayURL()+"/v1/obs/slo"), &statuses); err != nil {
		t.Fatal(err)
	}
	if len(statuses) != 1 || statuses[0].State != slo.StateFiring {
		t.Fatalf("restored status = %+v, want invoke-availability firing", statuses)
	}

	// Recovery: clean sweeps on the rebooted gateway. Its counters
	// restarted from zero — the burn windows must skip the reset (like
	// Series.Rate) and read clean traffic as burn 0.
	drive(c2, 4, 30, 0)
	drive(c2, 5, 30, 0)
	var timeline []slo.Transition
	if err := json.Unmarshal(getBody(t, c2.GatewayURL()+"/v1/obs/alerts"), &timeline); err != nil {
		t.Fatal(err)
	}
	wantStates := []slo.State{slo.StateWarn, slo.StateFiring, slo.StateResolved, slo.StateOK}
	if len(timeline) != len(wantStates) {
		t.Fatalf("restart-spanning timeline has %d transitions, want %d", len(timeline), len(wantStates))
	}
	for i, tr := range timeline {
		if tr.To != wantStates[i] {
			t.Errorf("transition %d = %s->%s, want to %s", i, tr.From, tr.To, wantStates[i])
		}
		if want := base.Add(time.Duration(i+2) * time.Second).UnixNano(); tr.AtUnixNs != want {
			t.Errorf("transition %d at %d, want sweep instant %d", i, tr.AtUnixNs, want)
		}
	}
}

// TestSLOSmoke is the end-to-end SLO drill behind `make slo-smoke`.
func TestSLOSmoke(t *testing.T) {
	t.Run("sharded", func(t *testing.T) {
		body1 := sloSmokeSharded(t, 7)
		body2 := sloSmokeSharded(t, 7)
		if !bytes.Equal(body1, body2) {
			t.Fatalf("same-seed alert timelines differ:\nrun1: %s\nrun2: %s", body1, body2)
		}
	})
	t.Run("restart", sloSmokeRestart)
}
