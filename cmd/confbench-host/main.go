// Command confbench-host runs one TEE-enabled host agent: it boots the
// secure/normal VM pair for the selected platform, exposes both VMs
// through socat-style relays, and prints the endpoint list the gateway
// needs (as JSON on stdout).
//
// Usage:
//
//	confbench-host -tee tdx|sev-snp|cca [-name NAME] [-memory MB]
//	               [-warm-pool N [-snapshot-cache-mb MB]]
//
// The process serves until interrupted.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"confbench/internal/hostagent"
	"confbench/internal/profiler"
	"confbench/internal/tee"
	"confbench/internal/tee/cca"
	"confbench/internal/tee/sev"
	"confbench/internal/tee/tdx"
	"confbench/internal/vm"
	"confbench/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "confbench-host:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("confbench-host", flag.ContinueOnError)
	teeFlag := fs.String("tee", "tdx", "TEE platform: tdx, sev-snp, cca")
	name := fs.String("name", "", "host name (default <tee>-host)")
	memory := fs.Int("memory", 64, "guest memory in MiB")
	seed := fs.Int64("seed", 1, "deterministic noise seed")
	warmPool := fs.Int("warm-pool", 0, "serve the secure VM from a prewarmed guest pool with this high watermark")
	cacheMB := fs.Int("snapshot-cache-mb", 256, "snapshot image cache budget in MiB (with -warm-pool)")
	transport := fs.String("transport", "", "accepted guest carriers: default serves HTTP and binary wire frames behind a protocol sniffer; httpjson serves plain HTTP only")
	shutdownTimeout := fs.Duration("shutdown-timeout", 5*time.Second, "deadline for draining the warm pool on SIGTERM (idle guests are destroyed even when it expires)")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this address (empty = disabled)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !wire.ValidTransport(*transport) {
		return fmt.Errorf("unknown transport %q (want %q or %q)",
			*transport, wire.TransportHTTPJSON, wire.TransportBinary)
	}
	if *pprofAddr != "" {
		url, stopProf, err := profiler.Enable(*pprofAddr)
		if err != nil {
			return err
		}
		defer stopProf()
		fmt.Fprintln(os.Stderr, "pprof serving", url)
	}

	backend, err := newBackend(tee.Kind(*teeFlag), *seed)
	if err != nil {
		return err
	}
	var cache *vm.SnapshotCache
	if *warmPool > 0 {
		cache = vm.NewSnapshotCache(int64(*cacheMB)<<20, nil)
	}
	agent, err := hostagent.NewAgent(hostagent.AgentConfig{
		Name:      *name,
		Backend:   backend,
		Guest:     tee.GuestConfig{MemoryMB: *memory},
		WarmPool:  *warmPool,
		Cache:     cache,
		Transport: *transport,
	})
	if err != nil {
		return err
	}
	defer agent.Close()

	fmt.Fprintf(os.Stderr, "host %q up: %s\n", agent.Name(), backend.Name())
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(agent.Endpoints()); err != nil {
		return err
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "shutting down")
	// Drain the warm pool under a deadline before the general teardown:
	// an impatient exit must not leak warm guests, and Shutdown
	// guarantees the idle set is destroyed even when the refill
	// goroutine outlives the timeout.
	if pool := agent.Pool(); pool != nil {
		ctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		if err := pool.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "warm pool shutdown:", err)
		}
	}
	return nil
}

func newBackend(kind tee.Kind, seed int64) (tee.Backend, error) {
	switch kind {
	case tee.KindTDX:
		return tdx.NewBackend(tdx.Options{Seed: seed})
	case tee.KindSEV:
		return sev.NewBackend(sev.Options{Seed: seed})
	case tee.KindCCA:
		return cca.NewBackend(cca.Options{Seed: seed})
	default:
		return nil, fmt.Errorf("unknown TEE %q (want tdx, sev-snp, or cca)", kind)
	}
}
