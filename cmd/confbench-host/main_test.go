package main

import (
	"testing"

	"confbench/internal/tee"
)

func TestNewBackendKinds(t *testing.T) {
	for _, kind := range []tee.Kind{tee.KindTDX, tee.KindSEV, tee.KindCCA} {
		b, err := newBackend(kind, 1)
		if err != nil {
			t.Errorf("%s: %v", kind, err)
			continue
		}
		if b.Kind() != kind {
			t.Errorf("backend kind = %v, want %v", b.Kind(), kind)
		}
	}
	if _, err := newBackend(tee.Kind("sgx"), 1); err == nil {
		t.Error("unknown TEE accepted")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-tee", "sgx"}); err == nil {
		t.Error("unknown TEE accepted by run")
	}
}
