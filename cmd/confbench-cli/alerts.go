package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"confbench/internal/api"
	"confbench/internal/slo"
)

// cmdAlerts prints the deployment's SLO plane: every objective's
// state, burn rates, and remaining error budget, followed by the
// alert timeline (state transitions with trace attribution), which
// survives gateway restarts via the telemetry spill.
func cmdAlerts(ctx context.Context, client *api.Client, args []string) error {
	fs := flag.NewFlagSet("alerts", flag.ContinueOnError)
	asJSON := fs.Bool("json", false, "print the raw JSON status and timeline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	statuses, err := client.SLOStatus(ctx)
	if err != nil {
		return err
	}
	timeline, err := client.Alerts(ctx)
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(map[string]any{"objectives": statuses, "alerts": timeline})
	}
	fmt.Print(renderAlerts(statuses, timeline))
	return nil
}

// renderAlerts renders the status table and timeline. Pure, so tests
// can pin its output.
func renderAlerts(statuses []slo.Status, timeline []slo.Transition) string {
	var b strings.Builder
	if len(statuses) == 0 {
		b.WriteString("no SLO objectives configured\n")
		return b.String()
	}
	fmt.Fprintf(&b, "%-24s %-12s %-16s %-9s %9s %9s %9s\n",
		"OBJECTIVE", "KIND", "TARGET", "STATE", "BURN(S)", "BURN(L)", "BUDGET")
	for _, s := range statuses {
		name := s.Objective
		if s.TEE != "" {
			name += "[" + s.TEE + "]"
		}
		fmt.Fprintf(&b, "%-24s %-12s %-16s %-9s %8.2fx %8.2fx %8.1f%%\n",
			name, s.Kind, s.Target, s.State, s.BurnShort, s.BurnLong, 100*s.BudgetRemaining)
	}
	if len(timeline) == 0 {
		b.WriteString("no alert transitions recorded\n")
		return b.String()
	}
	b.WriteString("timeline:\n")
	for _, tr := range timeline {
		trace := tr.Trace
		if trace == "" {
			trace = "-"
		}
		fmt.Fprintf(&b, "  %s  %-24s %s  trace=%s\n",
			time.Unix(0, tr.AtUnixNs).UTC().Format(time.RFC3339),
			tr.Objective, tr.Detail, trace)
	}
	return b.String()
}
