package main

import (
	"context"
	"flag"
	"fmt"
	"sort"
	"strings"
	"time"

	"confbench/internal/api"
	"confbench/internal/obs"
	"confbench/internal/slo"
)

// cmdTop polls the gateway's federated cluster view and renders a
// live per-TEE table: invoke rate, latency percentiles, breaker
// states, and warm-pool hit ratio. Rates are computed client-side
// from consecutive fetches, so `top` works against gateways that run
// no periodic scrape loop of their own.
func cmdTop(ctx context.Context, client *api.Client, args []string) error {
	fs := flag.NewFlagSet("top", flag.ContinueOnError)
	interval := fs.Duration("interval", 2*time.Second, "refresh interval")
	count := fs.Int("count", 0, "number of refreshes (0 = until interrupted)")
	window := fs.Int("window", 30, "rate window in samples")
	if err := fs.Parse(args); err != nil {
		return err
	}
	set := obs.NewSeriesSet(*window + 1)
	for i := 0; *count == 0 || i < *count; i++ {
		cs, err := client.ObsCluster(ctx, *window)
		if err != nil {
			return err
		}
		// SLO status is best-effort: a pre-SLO gateway (404) or a
		// deployment without objectives just blanks the ALERT column.
		statuses, _ := client.SLOStatus(ctx)
		set.RecordSnapshot(time.Now(), cs.Merged)
		fmt.Print(renderTop(cs, set, *window, statuses))
		if *count != 0 && i == *count-1 {
			break
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(*interval):
		}
	}
	return nil
}

// breakerStateName maps a confbench_breaker_state gauge value to its
// label (mirrors gateway.BreakerState: 0 closed, 1 open, 2 half-open).
func breakerStateName(v int64) string {
	switch v {
	case 1:
		return "open"
	case 2:
		return "half-open"
	default:
		return "closed"
	}
}

// gatewayOwned reports whether a merged metric ID belongs to the
// gateway's own registry (so in-process deployments, where every host
// shares one registry, are not counted once per scrape host).
func gatewayOwned(labels map[string]string) bool {
	return labels["host"] == "gateway"
}

// alertCell summarizes one TEE's SLO state: the worst state among the
// objectives selecting that TEE (or every TEE), with its current
// short-window burn. Empty when the gateway serves no SLO plane, so
// the column degrades to blanks against pre-SLO gateways.
func alertCell(statuses []slo.Status, teeKind string) string {
	if len(statuses) == 0 {
		return ""
	}
	rank := map[slo.State]int{slo.StateOK: 0, slo.StateResolved: 1, slo.StateWarn: 2, slo.StateFiring: 3}
	var worst *slo.Status
	for i := range statuses {
		s := &statuses[i]
		if s.TEE != "" && s.TEE != teeKind {
			continue
		}
		if worst == nil || rank[s.State] > rank[worst.State] {
			worst = s
		}
	}
	if worst == nil {
		return "-"
	}
	if worst.State == slo.StateOK {
		return "ok"
	}
	return fmt.Sprintf("%s %.1fx", worst.State, worst.BurnShort)
}

// renderTop renders one refresh of the cluster table. Pure: it reads
// only the snapshot, the series set, and the SLO statuses, so tests
// can pin its output. statuses may be nil (no SLO plane): the ALERT
// column renders blank.
func renderTop(cs obs.ClusterSnapshot, set *obs.SeriesSet, window int, statuses []slo.Status) string {
	// TEEs present, from the gateway's per-pool checkout counters.
	tees := make(map[string]bool)
	for id := range cs.Merged.Counters {
		family, labels := obs.ParseMetricID(id)
		if family == "confbench_pool_checkouts_total" && gatewayOwned(labels) {
			tees[labels["tee"]] = true
		}
	}
	names := make([]string, 0, len(tees))
	for t := range tees {
		names = append(names, t)
	}
	sort.Strings(names)

	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %9s %11s %11s %-22s %6s %-14s\n",
		"TEE", "RATE/S", "P50", "P99", "BREAKERS", "WARM%", "ALERT")
	for _, t := range names {
		var rate float64
		if s := set.Get(obs.MetricID("confbench_pool_checkouts_total",
			"host", "gateway", "tee", t)); s != nil {
			rate = s.Rate(window)
		}
		var p50, p99 float64
		if hs, ok := cs.Merged.Histograms[obs.MetricID("confbench_invoke_seconds",
			"host", "gateway", "tee", t)]; ok {
			p50, p99 = hs.Quantile(0.50), hs.Quantile(0.99)
		}
		breakers := make(map[string]int)
		for id, v := range cs.Merged.Gauges {
			family, labels := obs.ParseMetricID(id)
			if family == "confbench_breaker_state" && gatewayOwned(labels) && labels["tee"] == t {
				breakers[breakerStateName(v)]++
			}
		}
		var hits, misses uint64
		for id, v := range cs.Merged.Counters {
			family, labels := obs.ParseMetricID(id)
			if !gatewayOwned(labels) || labels["tee"] != t {
				continue
			}
			switch family {
			case "confbench_warm_hits_total":
				hits += v
			case "confbench_warm_misses_total":
				misses += v
			}
		}
		warm := "-"
		if hits+misses > 0 {
			warm = fmt.Sprintf("%.1f", 100*float64(hits)/float64(hits+misses))
		}
		fmt.Fprintf(&b, "%-10s %9.2f %11s %11s %-22s %6s %-14s\n",
			t, rate,
			time.Duration(p50*float64(time.Second)).Round(time.Microsecond),
			time.Duration(p99*float64(time.Second)).Round(time.Microsecond),
			breakerSummary(breakers), warm, alertCell(statuses, t))
	}
	fmt.Fprintf(&b, "hosts: %d", len(cs.Hosts))
	if len(cs.ScrapeErrors) > 0 {
		fmt.Fprintf(&b, " (scrape errors: %d)", len(cs.ScrapeErrors))
	}
	if r, ok := cs.Rates[obs.RateInvokesPerSec]; ok {
		fmt.Fprintf(&b, "  cluster invokes/sec: %.2f", r)
	}
	b.WriteByte('\n')
	return b.String()
}

// breakerSummary renders breaker counts as "N closed, M open".
func breakerSummary(counts map[string]int) string {
	if len(counts) == 0 {
		return "-"
	}
	parts := make([]string, 0, len(counts))
	for _, state := range []string{"closed", "half-open", "open"} {
		if n := counts[state]; n > 0 {
			parts = append(parts, fmt.Sprintf("%d %s", n, state))
		}
	}
	return strings.Join(parts, ", ")
}
