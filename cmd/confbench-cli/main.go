// Command confbench-cli is the user-side client of the ConfBench
// gateway: it uploads functions and submits execution requests,
// printing the results with the piggybacked perf metrics.
//
// Usage:
//
//	confbench-cli -gateway URL [-tenant NAME] upload -name NAME -lang LANG -workload W
//	confbench-cli -gateway URL [-tenant NAME] invoke -name NAME [-tee KIND] [-secure] [-scale N] [-async]
//	confbench-cli -gateway URL functions
//	confbench-cli -gateway URL obs [-json]
//	confbench-cli -gateway URL top [-interval D] [-count N] [-window N]
//	confbench-cli -gateway URL alerts [-json]
//	confbench-cli -gateway URL pools
//	confbench-cli -gateway URL attest -tee KIND
//	confbench-cli -gateway URL drain HOST
package main

import (
	"context"
	"crypto/rand"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"time"

	"confbench/internal/api"
	"confbench/internal/faas"
	"confbench/internal/tee"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "confbench-cli:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("confbench-cli", flag.ContinueOnError)
	gatewayURL := fs.String("gateway", "http://127.0.0.1:8080", "gateway base URL")
	tenant := fs.String("tenant", "", "tenant identity stamped on every request (front-tier admission quotas key on it)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		return fmt.Errorf("missing subcommand: upload, invoke, functions, pools, metrics, obs, top, alerts, attest, drain")
	}
	var opts []api.Option
	if *tenant != "" {
		opts = append(opts, api.WithTenant(*tenant))
	}
	client, err := api.New(*gatewayURL, opts...)
	if err != nil {
		return err
	}

	switch rest[0] {
	case "upload":
		return cmdUpload(ctx, client, rest[1:])
	case "invoke":
		return cmdInvoke(ctx, client, rest[1:])
	case "functions":
		names, err := client.Functions(ctx)
		if err != nil {
			return err
		}
		for _, n := range names {
			fmt.Println(n)
		}
		return nil
	case "metrics":
		m, err := client.Metrics(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("uptime:       %.1fs\n", m.UptimeSeconds)
		fmt.Printf("invocations:  %d\n", m.Invocations)
		fmt.Printf("attestations: %d\n", m.Attestations)
		fmt.Printf("errors:       %d\n", m.Errors)
		for pool, n := range m.PerPool {
			fmt.Printf("  pool %-10s %d\n", pool, n)
		}
		return nil
	case "pools":
		pools, err := client.Pools(ctx)
		if err != nil {
			return err
		}
		for _, p := range pools {
			fmt.Printf("%-10s endpoints=%d policy=%s in-flight=%d\n",
				p.TEE, p.Endpoints, p.Policy, p.InFlight)
		}
		return nil
	case "obs":
		return cmdObs(ctx, client, rest[1:])
	case "top":
		return cmdTop(ctx, client, rest[1:])
	case "alerts":
		return cmdAlerts(ctx, client, rest[1:])
	case "attest":
		return cmdAttest(ctx, client, rest[1:])
	case "drain":
		return cmdDrain(ctx, client, rest[1:])
	default:
		return fmt.Errorf("unknown subcommand %q", rest[0])
	}
}

func cmdUpload(ctx context.Context, client *api.Client, args []string) error {
	fs := flag.NewFlagSet("upload", flag.ContinueOnError)
	name := fs.String("name", "", "function name")
	lang := fs.String("lang", "go", "implementation language")
	workload := fs.String("workload", "", "catalog workload the function performs")
	source := fs.String("source", "", "optional source file to attach")
	if err := fs.Parse(args); err != nil {
		return err
	}
	fn := faas.Function{Name: *name, Language: *lang, Workload: *workload}
	if *source != "" {
		data, err := os.ReadFile(*source)
		if err != nil {
			return fmt.Errorf("read source: %w", err)
		}
		fn.Source = data
	}
	if err := client.Upload(ctx, fn); err != nil {
		return err
	}
	fmt.Printf("registered %q (%s, workload %s)\n", fn.Name, fn.Language, fn.Workload)
	return nil
}

func cmdInvoke(ctx context.Context, client *api.Client, args []string) error {
	fs := flag.NewFlagSet("invoke", flag.ContinueOnError)
	name := fs.String("name", "", "function name")
	teeKind := fs.String("tee", "", "TEE platform (tdx, sev-snp, cca)")
	secure := fs.Bool("secure", false, "run in a confidential VM")
	scale := fs.Int("scale", 0, "workload scale (0 = default)")
	async := fs.Bool("async", false, "submit via the front tier's async path and poll for the result")
	if err := fs.Parse(args); err != nil {
		return err
	}
	req := api.InvokeRequest{
		Function: *name,
		TEE:      tee.Kind(*teeKind),
		Secure:   *secure,
		Scale:    *scale,
	}
	start := time.Now()
	var resp api.InvokeResponse
	var err error
	if *async {
		sub, serr := client.InvokeAsync(ctx, req)
		if serr != nil {
			return serr
		}
		fmt.Printf("submitted:  %s (%s)\n", sub.ID, sub.Status)
		resp, err = client.AwaitResult(ctx, sub.ID, 0)
	} else {
		resp, err = client.Invoke(ctx, req)
	}
	if err != nil {
		return err
	}
	fmt.Printf("output:     %s\n", resp.Output)
	fmt.Printf("ran on:     %s / %s (secure=%v, platform=%s)\n", resp.Host, resp.VM, resp.Secure, resp.Platform)
	fmt.Printf("exec time:  %v (runtime bootstrap %v, request round trip %v)\n",
		resp.Wall(), time.Duration(resp.BootstrapNs), time.Since(start))
	fmt.Printf("perf:\n%s\n", resp.Perf)
	return nil
}

// cmdObs dumps the gateway's observability registry: every counter
// and gauge, and each latency histogram's count and mean.
func cmdObs(ctx context.Context, client *api.Client, args []string) error {
	fs := flag.NewFlagSet("obs", flag.ContinueOnError)
	asJSON := fs.Bool("json", false, "print the raw JSON snapshot")
	if err := fs.Parse(args); err != nil {
		return err
	}
	snap, err := client.Obs(ctx)
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(snap)
	}
	ids := make([]string, 0, len(snap.Counters))
	for id := range snap.Counters {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		fmt.Printf("%-70s %d\n", id, snap.Counters[id])
	}
	ids = ids[:0]
	for id := range snap.Gauges {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		fmt.Printf("%-70s %d\n", id, snap.Gauges[id])
	}
	ids = ids[:0]
	for id := range snap.Histograms {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		h := snap.Histograms[id]
		mean := 0.0
		if h.Count > 0 {
			mean = h.SumSeconds / float64(h.Count)
		}
		fmt.Printf("%-70s count=%d mean=%.6fs\n", id, h.Count, mean)
	}
	return nil
}

// cmdDrain asks the deployment to drain a host: quiesce its
// endpoints, live-migrate its serving and warm guests to a surviving
// host of the same platform, and remove it from the ring.
func cmdDrain(ctx context.Context, client *api.Client, args []string) error {
	if len(args) != 1 || args[0] == "" {
		return fmt.Errorf("usage: drain HOST")
	}
	report, err := client.DrainHost(ctx, args[0])
	if err != nil {
		return err
	}
	mode := "live-migrating"
	if report.RoutingOnly {
		mode = "routing-only"
	}
	fmt.Printf("drained:    %s (%s, %s)\n", report.Host, report.TEE, mode)
	fmt.Printf("endpoints:  quiesced %d, removed %d\n", report.Quiesced, report.Removed)
	for _, m := range report.Migrations {
		fmt.Printf("  guest %-16s %-12s downtime %-14v resumes %d  bytes %d\n",
			m.Guest, m.Outcome, time.Duration(m.DowntimeNs), m.Resumes, m.TransferredBytes)
	}
	return nil
}

func cmdAttest(ctx context.Context, client *api.Client, args []string) error {
	fs := flag.NewFlagSet("attest", flag.ContinueOnError)
	teeKind := fs.String("tee", "tdx", "TEE platform (tdx, sev-snp)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	nonce := make([]byte, 64)
	if _, err := rand.Read(nonce); err != nil {
		return err
	}
	resp, err := client.Attest(ctx, api.AttestRequest{TEE: tee.Kind(*teeKind), Nonce: nonce})
	if err != nil {
		return err
	}
	fmt.Printf("evidence:   %d bytes\n", len(resp.Evidence))
	fmt.Printf("attest:     %v\n", time.Duration(resp.AttestNs))
	return nil
}
