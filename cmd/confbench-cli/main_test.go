package main

import (
	"context"
	"testing"
)

func TestRunValidation(t *testing.T) {
	if err := run(context.Background(), nil); err == nil {
		t.Error("missing subcommand accepted")
	}
	if err := run(context.Background(), []string{"frobnicate"}); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := run(context.Background(), []string{"-bogus"}); err == nil {
		t.Error("bad flag accepted")
	}
	// Connection-refused paths: every subcommand must surface an
	// error, not hang, when the gateway is down.
	for _, sub := range [][]string{
		{"functions"}, {"pools"}, {"metrics"},
		{"invoke", "-name", "x"},
		{"upload", "-name", "x", "-workload", "w"},
		{"attest", "-tee", "tdx"},
	} {
		args := append([]string{"-gateway", "http://127.0.0.1:1"}, sub...)
		if err := run(context.Background(), args); err == nil {
			t.Errorf("%v: expected connection error", sub)
		}
	}
}

func TestUploadMissingSource(t *testing.T) {
	err := run(context.Background(), []string{"-gateway", "http://127.0.0.1:1",
		"upload", "-name", "x", "-workload", "w", "-source", "/no/such/file.py"})
	if err == nil {
		t.Error("missing source file accepted")
	}
}
