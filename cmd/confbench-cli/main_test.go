package main

import (
	"context"
	"testing"

	"confbench"
)

func TestRunValidation(t *testing.T) {
	if err := run(context.Background(), nil); err == nil {
		t.Error("missing subcommand accepted")
	}
	if err := run(context.Background(), []string{"frobnicate"}); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := run(context.Background(), []string{"-bogus"}); err == nil {
		t.Error("bad flag accepted")
	}
	// Connection-refused paths: every subcommand must surface an
	// error, not hang, when the gateway is down.
	for _, sub := range [][]string{
		{"functions"}, {"pools"}, {"metrics"},
		{"invoke", "-name", "x"},
		{"upload", "-name", "x", "-workload", "w"},
		{"attest", "-tee", "tdx"},
		{"drain", "some-host"},
	} {
		args := append([]string{"-gateway", "http://127.0.0.1:1"}, sub...)
		if err := run(context.Background(), args); err == nil {
			t.Errorf("%v: expected connection error", sub)
		}
	}
}

// TestAsyncInvokeAgainstFrontTier drives upload and -async invoke with
// a -tenant stamp through a real sharded deployment.
func TestAsyncInvokeAgainstFrontTier(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a sharded cluster")
	}
	cluster, err := confbench.New(
		confbench.WithGuestMemoryMB(4),
		confbench.WithShards(2),
		confbench.WithTEEs(confbench.KindSEV),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	ctx := context.Background()
	base := []string{"-gateway", cluster.GatewayURL(), "-tenant", "acme"}
	if err := run(ctx, append(base, "upload", "-name", "cli-async", "-workload", "cpustress")); err != nil {
		t.Fatalf("upload: %v", err)
	}
	if err := run(ctx, append(base, "invoke", "-name", "cli-async", "-tee", "sev-snp", "-async")); err != nil {
		t.Fatalf("async invoke: %v", err)
	}
}

// TestDrainSubcommand drains one of two warm-pooled SEV hosts through
// the gateway's POST /v1/drain and expects the CLI to succeed, then
// rejects a second drain (last host) and a bogus host name.
func TestDrainSubcommand(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a two-host cluster")
	}
	cluster, err := confbench.New(
		confbench.WithGuestMemoryMB(4),
		confbench.WithTEEs(confbench.KindSEV),
		confbench.WithHostsPerTEE(2),
		confbench.WithWarmPool(2),
		confbench.WithObsRegistry(confbench.NewObsRegistry()),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	ctx := context.Background()
	base := []string{"-gateway", cluster.GatewayURL()}
	if err := run(ctx, append(base, "drain")); err == nil {
		t.Error("drain without a host accepted")
	}
	if err := run(ctx, append(base, "drain", "no-such-host")); err == nil {
		t.Error("drain of unknown host accepted")
	}
	if err := run(ctx, append(base, "drain", "sev-snp-host")); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := run(ctx, append(base, "drain", "sev-snp-host-2")); err == nil {
		t.Error("drain of the last host accepted")
	}
}

func TestUploadMissingSource(t *testing.T) {
	err := run(context.Background(), []string{"-gateway", "http://127.0.0.1:1",
		"upload", "-name", "x", "-workload", "w", "-source", "/no/such/file.py"})
	if err == nil {
		t.Error("missing source file accepted")
	}
}
