package main

import (
	"strings"
	"testing"
	"time"

	"confbench/internal/obs"
)

// TestRenderTop pins the cluster table against a synthetic federated
// snapshot: rates come from the client-side series, percentiles from
// the merged histogram, and only gateway-owned entries count.
func TestRenderTop(t *testing.T) {
	checkouts := obs.MetricID("confbench_pool_checkouts_total", "host", "gateway", "tee", "tdx")
	merged := obs.Snapshot{
		Counters: map[string]uint64{
			checkouts: 20,
			// Same counter under a scrape host: must not add a row.
			obs.MetricID("confbench_pool_checkouts_total", "host", "tdx-host", "tee", "tdx"): 20,
			obs.MetricID("confbench_warm_hits_total", "host", "gateway", "tee", "tdx"):       3,
			obs.MetricID("confbench_warm_misses_total", "host", "gateway", "tee", "tdx"):     1,
		},
		Gauges: map[string]int64{
			obs.MetricID("confbench_breaker_state", "endpoint", "a", "host", "gateway", "tee", "tdx"): 0,
			obs.MetricID("confbench_breaker_state", "endpoint", "b", "host", "gateway", "tee", "tdx"): 1,
		},
		Histograms: map[string]obs.HistogramSnapshot{
			obs.MetricID("confbench_invoke_seconds", "host", "gateway", "tee", "tdx"): {
				Bounds:     []float64{0.001, 0.01, 0.1},
				Counts:     []uint64{8, 2, 0, 0},
				SumSeconds: 0.02,
				Count:      10,
			},
		},
	}
	cs := obs.ClusterSnapshot{
		Hosts:        []string{"gateway", "tdx-host"},
		ScrapeErrors: map[string]string{"dead-host": "connection refused"},
		Rates:        map[string]float64{obs.RateInvokesPerSec: 5.5},
		Merged:       merged,
	}

	set := obs.NewSeriesSet(8)
	t0 := time.Unix(1000, 0)
	before := merged
	before.Counters = map[string]uint64{checkouts: 10}
	set.RecordSnapshot(t0, before)
	set.RecordSnapshot(t0.Add(time.Second), merged)

	out := renderTop(cs, set, 8)
	for _, want := range []string{
		"TEE", "tdx",
		"10.00",              // (20-10)/1s from the series
		"1 closed, 1 open",   // breaker summary
		"75.0",               // warm hit ratio 3/(3+1)
		"hosts: 2",           // scraped hosts
		"(scrape errors: 1)", // dead target surfaced
		"cluster invokes/sec: 5.50",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("renderTop output missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "tdx") != 1 {
		t.Fatalf("expected exactly one tdx row (gateway-owned only):\n%s", out)
	}
}

// TestBreakerStateName pins the gauge-value → label mapping.
func TestBreakerStateName(t *testing.T) {
	for v, want := range map[int64]string{0: "closed", 1: "open", 2: "half-open", 7: "closed"} {
		if got := breakerStateName(v); got != want {
			t.Fatalf("breakerStateName(%d) = %q, want %q", v, got, want)
		}
	}
}
