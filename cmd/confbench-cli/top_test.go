package main

import (
	"strings"
	"testing"
	"time"

	"confbench/internal/obs"
	"confbench/internal/slo"
)

// TestRenderTop pins the cluster table against a synthetic federated
// snapshot: rates come from the client-side series, percentiles from
// the merged histogram, and only gateway-owned entries count.
func TestRenderTop(t *testing.T) {
	checkouts := obs.MetricID("confbench_pool_checkouts_total", "host", "gateway", "tee", "tdx")
	merged := obs.Snapshot{
		Counters: map[string]uint64{
			checkouts: 20,
			// Same counter under a scrape host: must not add a row.
			obs.MetricID("confbench_pool_checkouts_total", "host", "tdx-host", "tee", "tdx"): 20,
			obs.MetricID("confbench_warm_hits_total", "host", "gateway", "tee", "tdx"):       3,
			obs.MetricID("confbench_warm_misses_total", "host", "gateway", "tee", "tdx"):     1,
		},
		Gauges: map[string]int64{
			obs.MetricID("confbench_breaker_state", "endpoint", "a", "host", "gateway", "tee", "tdx"): 0,
			obs.MetricID("confbench_breaker_state", "endpoint", "b", "host", "gateway", "tee", "tdx"): 1,
		},
		Histograms: map[string]obs.HistogramSnapshot{
			obs.MetricID("confbench_invoke_seconds", "host", "gateway", "tee", "tdx"): {
				Bounds:     []float64{0.001, 0.01, 0.1},
				Counts:     []uint64{8, 2, 0, 0},
				SumSeconds: 0.02,
				Count:      10,
			},
		},
	}
	cs := obs.ClusterSnapshot{
		Hosts:        []string{"gateway", "tdx-host"},
		ScrapeErrors: map[string]string{"dead-host": "connection refused"},
		Rates:        map[string]float64{obs.RateInvokesPerSec: 5.5},
		Merged:       merged,
	}

	set := obs.NewSeriesSet(8)
	t0 := time.Unix(1000, 0)
	before := merged
	before.Counters = map[string]uint64{checkouts: 10}
	set.RecordSnapshot(t0, before)
	set.RecordSnapshot(t0.Add(time.Second), merged)

	statuses := []slo.Status{
		{Objective: "avail", Kind: slo.KindAvailability, State: slo.StateWarn, BurnShort: 6.4},
		{Objective: "tdx-lat", Kind: slo.KindLatency, TEE: "tdx", State: slo.StateFiring, BurnShort: 28.6},
		{Objective: "sev-lat", Kind: slo.KindLatency, TEE: "sev-snp", State: slo.StateOK},
	}
	out := renderTop(cs, set, 8, statuses)
	for _, want := range []string{
		"TEE", "tdx",
		"ALERT",              // new SLO column header
		"firing 28.6x",       // worst matching objective for tdx wins
		"10.00",              // (20-10)/1s from the series
		"1 closed, 1 open",   // breaker summary
		"75.0",               // warm hit ratio 3/(3+1)
		"hosts: 2",           // scraped hosts
		"(scrape errors: 1)", // dead target surfaced
		"cluster invokes/sec: 5.50",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("renderTop output missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "\ntdx") != 1 {
		t.Fatalf("expected exactly one tdx row (gateway-owned only):\n%s", out)
	}

	// Against a pre-SLO gateway (no statuses) the column is blank and
	// the table still renders.
	blank := renderTop(cs, set, 8, nil)
	if !strings.Contains(blank, "ALERT") {
		t.Fatalf("header must keep the ALERT column:\n%s", blank)
	}
	if strings.Contains(blank, "firing") || strings.Contains(blank, "warn") {
		t.Fatalf("no statuses must render no alert states:\n%s", blank)
	}
}

// TestAlertCell pins the per-TEE summarization: TEE-selective
// objectives only match their platform, global ones match every row,
// and the worst state wins.
func TestAlertCell(t *testing.T) {
	statuses := []slo.Status{
		{Objective: "avail", State: slo.StateWarn, BurnShort: 6.45},
		{Objective: "tdx-lat", TEE: "tdx", State: slo.StateFiring, BurnShort: 28.6},
	}
	if got := alertCell(statuses, "tdx"); got != "firing 28.6x" {
		t.Errorf("tdx cell = %q, want \"firing 28.6x\"", got)
	}
	if got := alertCell(statuses, "sev-snp"); got != "warn 6.5x" {
		t.Errorf("sev cell = %q, want the global objective's \"warn 6.5x\"", got)
	}
	if got := alertCell(nil, "tdx"); got != "" {
		t.Errorf("no statuses = %q, want blank", got)
	}
	if got := alertCell([]slo.Status{{Objective: "x", TEE: "cca", State: slo.StateOK}}, "tdx"); got != "-" {
		t.Errorf("no matching objective = %q, want \"-\"", got)
	}
	if got := alertCell([]slo.Status{{Objective: "x", State: slo.StateOK}}, "tdx"); got != "ok" {
		t.Errorf("ok objective = %q, want \"ok\"", got)
	}
}

// TestRenderAlerts pins the alerts subcommand's table and timeline.
func TestRenderAlerts(t *testing.T) {
	statuses := []slo.Status{
		{Objective: "avail", Kind: slo.KindAvailability, Target: "success>=99%",
			State: slo.StateFiring, BurnShort: 28.57, BurnLong: 18.18, BudgetRemaining: -1.857},
		{Objective: "tdx-lat", Kind: slo.KindLatency, Target: "p99<250ms", TEE: "tdx",
			State: slo.StateOK, BudgetRemaining: 1},
	}
	timeline := []slo.Transition{
		{Objective: "avail", From: slo.StateOK, To: slo.StateWarn,
			AtUnixNs: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC).UnixNano(),
			Trace:    "inv-31", Detail: "ok->warn short=6.45x long=3.28x budget=0.871"},
		{Objective: "avail", From: slo.StateWarn, To: slo.StateFiring,
			AtUnixNs: time.Date(2026, 8, 8, 12, 0, 10, 0, time.UTC).UnixNano(),
			Detail:   "warn->firing short=28.57x long=18.18x budget=-1.857"},
	}
	out := renderAlerts(statuses, timeline)
	for _, want := range []string{
		"OBJECTIVE", "BURN(S)", "BUDGET",
		"avail", "firing", "28.57x", "-185.7%",
		"tdx-lat[tdx]", "p99<250ms",
		"timeline:",
		"2026-08-08T12:00:00Z", "ok->warn", "trace=inv-31",
		"2026-08-08T12:00:10Z", "warn->firing", "trace=-",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("renderAlerts missing %q:\n%s", want, out)
		}
	}
	if got := renderAlerts(nil, nil); !strings.Contains(got, "no SLO objectives") {
		t.Errorf("empty statuses = %q", got)
	}
	if got := renderAlerts(statuses, nil); !strings.Contains(got, "no alert transitions") {
		t.Errorf("empty timeline missing notice:\n%s", got)
	}
}

// TestBreakerStateName pins the gauge-value → label mapping.
func TestBreakerStateName(t *testing.T) {
	for v, want := range map[int64]string{0: "closed", 1: "open", 2: "half-open", 7: "closed"} {
		if got := breakerStateName(v); got != want {
			t.Fatalf("breakerStateName(%d) = %q, want %q", v, got, want)
		}
	}
}
