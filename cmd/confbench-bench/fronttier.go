package main

import (
	"context"
	"fmt"
	"strings"

	"confbench"
	"confbench/internal/obs"
)

// fronttierReport boots a sharded cluster and drives a seeded
// invocation mix through the front tier — synchronous or, with async,
// through the submit→poll path — then renders the aggregate: routing
// distribution across shards, admission sheds, and total virtual
// wall. Everything reported is virtual time or deterministic
// counters, and the invocations run serially, so the same seed yields
// a bit-identical report.
func fronttierReport(ctx context.Context, seed int64, shards, invokes int, tenant string, async bool, transport string) (string, error) {
	reg := confbench.NewObsRegistry()
	cluster, err := confbench.New(
		confbench.WithSeed(seed),
		confbench.WithGuestMemoryMB(16),
		confbench.WithShards(shards),
		confbench.WithTransport(transport),
		confbench.WithObsRegistry(reg),
	)
	if err != nil {
		return "", err
	}
	defer cluster.Close()

	var opts []confbench.ClientOption
	if tenant != "" {
		opts = append(opts, confbench.WithClientTenant(tenant))
	}
	client, err := confbench.NewClient(cluster.GatewayURL(), opts...)
	if err != nil {
		return "", err
	}

	// Several functions spread the route keys around the ring, so the
	// routing distribution below exercises more than one shard.
	const functions = 6
	names := make([]string, functions)
	for i := range names {
		names[i] = fmt.Sprintf("ft-%d", i)
		fn := confbench.Function{Name: names[i], Language: "go", Workload: "cpustress"}
		if err := client.Upload(ctx, fn); err != nil {
			return "", err
		}
	}

	kinds := cluster.Kinds()
	var ok, failed int
	var totalWallNs int64
	for i := 0; i < invokes; i++ {
		req := confbench.InvokeRequest{
			Function: names[i%functions],
			Secure:   i%2 == 0,
			TEE:      kinds[i%len(kinds)],
			Scale:    1,
		}
		var resp confbench.InvokeResponse
		if async {
			sub, err := client.InvokeAsync(ctx, req)
			if err == nil {
				resp, err = client.AwaitResult(ctx, sub.ID, 0)
			}
			if err != nil {
				failed++
				continue
			}
		} else {
			resp, err = client.Invoke(ctx, req)
			if err != nil {
				failed++
				continue
			}
		}
		ok++
		totalWallNs += resp.WallNs
	}

	mode := "sync"
	if async {
		mode = "async submit→poll"
	}
	if tenant == "" {
		tenant = confbench.TenantDefault
	}
	var b strings.Builder
	fmt.Fprintf(&b, "=== Front-tier bench (seed %d, %d shards, %s) ===\n", seed, shards, mode)
	fmt.Fprintf(&b, "tenant: %s   functions: %d   invokes: %d   ok: %d   failed: %d\n",
		tenant, functions, invokes, ok, failed)
	fmt.Fprintf(&b, "total virtual wall: %dns\n", totalWallNs)

	snap := reg.Snapshot()
	fmt.Fprintf(&b, "shard routing:\n")
	for _, name := range cluster.ShardNames() {
		n := snap.Counters[obs.MetricID("confbench_fronttier_invokes_total", "shard", name)]
		fmt.Fprintf(&b, "  %-10s %d\n", name, n)
	}
	var sheds uint64
	for id, v := range snap.Counters {
		if strings.HasPrefix(id, "confbench_fronttier_sheds_total") {
			sheds += v
		}
	}
	fmt.Fprintf(&b, "sheds: %d   failovers: %d   async pending after drain: %d\n",
		sheds,
		snap.Counters[obs.MetricID("confbench_fronttier_failovers_total")],
		snap.Gauges[obs.MetricID("confbench_fronttier_async_pending")])
	return b.String(), nil
}
