package main

import (
	"context"
	"testing"
)

// TestMigrationReportDeterministic pins the -fig migration acceptance
// properties: the same seed renders a bit-identical report, every
// platform's live-migrate downtime beats the cold boot a failover
// would pay, each drain moved the serving guest plus the warm-pool
// idle set, and the post-drain invoke kept serving.
func TestMigrationReportDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("boots two full two-hosts-per-TEE clusters")
	}
	ctx := context.Background()

	out1, rows, err := migrationReport(ctx, 42, 16)
	if err != nil {
		t.Fatal(err)
	}
	out2, _, err := migrationReport(ctx, 42, 16)
	if err != nil {
		t.Fatal(err)
	}
	if out1 != out2 {
		t.Errorf("same-seed reports differ:\n--- first ---\n%s\n--- second ---\n%s", out1, out2)
	}

	if len(rows) != 3 {
		t.Fatalf("got %d rows, want one per TEE", len(rows))
	}
	for _, r := range rows {
		if r.Downtime <= 0 {
			t.Errorf("%s: non-positive downtime %v", r.Kind, r.Downtime)
		}
		if r.Downtime >= r.ColdBoot {
			t.Errorf("%s: live-migrate downtime %v not below cold boot %v", r.Kind, r.Downtime, r.ColdBoot)
		}
		if r.Migrated != 2 {
			t.Errorf("%s: migrated %d guests, want serving + 1 idle", r.Kind, r.Migrated)
		}
		if r.Bytes <= 0 {
			t.Errorf("%s: no stream bytes transferred", r.Kind)
		}
		if r.PostDrain <= 0 {
			t.Errorf("%s: post-drain invoke reported no wall time", r.Kind)
		}
	}

	// A different seed still satisfies the downtime bound — the
	// blackout is model-derived, not seed luck.
	_, rows2, err := migrationReport(ctx, 7, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows2 {
		if r.Downtime >= r.ColdBoot {
			t.Errorf("seed 7 %s: downtime %v not below cold boot %v", r.Kind, r.Downtime, r.ColdBoot)
		}
	}
}
