package main

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"confbench/internal/slo"
)

// TestRunSLOViolated pins the gate's failure mode: every host faulted
// means every invoke fails, the availability objective fires, and the
// run returns errSLOViolated (so main exits non-zero).
func TestRunSLOViolated(t *testing.T) {
	err := runSLO(context.Background(),
		"avail:availability:success>=99%:short=1:long=2",
		"hostagent.exec:error:1.0", 7, 30)
	if !errors.Is(err, errSLOViolated) {
		t.Fatalf("all-hosts fault must violate the SLO, got %v", err)
	}
}

// TestRunSLOMet pins the gate's success mode: a healthy run against a
// lenient objective exits clean.
func TestRunSLOMet(t *testing.T) {
	if err := runSLO(context.Background(),
		"avail:availability:success>=99%", "", 7, 30); err != nil {
		t.Fatalf("healthy run must meet the SLO, got %v", err)
	}
}

// TestRunSLOBadSpec pins early spec validation (no cluster boot).
func TestRunSLOBadSpec(t *testing.T) {
	if err := runSLO(context.Background(), "not-a-spec", "", 1, 1); err == nil {
		t.Fatal("malformed spec must fail")
	}
}

// TestSLOReport pins the error-budget table and timeline rendering.
func TestSLOReport(t *testing.T) {
	statuses := []slo.Status{
		{Objective: "avail", Kind: slo.KindAvailability, State: slo.StateFiring,
			BurnShort: 33.33, BurnLong: 23.33, BudgetRemaining: -2.1},
		{Objective: "lat", Kind: slo.KindLatency, TEE: "tdx", State: slo.StateOK, BudgetRemaining: 1},
	}
	timeline := []slo.Transition{{
		Objective: "avail", From: slo.StateOK, To: slo.StateFiring,
		AtUnixNs: time.Date(2026, 8, 8, 9, 0, 0, 0, time.UTC).UnixNano(),
		Detail:   "ok->firing short=33.33x long=23.33x budget=-2.100",
	}}
	out := sloReport("avail:availability:success>=99%", "hostagent.exec:error:1.0",
		7, 30, 30, statuses, timeline)
	for _, want := range []string{
		"=== SLO-gated run (seed 7) ===",
		"chaos:      hostagent.exec:error:1.0",
		"invokes: 30   client-visible failures: 30",
		"OBJECTIVE", "BURN(S)", "BUDGET",
		"avail", "firing", "33.33x", "-210.0%",
		"lat", "tdx", "ok",
		"timeline:", "2026-08-08T09:00:00Z", "ok->firing",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("sloReport missing %q:\n%s", want, out)
		}
	}
	if empty := sloReport("s", "", 1, 0, 0, nil, nil); !strings.Contains(empty, "no alert transitions") {
		t.Errorf("empty timeline missing notice:\n%s", empty)
	}
}
