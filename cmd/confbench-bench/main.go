// Command confbench-bench regenerates the paper's tables and figures
// on the simulated test bed and prints them as text.
//
// Usage:
//
//	confbench-bench [-fig all|3|dbms|4|5|6|7|8|colocation|storage|migration] [-trials N]
//	                [-scale-divisor N] [-size N] [-seed N] [-workers N]
//	                [-trace] [-chaos SPECS [-chaos-invokes N]] [-coldstart]
//	                [-shards N [-async] [-tenant NAME] [-invokes N]]
//	                [-durable-dir DIR] [-slo SPEC]
//
// With the defaults it runs the paper's full protocol (10 trials,
// full workload scales, speedtest size 100); pass -quick for a
// CI-sized run. -workers N schedules heatmap cells and per-image
// inferences over N concurrent workers (1, the default, keeps the
// bit-for-bit deterministic serial schedule). Ctrl-C cancels the run
// cleanly through the context plumbing. -trace runs one traced secure
// invocation per catalog workload through the gateway after the
// figures and prints the slowest span tree per workload — the full
// gateway → pool → relay → host agent → VM → TEE path with durations.
// -chaos SPECS skips the figures and runs a chaos drill instead: the
// specs are registered on a seeded fault plane, a two-hosts-per-TEE
// cluster is booted, and the report shows injected faults, gateway
// retries, and per-endpoint breaker states. -shards N (> 1) skips the
// figures and runs the front-tier bench: a seeded invocation mix is
// driven through N gateway shards — with -async through the
// submit→poll path, with -tenant stamped with that tenant identity —
// and the aggregate (routing distribution, sheds, total virtual wall)
// is bit-identical per seed. -fig storage (excluded from "all") prices
// the speedtest suite on the durable log-structured backend against
// the in-memory pager — write amplification and per-commit fsyncs,
// under each TEE's cost model. -fig migration (also excluded from
// "all") boots a two-hosts-per-TEE warm-pooled cluster, drains one
// host per platform mid-service — live-migrating its serving and warm
// guests behind the attestation gate — and reports the blackout
// window against the cold boot and warm restore it replaces, plus the
// transfer bill under each TEE's cost model.
// -durable-dir DIR roots the persistence
// plane: gateway telemetry spills (and replays) under DIR, and the
// storage figure keeps its speedtest logs there for inspection.
// -slo SPEC skips the figures and runs an SLO-gated drill: the
// objectives are evaluated every federation sweep while a seeded
// invocation mix (optionally under -chaos faults, -chaos-invokes of
// them) runs, the error-budget table and alert timeline are
// printed, and the command exits non-zero if any objective fired or
// overspent its budget — so CI can gate on "stays within SLO".
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"confbench"
	"confbench/internal/bench"
	"confbench/internal/profiler"
	"confbench/internal/tee"
	"confbench/internal/wire"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "confbench-bench:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("confbench-bench", flag.ContinueOnError)
	fig := fs.String("fig", "all", "figure to regenerate: all, 3, dbms, 4, 5, 6, 7, 8, colocation, storage, migration (storage and migration are not part of all)")
	trials := fs.Int("trials", 10, "independent trials per measurement point")
	scaleDiv := fs.Int("scale-divisor", 1, "divide workload scales by this factor")
	dbSize := fs.Int("size", 100, "speedtest relative size (speedtest1 --size)")
	images := fs.Int("images", 40, "ML dataset size")
	seed := fs.Int64("seed", 1, "deterministic noise seed")
	workers := fs.Int("workers", 1, "concurrent measurement units (1 = deterministic serial schedule)")
	quick := fs.Bool("quick", false, "CI-sized run (3 trials, scales ÷8, size 20, 10 images)")
	trace := fs.Bool("trace", false, "print the slowest traced span tree per workload")
	jsonPath := fs.String("json", "", "also write results as JSON to this file")
	chaos := fs.String("chaos", "", "run a chaos drill instead of figures: comma-separated fault specs, e.g. hostagent.exec:error:1.0:host=sev-host")
	sloSpec := fs.String("slo", "", `run an SLO-gated drill instead of figures: comma-separated objectives, e.g. "avail:availability:success>=99.9%"; composes with -chaos; exits non-zero on violation`)
	chaosInvokes := fs.Int("chaos-invokes", 100, "invocations in the chaos drill")
	coldstart := fs.Bool("coldstart", false, "run the cold-vs-warm start benchmark instead of figures")
	obsWindow := fs.Int("obs-window", 0, "print windowed cluster telemetry rates over this many scrape samples (0 = off)")
	shards := fs.Int("shards", 0, "run the front-tier bench instead of figures: deploy this many gateway shards (>1)")
	async := fs.Bool("async", false, "front-tier bench: drive invocations through the async submit→poll path")
	tenant := fs.String("tenant", "", "front-tier bench: stamp requests with this tenant identity")
	ftInvokes := fs.Int("invokes", 60, "front-tier bench: invocations to drive")
	transport := fs.String("transport", "", "pipeline hop carrier: httpjson (default) or binary (persistent multiplexed wire frames)")
	durableDir := fs.String("durable-dir", "", "root of the durable persistence plane: gateway telemetry spills here, and -fig storage keeps its speedtest logs here (empty = in-memory telemetry, throwaway storage logs)")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this address while the bench runs (empty = disabled)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !wire.ValidTransport(*transport) {
		return fmt.Errorf("unknown transport %q (want %q or %q)",
			*transport, wire.TransportHTTPJSON, wire.TransportBinary)
	}
	if *pprofAddr != "" {
		url, stopProf, err := profiler.Enable(*pprofAddr)
		if err != nil {
			return err
		}
		defer stopProf()
		fmt.Fprintln(os.Stderr, "pprof serving", url)
	}
	if *quick {
		*trials, *scaleDiv, *dbSize, *images = 3, 8, 20, 10
	}
	if *sloSpec != "" {
		return runSLO(ctx, *sloSpec, *chaos, *seed, *chaosInvokes)
	}
	if *chaos != "" {
		return runChaos(ctx, *chaos, *seed, *chaosInvokes, *obsWindow)
	}
	if *shards > 1 {
		out, err := fronttierReport(ctx, *seed, *shards, *ftInvokes, *tenant, *async, *transport)
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil
	}
	if *coldstart {
		out, _, err := coldstartReport(ctx, *seed, 16)
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil
	}
	// The migration figure boots its own two-hosts-per-TEE warm-pooled
	// cluster (it drains hosts mid-run), so it runs before — and
	// instead of — the shared single-host deployment below.
	if *fig == "migration" {
		out, _, err := migrationReport(ctx, *seed, 16)
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil
	}

	clusterOpts := []confbench.Option{
		confbench.WithSeed(*seed),
		confbench.WithGuestMemoryMB(16),
		confbench.WithWorkers(*workers),
		confbench.WithTransport(*transport),
	}
	if *durableDir != "" {
		clusterOpts = append(clusterOpts, confbench.WithDurableDir(*durableDir))
	}
	cluster, err := confbench.New(clusterOpts...)
	if err != nil {
		return err
	}
	defer cluster.Close()

	want := func(name string) bool { return *fig == "all" || *fig == name }
	opts := bench.Options{Trials: *trials, ScaleDivisor: *scaleDiv, Workers: *workers, Obs: cluster.Obs()}
	report := &bench.Report{Meta: map[string]any{
		"trials": *trials, "scale_divisor": *scaleDiv, "db_size": *dbSize,
		"images": *images, "seed": *seed, "workers": *workers,
	}}

	if want("3") {
		var results []bench.MLResult
		for _, kind := range cluster.Kinds() {
			pair, err := cluster.Pair(kind)
			if err != nil {
				return err
			}
			res, err := bench.ML(ctx, pair, bench.MLOptions{Images: *images, Workers: *workers, Obs: cluster.Obs()})
			if err != nil {
				return fmt.Errorf("fig 3 (%s): %w", kind, err)
			}
			results = append(results, res)
		}
		report.ML = results
		fmt.Println(bench.RenderML(results))
	}

	if want("dbms") {
		var results []bench.DBMSResult
		for _, kind := range cluster.Kinds() {
			pair, err := cluster.Pair(kind)
			if err != nil {
				return err
			}
			res, err := bench.DBMS(ctx, pair, bench.DBMSOptions{Size: *dbSize})
			if err != nil {
				return fmt.Errorf("dbms (%s): %w", kind, err)
			}
			results = append(results, res)
		}
		report.DBMS = results
		fmt.Println(bench.RenderDBMS(results))
	}

	// The storage figure runs only when asked for by name: it doubles
	// the speedtest work (memory + durable run per platform), so "all"
	// keeps the paper's original protocol.
	if *fig == "storage" {
		var results []bench.DBMSStorageResult
		for _, kind := range cluster.Kinds() {
			pair, err := cluster.Pair(kind)
			if err != nil {
				return err
			}
			res, err := bench.DBMSStorage(ctx, pair, bench.DBMSStorageOptions{Size: *dbSize, Dir: *durableDir})
			if err != nil {
				return fmt.Errorf("storage (%s): %w", kind, err)
			}
			results = append(results, res)
		}
		report.Storage = results
		fmt.Println(bench.RenderDBMSStorage(results))
	}

	if want("4") {
		var results []bench.UnixBenchResult
		for _, kind := range cluster.Kinds() {
			pair, err := cluster.Pair(kind)
			if err != nil {
				return err
			}
			scale := 1.0 / float64(*scaleDiv)
			res, err := bench.UnixBench(ctx, pair, bench.UnixBenchOptions{Scale: scale})
			if err != nil {
				return fmt.Errorf("fig 4 (%s): %w", kind, err)
			}
			results = append(results, res)
		}
		report.UnixBench = results
		fmt.Println(bench.RenderUnixBench(results))
	}

	if want("5") {
		var results []bench.AttestationResult
		ta, tv, err := cluster.TDXAttestation()
		if err != nil {
			return err
		}
		tdxRes, err := bench.Attestation(ctx, tee.KindTDX, ta, tv, *trials)
		if err != nil {
			return fmt.Errorf("fig 5 (tdx): %w", err)
		}
		results = append(results, tdxRes)
		sa, sv, err := cluster.SEVAttestation()
		if err != nil {
			return err
		}
		sevRes, err := bench.Attestation(ctx, tee.KindSEV, sa, sv, *trials)
		if err != nil {
			return fmt.Errorf("fig 5 (sev): %w", err)
		}
		results = append(results, sevRes)
		report.Attestation = results
		fmt.Println(bench.RenderAttestation(results))
	}

	heatmap := func(kind tee.Kind) error {
		pair, err := cluster.Pair(kind)
		if err != nil {
			return err
		}
		res, err := bench.FaaS(ctx, pair, cluster.Catalog(), bench.FaaSOptions{Options: opts})
		if err != nil {
			return fmt.Errorf("heatmap (%s): %w", kind, err)
		}
		report.FaaS = append(report.FaaS, res)
		fmt.Println(bench.RenderHeatmap(res))
		return nil
	}
	if want("6") {
		for _, kind := range bench.KindsTDXSEV {
			if err := heatmap(kind); err != nil {
				return err
			}
		}
	}
	if want("7") {
		if err := heatmap(tee.KindCCA); err != nil {
			return err
		}
	}

	if want("8") {
		pair, err := cluster.Pair(tee.KindCCA)
		if err != nil {
			return err
		}
		res, err := bench.FaaS(ctx, pair, cluster.Catalog(), bench.FaaSOptions{
			Options: bench.Options{Trials: 10, ScaleDivisor: *scaleDiv, Workers: *workers},
			Workloads: []string{
				"cpustress", "memstress", "iostress", "logging", "factors", "filesystem",
			},
		})
		if err != nil {
			return fmt.Errorf("fig 8: %w", err)
		}
		var rendered []string
		for _, lang := range res.Languages {
			out, err := bench.RenderBoxPlots(res, lang)
			if err != nil {
				return err
			}
			rendered = append(rendered, out)
		}
		fmt.Println(strings.Join(rendered, "\n"))
	}

	if want("colocation") {
		for _, kind := range cluster.Kinds() {
			backend, err := cluster.Backend(kind)
			if err != nil {
				return err
			}
			res, err := bench.CoLocation(ctx, backend, cluster.Catalog(), bench.CoLocationOptions{
				Tenants: 4, Trials: *trials,
			})
			if err != nil {
				return fmt.Errorf("colocation (%s): %w", kind, err)
			}
			report.CoLocation = append(report.CoLocation, res)
			fmt.Println(bench.RenderCoLocation(res))
		}
	}

	if *trace {
		if err := runTrace(ctx, cluster, *scaleDiv); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}

	if *obsWindow > 0 {
		if err := obsWindowReport(ctx, cluster.Client(), *obsWindow); err != nil {
			return fmt.Errorf("obs-window: %w", err)
		}
	}

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			return fmt.Errorf("create json report: %w", err)
		}
		defer f.Close()
		if err := report.WriteJSON(f); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote JSON report to %s\n", *jsonPath)
	}
	return nil
}

// runChaos boots a two-hosts-per-TEE cluster with the given fault
// specs registered on a seeded fault plane, fires invocations at the
// gateway, and reports what was injected and how the pools reacted —
// retries, breaker states, and the client-visible failure count.
// With a fault pinned to one host (e.g. host=sev-host) the run should
// end with zero failures: the breaker takes the faulted endpoint out
// of rotation and the dispatcher retries onto its healthy sibling.
func runChaos(ctx context.Context, spec string, seed int64, invokes, obsWindow int) error {
	specs, err := confbench.ParseFaultSpecs(spec)
	if err != nil {
		return err
	}
	plane := confbench.NewFaultPlane(seed)
	for _, s := range specs {
		if err := plane.Register(s); err != nil {
			return err
		}
	}
	cluster, err := confbench.New(
		confbench.WithSeed(seed),
		confbench.WithGuestMemoryMB(16),
		confbench.WithFaultPlane(plane),
		confbench.WithHostsPerTEE(2),
		// A long cooldown keeps tripped endpoints visibly open in the
		// final pool report instead of racing half-open probes.
		confbench.WithBreakerThreshold(0, 30*time.Second),
	)
	if err != nil {
		return err
	}
	defer cluster.Close()

	client := cluster.Client()
	fn := confbench.Function{Name: "chaos-cpustress", Language: "go", Workload: "cpustress"}
	if err := client.Upload(ctx, fn); err != nil {
		return err
	}
	kinds := cluster.Kinds()
	var failures int
	for i := 0; i < invokes; i++ {
		_, err := client.Invoke(ctx, confbench.InvokeRequest{
			Function: fn.Name,
			Secure:   i%2 == 0,
			TEE:      kinds[i%len(kinds)],
			Scale:    1,
		})
		if err != nil {
			failures++
			fmt.Fprintf(os.Stderr, "invoke %d failed: %v\n", i, err)
		}
	}

	fmt.Printf("=== Chaos drill (seed %d) ===\n", seed)
	fmt.Printf("specs:\n")
	for _, s := range plane.Specs() {
		fmt.Printf("  %s\n", s)
	}
	fmt.Printf("invokes: %d   client-visible failures: %d\n", invokes, failures)

	byPoint := map[string]int{}
	for _, inj := range plane.History() {
		byPoint[string(inj.Point)+":"+string(inj.Kind)]++
	}
	fmt.Printf("faults injected: %d\n", plane.Injected())
	for k, n := range byPoint {
		fmt.Printf("  %-28s %d\n", k, n)
	}

	snap, err := client.Obs(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("gateway retries: %d\n", snap.Counters["confbench_invoke_retries_total"])

	pools, err := client.Pools(ctx)
	if err != nil {
		return err
	}
	fmt.Println("pool health:")
	for _, p := range pools {
		fmt.Printf("  %-4s healthy %d/%d\n", p.TEE, p.Healthy, len(p.Members))
		for _, m := range p.Members {
			fmt.Printf("    %-14s vm=%-16s secure=%-5v breaker=%s\n", m.Host, m.VM, m.Secure, m.Breaker)
		}
	}
	if obsWindow > 0 {
		if err := obsWindowReport(ctx, client, obsWindow); err != nil {
			return fmt.Errorf("obs-window: %w", err)
		}
	}
	return nil
}

// runTrace sends one traced secure invocation per catalog workload to
// every platform and prints the slowest resulting span tree, i.e. the
// worst gateway → pool → relay-hop → host agent → VM → TEE path.
func runTrace(ctx context.Context, cluster *confbench.Cluster, scaleDiv int) error {
	client := cluster.Client()
	fmt.Println("=== Traced invocations (slowest span tree per workload) ===")
	for _, name := range cluster.Catalog().Names() {
		w, err := cluster.Catalog().Lookup(name)
		if err != nil {
			return err
		}
		fn := confbench.Function{Name: "trace-" + name, Language: "go", Workload: name}
		if err := client.Upload(ctx, fn); err != nil {
			return err
		}
		scale := w.DefaultScale / scaleDiv
		if scale < 1 {
			scale = 1
		}
		var slowest *confbench.InvokeResponse
		for _, kind := range cluster.Kinds() {
			resp, err := client.Invoke(ctx, confbench.InvokeRequest{
				Function: fn.Name, Secure: true, TEE: kind, Scale: scale, Trace: true,
			})
			if err != nil {
				return fmt.Errorf("%s on %s: %w", name, kind, err)
			}
			if slowest == nil || resp.WallNs > slowest.WallNs {
				slowest = &resp
			}
		}
		fmt.Printf("\n--- %s (slowest of %d platforms, virtual wall %v) ---\n",
			name, len(cluster.Kinds()), slowest.Wall())
		fmt.Print(confbench.RenderTrace(slowest.Trace))
	}
	return nil
}
