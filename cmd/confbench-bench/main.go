// Command confbench-bench regenerates the paper's tables and figures
// on the simulated test bed and prints them as text.
//
// Usage:
//
//	confbench-bench [-fig all|3|dbms|4|5|6|7|8|colocation] [-trials N]
//	                [-scale-divisor N] [-size N] [-seed N] [-workers N]
//	                [-trace]
//
// With the defaults it runs the paper's full protocol (10 trials,
// full workload scales, speedtest size 100); pass -quick for a
// CI-sized run. -workers N schedules heatmap cells and per-image
// inferences over N concurrent workers (1, the default, keeps the
// bit-for-bit deterministic serial schedule). Ctrl-C cancels the run
// cleanly through the context plumbing. -trace runs one traced secure
// invocation per catalog workload through the gateway after the
// figures and prints the slowest span tree per workload — the full
// gateway → pool → relay → host agent → VM → TEE path with durations.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"confbench"
	"confbench/internal/bench"
	"confbench/internal/tee"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "confbench-bench:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("confbench-bench", flag.ContinueOnError)
	fig := fs.String("fig", "all", "figure to regenerate: all, 3, dbms, 4, 5, 6, 7, 8, colocation")
	trials := fs.Int("trials", 10, "independent trials per measurement point")
	scaleDiv := fs.Int("scale-divisor", 1, "divide workload scales by this factor")
	dbSize := fs.Int("size", 100, "speedtest relative size (speedtest1 --size)")
	images := fs.Int("images", 40, "ML dataset size")
	seed := fs.Int64("seed", 1, "deterministic noise seed")
	workers := fs.Int("workers", 1, "concurrent measurement units (1 = deterministic serial schedule)")
	quick := fs.Bool("quick", false, "CI-sized run (3 trials, scales ÷8, size 20, 10 images)")
	trace := fs.Bool("trace", false, "print the slowest traced span tree per workload")
	jsonPath := fs.String("json", "", "also write results as JSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *quick {
		*trials, *scaleDiv, *dbSize, *images = 3, 8, 20, 10
	}

	cluster, err := confbench.New(
		confbench.WithSeed(*seed),
		confbench.WithGuestMemoryMB(16),
		confbench.WithWorkers(*workers),
	)
	if err != nil {
		return err
	}
	defer cluster.Close()

	want := func(name string) bool { return *fig == "all" || *fig == name }
	opts := bench.Options{Trials: *trials, ScaleDivisor: *scaleDiv, Workers: *workers, Obs: cluster.Obs()}
	report := &bench.Report{Meta: map[string]any{
		"trials": *trials, "scale_divisor": *scaleDiv, "db_size": *dbSize,
		"images": *images, "seed": *seed, "workers": *workers,
	}}

	if want("3") {
		var results []bench.MLResult
		for _, kind := range cluster.Kinds() {
			pair, err := cluster.Pair(kind)
			if err != nil {
				return err
			}
			res, err := bench.ML(ctx, pair, bench.MLOptions{Images: *images, Workers: *workers, Obs: cluster.Obs()})
			if err != nil {
				return fmt.Errorf("fig 3 (%s): %w", kind, err)
			}
			results = append(results, res)
		}
		report.ML = results
		fmt.Println(bench.RenderML(results))
	}

	if want("dbms") {
		var results []bench.DBMSResult
		for _, kind := range cluster.Kinds() {
			pair, err := cluster.Pair(kind)
			if err != nil {
				return err
			}
			res, err := bench.DBMS(ctx, pair, bench.DBMSOptions{Size: *dbSize})
			if err != nil {
				return fmt.Errorf("dbms (%s): %w", kind, err)
			}
			results = append(results, res)
		}
		report.DBMS = results
		fmt.Println(bench.RenderDBMS(results))
	}

	if want("4") {
		var results []bench.UnixBenchResult
		for _, kind := range cluster.Kinds() {
			pair, err := cluster.Pair(kind)
			if err != nil {
				return err
			}
			scale := 1.0 / float64(*scaleDiv)
			res, err := bench.UnixBench(ctx, pair, bench.UnixBenchOptions{Scale: scale})
			if err != nil {
				return fmt.Errorf("fig 4 (%s): %w", kind, err)
			}
			results = append(results, res)
		}
		report.UnixBench = results
		fmt.Println(bench.RenderUnixBench(results))
	}

	if want("5") {
		var results []bench.AttestationResult
		ta, tv, err := cluster.TDXAttestation()
		if err != nil {
			return err
		}
		tdxRes, err := bench.Attestation(ctx, tee.KindTDX, ta, tv, *trials)
		if err != nil {
			return fmt.Errorf("fig 5 (tdx): %w", err)
		}
		results = append(results, tdxRes)
		sa, sv, err := cluster.SEVAttestation()
		if err != nil {
			return err
		}
		sevRes, err := bench.Attestation(ctx, tee.KindSEV, sa, sv, *trials)
		if err != nil {
			return fmt.Errorf("fig 5 (sev): %w", err)
		}
		results = append(results, sevRes)
		report.Attestation = results
		fmt.Println(bench.RenderAttestation(results))
	}

	heatmap := func(kind tee.Kind) error {
		pair, err := cluster.Pair(kind)
		if err != nil {
			return err
		}
		res, err := bench.FaaS(ctx, pair, cluster.Catalog(), bench.FaaSOptions{Options: opts})
		if err != nil {
			return fmt.Errorf("heatmap (%s): %w", kind, err)
		}
		report.FaaS = append(report.FaaS, res)
		fmt.Println(bench.RenderHeatmap(res))
		return nil
	}
	if want("6") {
		for _, kind := range bench.KindsTDXSEV {
			if err := heatmap(kind); err != nil {
				return err
			}
		}
	}
	if want("7") {
		if err := heatmap(tee.KindCCA); err != nil {
			return err
		}
	}

	if want("8") {
		pair, err := cluster.Pair(tee.KindCCA)
		if err != nil {
			return err
		}
		res, err := bench.FaaS(ctx, pair, cluster.Catalog(), bench.FaaSOptions{
			Options: bench.Options{Trials: 10, ScaleDivisor: *scaleDiv, Workers: *workers},
			Workloads: []string{
				"cpustress", "memstress", "iostress", "logging", "factors", "filesystem",
			},
		})
		if err != nil {
			return fmt.Errorf("fig 8: %w", err)
		}
		var rendered []string
		for _, lang := range res.Languages {
			out, err := bench.RenderBoxPlots(res, lang)
			if err != nil {
				return err
			}
			rendered = append(rendered, out)
		}
		fmt.Println(strings.Join(rendered, "\n"))
	}

	if want("colocation") {
		for _, kind := range cluster.Kinds() {
			backend, err := cluster.Backend(kind)
			if err != nil {
				return err
			}
			res, err := bench.CoLocation(ctx, backend, cluster.Catalog(), bench.CoLocationOptions{
				Tenants: 4, Trials: *trials,
			})
			if err != nil {
				return fmt.Errorf("colocation (%s): %w", kind, err)
			}
			report.CoLocation = append(report.CoLocation, res)
			fmt.Println(bench.RenderCoLocation(res))
		}
	}

	if *trace {
		if err := runTrace(ctx, cluster, *scaleDiv); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			return fmt.Errorf("create json report: %w", err)
		}
		defer f.Close()
		if err := report.WriteJSON(f); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote JSON report to %s\n", *jsonPath)
	}
	return nil
}

// runTrace sends one traced secure invocation per catalog workload to
// every platform and prints the slowest resulting span tree, i.e. the
// worst gateway → pool → relay-hop → host agent → VM → TEE path.
func runTrace(ctx context.Context, cluster *confbench.Cluster, scaleDiv int) error {
	client := cluster.Client()
	fmt.Println("=== Traced invocations (slowest span tree per workload) ===")
	for _, name := range cluster.Catalog().Names() {
		w, err := cluster.Catalog().Lookup(name)
		if err != nil {
			return err
		}
		fn := confbench.Function{Name: "trace-" + name, Language: "go", Workload: name}
		if err := client.Upload(ctx, fn); err != nil {
			return err
		}
		scale := w.DefaultScale / scaleDiv
		if scale < 1 {
			scale = 1
		}
		var slowest *confbench.InvokeResponse
		for _, kind := range cluster.Kinds() {
			resp, err := client.Invoke(ctx, confbench.InvokeRequest{
				Function: fn.Name, Secure: true, TEE: kind, Scale: scale, Trace: true,
			})
			if err != nil {
				return fmt.Errorf("%s on %s: %w", name, kind, err)
			}
			if slowest == nil || resp.WallNs > slowest.WallNs {
				slowest = &resp
			}
		}
		fmt.Printf("\n--- %s (slowest of %d platforms, virtual wall %v) ---\n",
			name, len(cluster.Kinds()), slowest.Wall())
		fmt.Print(confbench.RenderTrace(slowest.Trace))
	}
	return nil
}
