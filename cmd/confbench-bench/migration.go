package main

import (
	"context"
	"fmt"
	"strings"
	"time"

	"confbench"
	"confbench/internal/meter"
	"confbench/internal/obs"
	"confbench/internal/tee"
)

// migrationRow is one platform's live-migration comparison: the cold
// boot a failed-over guest would pay, the warm restore a pool hit
// pays, and the blackout a live migration actually costs — plus the
// drain's transfer volume and its priced cost under the TEE's cost
// model.
type migrationRow struct {
	Kind      tee.Kind
	ColdBoot  time.Duration
	WarmBoot  time.Duration
	Downtime  time.Duration
	Migrated  int
	Resumes   int
	Bytes     int64
	XferCost  time.Duration
	PostDrain time.Duration
}

// migrationReport boots a two-hosts-per-TEE warm-pooled cluster,
// drains the first host of each platform mid-service (live-migrating
// its serving and warm guests to the surviving host), and renders the
// downtime-vs-cold-boot-vs-warm-restore comparison. The transfer is
// priced through the platform's cost model as bounce-buffered I/O on
// the surviving secure guest. Everything reported is virtual time or
// deterministic counters, so the same seed yields a bit-identical
// report.
func migrationReport(ctx context.Context, seed int64, memMB int) (string, []migrationRow, error) {
	reg := confbench.NewObsRegistry()
	// High 2 / low 1 as in the coldstart bench: each host's serving
	// acquire leaves idle exactly at the low watermark, so no
	// background refill races the run.
	cluster, err := confbench.New(
		confbench.WithSeed(seed),
		confbench.WithGuestMemoryMB(memMB),
		confbench.WithWarmPool(2),
		confbench.WithSnapshotCacheMB(256),
		confbench.WithHostsPerTEE(2),
		confbench.WithObsRegistry(reg),
	)
	if err != nil {
		return "", nil, err
	}
	defer cluster.Close()

	client := cluster.Client()
	fn := confbench.Function{Name: "migration-cpustress", Language: "go", Workload: "cpustress"}
	if err := client.Upload(ctx, fn); err != nil {
		return "", nil, err
	}

	var rows []migrationRow
	for _, kind := range cluster.Kinds() {
		backend, err := cluster.Backend(kind)
		if err != nil {
			return "", nil, err
		}

		// Cold probe: what a kill-and-reboot failover would cost.
		probe, err := backend.Launch(tee.GuestConfig{Name: "cold-probe", MemoryMB: memMB})
		if err != nil {
			return "", nil, fmt.Errorf("cold probe (%s): %w", kind, err)
		}
		row := migrationRow{Kind: kind, ColdBoot: probe.BootCost()}
		if err := probe.Destroy(); err != nil {
			return "", nil, err
		}

		// Warm restore: what a pool hit on the surviving host costs.
		pair, err := cluster.Pair(kind)
		if err != nil {
			return "", nil, err
		}
		row.WarmBoot = pair.Secure.Guest().BootCost()

		// Drain the platform's first host while the deployment serves.
		report, err := cluster.DrainHost(ctx, string(kind)+"-host")
		if err != nil {
			return "", nil, fmt.Errorf("drain (%s): %w", kind, err)
		}
		row.Migrated = len(report.Migrations)
		for i, m := range report.Migrations {
			if i == 0 {
				// The serving guest's blackout is the headline number.
				row.Downtime = time.Duration(m.DowntimeNs)
			}
			row.Resumes += m.Resumes
			row.Bytes += m.TransferredBytes
		}

		// Service check + transfer pricing on the surviving host: the
		// streamed bytes cross the secure boundary like bounce-buffered
		// writes, so the TEE's cost model prices the drain's I/O bill.
		resp, err := client.Invoke(ctx, confbench.InvokeRequest{
			Function: fn.Name, Secure: true, TEE: kind, Scale: 1,
		})
		if err != nil {
			return "", nil, fmt.Errorf("post-drain invoke (%s): %w", kind, err)
		}
		row.PostDrain = resp.Wall()
		survivor, err := cluster.Pair(kind)
		if err != nil {
			return "", nil, err
		}
		u := meter.Usage{meter.IOWriteBytes: uint64(row.Bytes)}
		charge := survivor.Secure.Guest().Price(u, backend.HostProfile().Cost(u))
		row.XferCost = charge.Total
		rows = append(rows, row)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "=== Live-migration benchmark (seed %d, %d MiB guests) ===\n", seed, memMB)
	fmt.Fprintf(&b, "%-8s %14s %14s %14s %10s %9s %9s %12s %14s\n",
		"tee", "cold boot", "warm restore", "migrate down", "down/cold", "migrated", "resumes", "bytes", "xfer cost")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %14v %14v %14v %9.3fx %9d %9d %12d %14v\n",
			r.Kind, r.ColdBoot, r.WarmBoot, r.Downtime,
			float64(r.Downtime)/float64(r.ColdBoot),
			r.Migrated, r.Resumes, r.Bytes, r.XferCost)
	}

	snap := reg.Snapshot()
	fmt.Fprintf(&b, "\nmigration metrics:\n")
	for _, kind := range []tee.Kind{tee.KindCCA, tee.KindSEV, tee.KindTDX} {
		k := string(kind)
		migrated := snap.Counters[obs.MetricID("confbench_migrations_total", "kind", k, "outcome", "migrated")]
		rolled := snap.Counters[obs.MetricID("confbench_migrations_total", "kind", k, "outcome", "rolled_back")]
		bytes := snap.Counters[obs.MetricID("confbench_migration_bytes_total", "kind", k)]
		fmt.Fprintf(&b, "  %-8s migrated %d  rolled back %d  stream bytes %d\n", kind, migrated, rolled, bytes)
	}
	return b.String(), rows, nil
}
