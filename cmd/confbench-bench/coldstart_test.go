package main

import (
	"context"
	"testing"
)

// TestColdstartReportDeterministic pins the headline acceptance
// property of the -coldstart mode: the same seed renders a
// bit-identical report, every platform's warm restore is at least 3x
// cheaper than its cold boot, and the warm pool actually served the
// benchmark (hits > 0 is asserted structurally via the rows having a
// warm boot at all — the rendered metrics block is covered by the
// string equality).
func TestColdstartReportDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("boots two full clusters")
	}
	ctx := context.Background()

	out1, rows, err := coldstartReport(ctx, 42, 16)
	if err != nil {
		t.Fatal(err)
	}
	out2, _, err := coldstartReport(ctx, 42, 16)
	if err != nil {
		t.Fatal(err)
	}
	if out1 != out2 {
		t.Errorf("same-seed reports differ:\n--- first ---\n%s\n--- second ---\n%s", out1, out2)
	}

	if len(rows) != 3 {
		t.Fatalf("got %d rows, want one per TEE", len(rows))
	}
	for _, r := range rows {
		if r.WarmBoot <= 0 || r.ColdBoot <= 0 {
			t.Errorf("%s: non-positive boot costs cold=%v warm=%v", r.Kind, r.ColdBoot, r.WarmBoot)
		}
		if r.ColdBoot < 3*r.WarmBoot {
			t.Errorf("%s: cold boot %v not >= 3x warm boot %v", r.Kind, r.ColdBoot, r.WarmBoot)
		}
	}

	// A different seed still satisfies the ratio bound (the costs are
	// model-derived, not sampled), guarding against seed-specific luck.
	_, rows2, err := coldstartReport(ctx, 7, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows2 {
		if r.ColdBoot < 3*r.WarmBoot {
			t.Errorf("seed 7 %s: cold boot %v not >= 3x warm boot %v", r.Kind, r.ColdBoot, r.WarmBoot)
		}
	}
}
