package main

import (
	"context"
	"strings"
	"testing"
)

// TestFronttierReportDeterministicPerSeed: the ISSUE's acceptance —
// the same seed drives a bit-identical front-tier aggregate through
// the async path, twice.
func TestFronttierReportDeterministicPerSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("boots two sharded clusters")
	}
	ctx := context.Background()
	first, err := fronttierReport(ctx, 7, 2, 12, "", true, "")
	if err != nil {
		t.Fatal(err)
	}
	second, err := fronttierReport(ctx, 7, 2, 12, "", true, "")
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatalf("same seed, different aggregates:\n--- first ---\n%s--- second ---\n%s", first, second)
	}
	if !strings.Contains(first, "ok: 12   failed: 0") {
		t.Fatalf("async run had failures:\n%s", first)
	}
	if !strings.Contains(first, "shard-0") || !strings.Contains(first, "shard-1") {
		t.Fatalf("report misses shard routing:\n%s", first)
	}
	if !strings.Contains(first, "async pending after drain: 0") {
		t.Fatalf("async backlog did not drain:\n%s", first)
	}
}

// TestFronttierReportTenantStamped: -tenant shows up in the header
// and the sync path works.
func TestFronttierReportTenantStamped(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a sharded cluster")
	}
	out, err := fronttierReport(context.Background(), 3, 2, 6, "acme", false, "binary")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "tenant: acme") || !strings.Contains(out, "ok: 6") {
		t.Fatalf("unexpected report:\n%s", out)
	}
}
