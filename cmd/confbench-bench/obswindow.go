package main

import (
	"context"
	"fmt"
	"sort"
	"time"

	"confbench/internal/api"
	"confbench/internal/obs"
)

// obsWindowReport fetches the federated cluster view twice and prints
// the windowed rates the scrape series derived: cluster invokes/sec,
// per-TEE checkout rates, and any scrape failures. Each fetch makes
// the gateway sweep its host agents, so the report works without a
// periodic scrape loop.
func obsWindowReport(ctx context.Context, client *api.Client, window int) error {
	set := obs.NewSeriesSet(window + 1)
	first, err := client.ObsCluster(ctx, window)
	if err != nil {
		return err
	}
	set.RecordSnapshot(time.Now(), first.Merged)
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-time.After(500 * time.Millisecond):
	}
	cs, err := client.ObsCluster(ctx, window)
	if err != nil {
		return err
	}
	set.RecordSnapshot(time.Now(), cs.Merged)

	fmt.Printf("=== Cluster telemetry (window %d samples) ===\n", window)
	fmt.Printf("hosts scraped: %d", len(cs.Hosts))
	if len(cs.ScrapeErrors) > 0 {
		fmt.Printf(" (%d failed)", len(cs.ScrapeErrors))
	}
	fmt.Println()
	if r, ok := cs.Rates[obs.RateInvokesPerSec]; ok {
		fmt.Printf("%-50s %8.2f/s\n", obs.RateInvokesPerSec+" (gateway window)", r)
	}
	rates := set.Rates(0, "confbench_pool_checkouts_total")
	ids := make([]string, 0, len(rates))
	for id := range rates {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		_, labels := obs.ParseMetricID(id)
		if labels["host"] != "gateway" {
			continue // in-process hosts mirror the gateway registry
		}
		fmt.Printf("%-50s %8.2f/s\n", "checkouts tee="+labels["tee"], rates[id])
	}
	for host, msg := range cs.ScrapeErrors {
		fmt.Printf("scrape error %s: %s\n", host, msg)
	}
	return nil
}
