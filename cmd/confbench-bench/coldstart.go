package main

import (
	"context"
	"fmt"
	"strings"
	"time"

	"confbench"
	"confbench/internal/obs"
	"confbench/internal/tee"
)

// coldstartRow is one platform's cold-vs-warm comparison: boot costs
// for a cold measured launch and a warm restore, plus one secure and
// one normal invoke wall for the secure/normal overhead context.
type coldstartRow struct {
	Kind       tee.Kind
	ColdBoot   time.Duration
	WarmBoot   time.Duration
	WallSecure time.Duration
	WallNormal time.Duration
}

// coldstartReport boots a warm-pooled cluster, probes each platform's
// cold boot cost against the warm pool's restore cost, and renders the
// comparison plus the warm-path metrics. Everything reported is
// virtual time or deterministic counters, so the same seed yields a
// bit-identical report.
func coldstartReport(ctx context.Context, seed int64, memMB int) (string, []coldstartRow, error) {
	reg := confbench.NewObsRegistry()
	// High watermark 2 / low watermark 1: acquiring one guest per host
	// leaves idle exactly at the low watermark, so no background refill
	// fires and the run stays deterministic.
	cluster, err := confbench.New(
		confbench.WithSeed(seed),
		confbench.WithGuestMemoryMB(memMB),
		confbench.WithWarmPool(2),
		confbench.WithSnapshotCacheMB(256),
		confbench.WithObsRegistry(reg),
	)
	if err != nil {
		return "", nil, err
	}
	defer cluster.Close()

	client := cluster.Client()
	fn := confbench.Function{Name: "coldstart-cpustress", Language: "go", Workload: "cpustress"}
	if err := client.Upload(ctx, fn); err != nil {
		return "", nil, err
	}

	var rows []coldstartRow
	for _, kind := range cluster.Kinds() {
		pair, err := cluster.Pair(kind)
		if err != nil {
			return "", nil, err
		}
		row := coldstartRow{Kind: kind, WarmBoot: pair.Secure.Guest().BootCost()}

		// Cold probe: a fresh measured launch on the same backend, torn
		// down immediately — its BootCost is what the warm path skipped.
		backend, err := cluster.Backend(kind)
		if err != nil {
			return "", nil, err
		}
		probe, err := backend.Launch(tee.GuestConfig{Name: "cold-probe", MemoryMB: memMB})
		if err != nil {
			return "", nil, fmt.Errorf("cold probe (%s): %w", kind, err)
		}
		row.ColdBoot = probe.BootCost()
		if err := probe.Destroy(); err != nil {
			return "", nil, err
		}

		for _, secure := range []bool{true, false} {
			resp, err := client.Invoke(ctx, confbench.InvokeRequest{
				Function: fn.Name, Secure: secure, TEE: kind, Scale: 1,
			})
			if err != nil {
				return "", nil, fmt.Errorf("invoke (%s secure=%v): %w", kind, secure, err)
			}
			if secure {
				row.WallSecure = resp.Wall()
			} else {
				row.WallNormal = resp.Wall()
			}
		}
		rows = append(rows, row)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "=== Cold-start benchmark (seed %d, %d MiB guests) ===\n", seed, memMB)
	fmt.Fprintf(&b, "%-8s %14s %14s %10s %14s %14s %8s\n",
		"tee", "cold boot", "warm boot", "cold/warm", "secure wall", "normal wall", "ratio")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %14v %14v %9.1fx %14v %14v %7.2fx\n",
			r.Kind, r.ColdBoot, r.WarmBoot,
			float64(r.ColdBoot)/float64(r.WarmBoot),
			r.WallSecure, r.WallNormal,
			float64(r.WallSecure)/float64(r.WallNormal))
	}

	snap := reg.Snapshot()
	fmt.Fprintf(&b, "\nwarm-path metrics:\n")
	for _, kind := range cluster.Kinds() {
		hits := snap.Counters[obs.MetricID("confbench_warm_hits_total", "tee", string(kind))]
		misses := snap.Counters[obs.MetricID("confbench_warm_misses_total", "tee", string(kind))]
		restores := snap.Counters[obs.MetricID("confbench_tee_guest_restores_total", "tee", string(kind))]
		fmt.Fprintf(&b, "  %-8s warm hits %d  misses %d  restores %d\n", kind, hits, misses, restores)
	}
	fmt.Fprintf(&b, "  snapshot cache: %d bytes held\n",
		snap.Gauges[obs.MetricID("confbench_snapshot_cache_bytes")])
	return b.String(), rows, nil
}
