package main

import (
	"context"
	"errors"
	"fmt"
	"time"

	"confbench"
	"confbench/internal/slo"
)

// errSLOViolated is the sentinel for an SLO-gated run that ended with
// a fired objective or an overspent error budget. main exits non-zero
// on it, so CI can gate merges on "the bench run stayed within SLO".
var errSLOViolated = errors.New("slo violated")

// runSLO drives a seeded invocation mix through a cluster that
// evaluates the given SLO objectives on every federation sweep, then
// renders the error-budget table and alert timeline and fails the run
// if any objective fired or overspent its budget. A -chaos spec
// composes: its faults are injected during the run, so the gate
// answers "does the deployment stay within SLO under this failure
// mode?".
func runSLO(ctx context.Context, sloSpec, chaosSpec string, seed int64, invokes int) error {
	// Validate the spec before paying for a cluster boot.
	if _, err := slo.ParseSpecs(sloSpec); err != nil {
		return err
	}
	opts := []confbench.Option{
		confbench.WithSeed(seed),
		confbench.WithGuestMemoryMB(16),
		confbench.WithHostsPerTEE(2),
		confbench.WithSLOSpec(sloSpec),
		// A huge breaker threshold keeps faulted endpoints in rotation:
		// the gate measures the deployment's error rate, and a breaker
		// quietly absorbing the bad host would hide exactly the signal
		// the objectives watch.
		confbench.WithBreakerThreshold(1000, time.Second),
	}
	if chaosSpec != "" {
		specs, err := confbench.ParseFaultSpecs(chaosSpec)
		if err != nil {
			return err
		}
		plane := confbench.NewFaultPlane(seed)
		for _, s := range specs {
			if err := plane.Register(s); err != nil {
				return err
			}
		}
		opts = append(opts, confbench.WithFaultPlane(plane))
	}
	cluster, err := confbench.New(opts...)
	if err != nil {
		return err
	}
	defer cluster.Close()

	client := cluster.Client()
	fn := confbench.Function{Name: "slo-cpustress", Language: "go", Workload: "cpustress"}
	if err := client.Upload(ctx, fn); err != nil {
		return err
	}
	kinds := cluster.Kinds()
	// Sweep the SLO engine on a synthetic clock every batch, so burn
	// windows fill deterministically regardless of wall-clock speed.
	gw := cluster.Gateway()
	base := time.Unix(1000, 0)
	sweep := 0
	batch := invokes / 10
	if batch < 1 {
		batch = 1
	}
	var failures int
	for i := 0; i < invokes; i++ {
		_, err := client.Invoke(ctx, confbench.InvokeRequest{
			Function: fn.Name,
			Secure:   i%2 == 0,
			TEE:      kinds[i%len(kinds)],
			Scale:    1,
		})
		if err != nil {
			failures++
		}
		if (i+1)%batch == 0 {
			sweep++
			gw.ScrapeOnce(ctx, base.Add(time.Duration(sweep)*time.Second))
		}
	}
	sweep++
	gw.ScrapeOnce(ctx, base.Add(time.Duration(sweep)*time.Second))

	eng := gw.SLO()
	statuses := eng.Status()
	timeline := eng.Timeline()
	fmt.Print(sloReport(sloSpec, chaosSpec, seed, invokes, failures, statuses, timeline))

	violated := false
	for _, s := range statuses {
		if s.State == slo.StateFiring || s.BudgetRemaining < 0 {
			violated = true
		}
	}
	for _, tr := range timeline {
		if tr.To == slo.StateFiring {
			violated = true
		}
	}
	if violated {
		return fmt.Errorf("%w: see the error-budget table above", errSLOViolated)
	}
	return nil
}

// sloReport renders the SLO-gated run: the error-budget table per
// objective (with its TEE selector, if any) and the alert timeline.
// Pure, so tests can pin its output.
func sloReport(sloSpec, chaosSpec string, seed int64, invokes, failures int,
	statuses []slo.Status, timeline []slo.Transition) string {
	out := fmt.Sprintf("=== SLO-gated run (seed %d) ===\n", seed)
	out += fmt.Sprintf("objectives: %s\n", sloSpec)
	if chaosSpec != "" {
		out += fmt.Sprintf("chaos:      %s\n", chaosSpec)
	}
	out += fmt.Sprintf("invokes: %d   client-visible failures: %d\n", invokes, failures)
	out += fmt.Sprintf("%-24s %-12s %-6s %-9s %9s %9s %9s\n",
		"OBJECTIVE", "KIND", "TEE", "STATE", "BURN(S)", "BURN(L)", "BUDGET")
	for _, s := range statuses {
		tee := s.TEE
		if tee == "" {
			tee = "*"
		}
		out += fmt.Sprintf("%-24s %-12s %-6s %-9s %8.2fx %8.2fx %8.1f%%\n",
			s.Objective, s.Kind, tee, s.State, s.BurnShort, s.BurnLong, 100*s.BudgetRemaining)
	}
	if len(timeline) == 0 {
		out += "no alert transitions\n"
		return out
	}
	out += "timeline:\n"
	for _, tr := range timeline {
		out += fmt.Sprintf("  %s  %-24s %s\n",
			time.Unix(0, tr.AtUnixNs).UTC().Format(time.RFC3339), tr.Objective, tr.Detail)
	}
	return out
}
