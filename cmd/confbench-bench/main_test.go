package main

import (
	"context"
	"testing"
)

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run(context.Background(), []string{"-bogus"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestQuickFig5EndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a full cluster")
	}
	if err := run(context.Background(), []string{"-quick", "-fig", "5"}); err != nil {
		t.Fatalf("quick fig 5: %v", err)
	}
}
