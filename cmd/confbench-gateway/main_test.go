package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunRejectsBadInput(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-policy", "random"}); err == nil {
		t.Error("unknown policy accepted")
	}
	if err := run([]string{"-hosts", "/no/such/hosts.json"}); err == nil {
		t.Error("missing hosts file accepted")
	}
	bad := filepath.Join(t.TempDir(), "hosts.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-hosts", bad}); err == nil {
		t.Error("malformed hosts file accepted")
	}
	good := filepath.Join(t.TempDir(), "hosts.json")
	if err := os.WriteFile(good, []byte("[]"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-hosts", good, "-shards", "2"}); err == nil {
		t.Error("-shards with an external -hosts fleet accepted")
	}
}
