// Command confbench-gateway runs the ConfBench REST gateway.
//
// Two modes:
//
//   - embedded (default): boots the full paper test bed in-process —
//     one host per TEE (TDX, SEV-SNP, CCA), each with its secure and
//     normal VM — and serves the REST API in front of it.
//   - external: -hosts FILE points at a JSON file produced by
//     confbench-host invocations ({"name": ..., "endpoints": [...]}
//     entries), and the gateway dispatches to those processes.
//
// Usage:
//
//	confbench-gateway [-addr 127.0.0.1:8080] [-hosts FILE]
//	                  [-policy round-robin|least-loaded] [-shards N]
//	                  [-hosts-per-tee N] [-warm-pool N] [-breaker-threshold N]
//	                  [-breaker-cooldown D] [-scrape-interval D]
//	                  [-durable-dir DIR] [-slo SPEC]
//
// -shards N (> 1, embedded mode only) deploys N gateway shards and
// serves the front tier on -addr instead of a single gateway: invokes
// consistent-hash across the shards, per-tenant admission control
// applies, and the async invoke path (POST /v1/invoke/async) is
// available.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"confbench"
	"confbench/internal/fronttier"
	"confbench/internal/gateway"
	"confbench/internal/hostagent"
	"confbench/internal/profiler"
	"confbench/internal/slo"
	"confbench/internal/wire"
)

// hostEntry is one record of the -hosts file.
type hostEntry struct {
	Name      string               `json:"name"`
	Endpoints []hostagent.Endpoint `json:"endpoints"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "confbench-gateway:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("confbench-gateway", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	hostsFile := fs.String("hosts", "", "JSON host config (empty = embedded test bed)")
	policy := fs.String("policy", "round-robin", "pool load balancing: round-robin, least-loaded")
	seed := fs.Int64("seed", 1, "deterministic noise seed (embedded mode)")
	breakerThreshold := fs.Int("breaker-threshold", 0, "consecutive failures that trip an endpoint's circuit breaker (0 = default)")
	breakerCooldown := fs.Duration("breaker-cooldown", 0, "open-breaker cooldown before a half-open probe (0 = default)")
	scrapeInterval := fs.Duration("scrape-interval", 0, "background telemetry scrape period for /v1/obs/cluster series (0 = scrape only on request)")
	shards := fs.Int("shards", 0, "deploy this many gateway shards behind a front tier served on -addr (embedded mode only, > 1)")
	hostsPerTEE := fs.Int("hosts-per-tee", 0, "host agents per platform in the embedded test bed (0 = one; >= 2 makes drain HOST live-migrate instead of refusing the last host)")
	warmPool := fs.Int("warm-pool", 0, "serve each embedded host's secure VM from a prewarmed guest pool with this high watermark (drain HOST live-migrates only pooled hosts; 0 = no pools, routing-only drain)")
	durableDir := fs.String("durable-dir", "", "spill gateway telemetry (federation sweeps, flight-recorder events) to an append-only log under this directory and replay it on start, so /v1/obs/cluster?window= and /v1/obs/events span restarts (empty = in-memory only)")
	transport := fs.String("transport", "", "outbound hop carrier: httpjson (default, JSON over HTTP) or binary (persistent multiplexed wire frames); inbound always accepts both")
	sloSpec := fs.String("slo", "", `comma-separated SLO objectives evaluated every federation sweep, e.g. "avail:availability:success>=99.9%,lat:latency:p99<250ms:tee=tdx"; serves GET /v1/obs/slo and /v1/obs/alerts`)
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this address (empty = disabled)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *shards > 1 && *hostsFile != "" {
		return fmt.Errorf("-shards needs the embedded test bed; it cannot shard an external -hosts fleet")
	}
	if !wire.ValidTransport(*transport) {
		return fmt.Errorf("unknown transport %q (want %q or %q)",
			*transport, wire.TransportHTTPJSON, wire.TransportBinary)
	}
	if *pprofAddr != "" {
		url, stopProf, err := profiler.Enable(*pprofAddr)
		if err != nil {
			return err
		}
		defer stopProf()
		fmt.Fprintln(os.Stderr, "pprof serving", url)
	}

	// SLO objectives go to the layer with the federated cluster view:
	// the exposed front tier when sharded, otherwise the exposed
	// gateway (evaluating the same objectives on inner layers too
	// would double-alert).
	var objectives []slo.Objective
	if *sloSpec != "" {
		var err error
		objectives, err = slo.ParseSpecs(*sloSpec)
		if err != nil {
			return err
		}
	}

	var policyFactory func() gateway.Policy
	switch *policy {
	case "round-robin":
		policyFactory = nil
	case "least-loaded":
		policyFactory = func() gateway.Policy { return gateway.LeastLoaded{} }
	default:
		return fmt.Errorf("unknown policy %q", *policy)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	if *hostsFile == "" {
		// Embedded mode: the Cluster boots gateway + hosts; we expose
		// a second gateway bound to the requested address on the same
		// host endpoints.
		// Sharded deployments spill per shard inside the cluster; the
		// single-gateway mode spills from the exposed gateway below.
		var clusterDurable string
		if *shards > 1 {
			clusterDurable = *durableDir
		}
		cluster, err := confbench.NewCluster(confbench.ClusterConfig{
			Seed: *seed, GuestMemoryMB: 16, LeastLoaded: *policy == "least-loaded",
			Shards: *shards, Transport: *transport, DurableDir: clusterDurable,
			HostsPerTEE: *hostsPerTEE, WarmPool: *warmPool,
		})
		if err != nil {
			return err
		}
		defer cluster.Close()
		if *shards > 1 {
			// Sharded: expose a second front tier bound to the requested
			// address over the cluster's shard gateways.
			tier := cluster.FrontTier()
			cfgs := make([]fronttier.ShardConfig, 0, *shards)
			for _, name := range cluster.ShardNames() {
				cfgs = append(cfgs, fronttier.ShardConfig{Name: name, URL: tier.ShardURL(name)})
			}
			front, err := fronttier.New(fronttier.Config{
				Shards:           cfgs,
				BreakerThreshold: *breakerThreshold,
				BreakerCooldown:  *breakerCooldown,
				Transport:        *transport,
				SLO:              objectives,
			})
			if err != nil {
				return err
			}
			url, err := front.Start(*addr)
			if err != nil {
				return err
			}
			defer front.Close()
			fmt.Fprintf(os.Stderr, "front tier serving %s (%d shards, embedded test bed: %v)\n",
				url, *shards, cluster.Kinds())
			<-sig
			return nil
		}
		gw := gateway.New(gateway.Config{
			Policy:           policyFactory,
			BreakerThreshold: *breakerThreshold,
			BreakerCooldown:  *breakerCooldown,
			ScrapeInterval:   *scrapeInterval,
			Transport:        *transport,
			DurableDir:       *durableDir,
			SLO:              objectives,
		})
		for _, kind := range cluster.Kinds() {
			agents := cluster.Agents(kind)
			if len(agents) == 0 {
				return fmt.Errorf("no host agents for %s", kind)
			}
			for _, agent := range agents {
				gw.AddHost(agent.Name(), agent.Endpoints())
			}
		}
		// POST /v1/drain on the exposed gateway routes into the
		// cluster's migrating drain (with -hosts, the external-fleet
		// gateway below instead serves its built-in routing-only drain:
		// it cannot reach into another process's guests).
		gw.SetDrainer(cluster.DrainHost)
		url, err := gw.Start(*addr)
		if err != nil {
			return err
		}
		defer gw.Close()
		fmt.Fprintf(os.Stderr, "gateway serving %s (embedded test bed: %v)\n", url, cluster.Kinds())
		<-sig
		return nil
	}

	data, err := os.ReadFile(*hostsFile)
	if err != nil {
		return fmt.Errorf("read hosts file: %w", err)
	}
	var hosts []hostEntry
	if err := json.Unmarshal(data, &hosts); err != nil {
		return fmt.Errorf("parse hosts file: %w", err)
	}
	gw := gateway.New(gateway.Config{
		Policy:           policyFactory,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		ScrapeInterval:   *scrapeInterval,
		Transport:        *transport,
		DurableDir:       *durableDir,
		SLO:              objectives,
	})
	for _, h := range hosts {
		gw.AddHost(h.Name, h.Endpoints)
	}
	url, err := gw.Start(*addr)
	if err != nil {
		return err
	}
	defer gw.Close()
	fmt.Fprintf(os.Stderr, "gateway serving %s (%d external hosts)\n", url, len(hosts))
	<-sig
	return nil
}
