package confbench_test

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"confbench"
	"confbench/internal/meter"
	"confbench/internal/minidb"
	"confbench/internal/obs"
)

// This file is the end-to-end durability smoke behind `make
// durability-smoke`: both consumers of the persistence plane survive a
// kill-and-reopen. The minidb half commits batches to the durable
// backend, simulates a crash mid-append by corrupting the log tail,
// and asserts the reopened database holds exactly the committed rows.
// The telemetry half boots a cluster with a durable dir, restarts it,
// and asserts windowed /v1/obs/cluster rates and /v1/obs/events span
// the restart.

// corruptNewestSegment appends garbage to the newest log segment —
// what a crash mid-append leaves behind. Recovery must truncate the
// torn tail, not fail.
func corruptNewestSegment(t *testing.T, dir string) {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no log segments in %s (err=%v)", dir, err)
	}
	sort.Strings(segs)
	f, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("\xde\xad\xbe\xef torn half-record")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDurabilitySmoke(t *testing.T) {
	t.Run("minidb", durabilityMinidb)
	t.Run("telemetry", durabilityTelemetry)
}

// durabilityMinidb: two committed batches, a crash leaving a torn
// tail, reopen — zero committed rows lost, none resurrected.
func durabilityMinidb(t *testing.T) {
	dir := t.TempDir()
	b, err := minidb.NewDurableBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	db, err := minidb.NewWithBackend(b)
	if err != nil {
		t.Fatal(err)
	}
	m := meter.NewContext()
	exec := func(sql string) {
		t.Helper()
		if _, err := db.Exec(m, sql); err != nil {
			t.Fatalf("Exec(%q): %v", sql, err)
		}
	}
	exec("CREATE TABLE smoke(a INTEGER, b TEXT)")
	// Batch 1: autocommitted single statements.
	for i := 1; i <= 30; i++ {
		exec(fmt.Sprintf("INSERT INTO smoke VALUES(%d,'batch1 %d')", i, i))
	}
	// Batch 2: one explicit transaction.
	exec("BEGIN")
	for i := 31; i <= 50; i++ {
		exec(fmt.Sprintf("INSERT INTO smoke VALUES(%d,'batch2 %d')", i, i))
	}
	exec("COMMIT")
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash: a torn half-record at the log tail.
	corruptNewestSegment(t, dir)

	b2, err := minidb.NewDurableBackend(dir)
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	defer b2.Close()
	if !b2.Stats().TruncatedTail {
		t.Fatal("recovery did not report the truncated tail")
	}
	db2, err := minidb.NewWithBackend(b2)
	if err != nil {
		t.Fatal(err)
	}
	n, err := db2.RowCount("smoke")
	if err != nil || n != 50 {
		t.Fatalf("recovered rows = %d, %v; want exactly the 50 committed", n, err)
	}
	rs, err := db2.Exec(m, "SELECT b FROM smoke WHERE a = 42")
	if err != nil || len(rs.Rows) != 1 || rs.Rows[0][0].Str != "batch2 42" {
		t.Fatalf("recovered row 42 = %+v, %v", rs, err)
	}
	// The recovered database keeps accepting commits.
	if _, err := db2.Exec(m, "INSERT INTO smoke VALUES(51,'after crash')"); err != nil {
		t.Fatalf("insert after recovery: %v", err)
	}
	if n, _ := db2.RowCount("smoke"); n != 51 {
		t.Fatalf("rows after post-recovery insert = %d, want 51", n)
	}
}

// durabilityTelemetry: a cluster with a durable dir is closed and
// rebooted on the same dir; the windowed invoke rate and the flight-
// recorder events span the restart.
func durabilityTelemetry(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	boot := func() *confbench.Cluster {
		t.Helper()
		c, err := confbench.New(
			confbench.WithTEEs(confbench.KindSEV),
			confbench.WithSeed(7),
			confbench.WithGuestMemoryMB(8),
			confbench.WithObsRegistry(confbench.NewObsRegistry()),
			confbench.WithDurableDir(dir),
		)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Client().Upload(ctx, confbench.Function{Name: "durability", Language: "go", Workload: "cpustress"}); err != nil {
			t.Fatal(err)
		}
		return c
	}
	invoke := func(c *confbench.Cluster, n int) {
		t.Helper()
		client := c.Client()
		for i := 0; i < n; i++ {
			if _, err := client.Invoke(ctx, confbench.InvokeRequest{
				Function: "durability", Secure: true, TEE: confbench.KindSEV, Scale: 1,
			}); err != nil {
				t.Fatalf("invoke %d: %v", i, err)
			}
		}
	}

	// First life: invokes and two federation sweeps (each /v1/obs/
	// cluster request sweeps and spills), then a clean shutdown.
	c1 := boot()
	invoke(c1, 4)
	if _, err := c1.Client().ObsCluster(ctx, 0); err != nil {
		t.Fatal(err)
	}
	invoke(c1, 4)
	if _, err := c1.Client().ObsCluster(ctx, 0); err != nil {
		t.Fatal(err)
	}
	preEvents, err := c1.Client().ObsEvents(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(preEvents) != 8 {
		t.Fatalf("pre-restart events = %d, want 8", len(preEvents))
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	// Second life on the same dir: replayed history must surface
	// through the same endpoints before any new sweep lands.
	c2 := boot()
	defer c2.Close()
	evs, err := c2.Client().ObsEvents(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) < 8 {
		t.Fatalf("replayed events = %d, want the 8 pre-restart invokes", len(evs))
	}
	for _, ev := range evs[:8] {
		if !strings.HasPrefix(ev.Trace, "inv-") {
			t.Fatalf("replayed event trace = %q, want inv- prefix", ev.Trace)
		}
	}
	// New invokes after the restart: the ?window= rate spans the
	// replayed samples and the fresh sweep. The gateway's invocation
	// counter reset to zero on restart — the per-step rate must skip
	// that reset, not zero the window.
	invoke(c2, 4)
	cs, err := c2.Client().ObsCluster(ctx, 16)
	if err != nil {
		t.Fatal(err)
	}
	rate, ok := cs.Rates[obs.RateInvokesPerSec]
	if !ok {
		t.Fatalf("cluster snapshot has no %s rate: %v", obs.RateInvokesPerSec, cs.Rates)
	}
	if rate <= 0 {
		t.Fatalf("restart-spanning invoke rate = %g, want positive", rate)
	}
	// The spill lives under the single gateway's own subdirectory.
	if segs, _ := filepath.Glob(filepath.Join(dir, "gateway", "seg-*.wal")); len(segs) == 0 {
		t.Fatal("no spill segments under <durable-dir>/gateway")
	}
}
