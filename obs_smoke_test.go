package confbench_test

import (
	"context"
	"strings"
	"testing"

	"confbench"
	"confbench/internal/obs"
)

// TestObsSmoke is the end-to-end observability check behind
// `make obs-smoke`: boot a cluster with a dedicated registry, run a
// mixed batch of invocations, and assert the whole plane — HTTP
// routes, pool checkouts, TEE structural counters — reports non-zero,
// mutually consistent values.
func TestObsSmoke(t *testing.T) {
	reg := confbench.NewObsRegistry()
	c, err := confbench.New(
		confbench.WithTEEs(confbench.KindTDX, confbench.KindSEV),
		confbench.WithGuestMemoryMB(8),
		confbench.WithObsRegistry(reg),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx := context.Background()
	client := c.Client()
	// iostress meters real I/O → syscalls → priced world transitions
	// and bounce-buffer traffic, so the TEE counters must move.
	if err := client.Upload(ctx, confbench.Function{Name: "smoke", Language: "go", Workload: "iostress"}); err != nil {
		t.Fatal(err)
	}
	const invokes = 10
	for i := 0; i < invokes; i++ {
		// Alternate platforms and security so every pool and both guest
		// flavors see traffic.
		req := confbench.InvokeRequest{
			Function: "smoke",
			Secure:   i%2 == 0,
			TEE:      confbench.KindTDX,
			Scale:    2, // iostress scale is ~MB of traffic; keep the smoke run quick
		}
		if i%4 >= 2 {
			req.TEE = confbench.KindSEV
		}
		if _, err := client.Invoke(ctx, req); err != nil {
			t.Fatalf("invoke %d: %v", i, err)
		}
	}

	snap, err := client.Obs(ctx)
	if err != nil {
		t.Fatal(err)
	}

	if got := snap.Counters[obs.MetricID("confbench_http_requests_total", "route", "/v1/invoke", "status", "200")]; got != invokes {
		t.Errorf("invoke route counter = %d, want %d", got, invokes)
	}
	checkouts := snap.Counters[obs.MetricID("confbench_pool_checkouts_total", "tee", "tdx")] +
		snap.Counters[obs.MetricID("confbench_pool_checkouts_total", "tee", "sev-snp")]
	if checkouts != invokes {
		t.Errorf("total pool checkouts = %d, want %d", checkouts, invokes)
	}
	for _, kind := range []string{"tdx", "sev-snp"} {
		if got := snap.Counters[obs.MetricID("confbench_tee_guest_launches_total", "tee", kind)]; got != 1 {
			t.Errorf("%s secure guest launches = %d, want 1", kind, got)
		}
		if got := snap.Counters[obs.MetricID("confbench_tee_transitions_total", "tee", kind)]; got == 0 {
			t.Errorf("%s transitions = 0, want > 0 after secure invokes", kind)
		}
		if got := snap.Counters[obs.MetricID("confbench_tee_bounce_buffer_bytes_total", "tee", kind)]; got == 0 {
			t.Errorf("%s bounce-buffer bytes = 0, want > 0 after secure I/O", kind)
		}
	}
	if got := snap.Counters[obs.MetricID("confbench_tee_guest_launches_total", "tee", "none")]; got != 2 {
		t.Errorf("normal guest launches = %d, want 2 (one per host)", got)
	}
	if got := snap.Counters[obs.MetricID("confbench_tee_module_calls_total", "tee", "tdx")]; got == 0 {
		t.Error("TDX module call counter = 0, want > 0 after guest builds")
	}
	if got := snap.Counters[obs.MetricID("confbench_tee_rmp_ops_total", "tee", "sev-snp")]; got == 0 {
		t.Error("SEV RMP op counter = 0, want > 0 after guest builds")
	}
	if got := snap.Counters[obs.MetricID("confbench_hostagent_requests_total", "vm", "tdx-host-secure")]; got == 0 {
		t.Error("host agent secure-VM request counter = 0")
	}

	// The same numbers must appear on the Prometheus surface.
	var b strings.Builder
	reg.WritePrometheus(&b)
	text := b.String()
	for _, want := range []string{
		`confbench_http_requests_total{route="/v1/invoke",status="200"} 10`,
		`# TYPE confbench_pool_checkouts_total counter`,
		`confbench_tee_guest_launches_total{tee="tdx"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus exposition missing %q", want)
		}
	}
}

func TestNewWithOptions(t *testing.T) {
	reg := confbench.NewObsRegistry()
	c, err := confbench.New(
		confbench.WithTEEs(confbench.KindSEV),
		confbench.WithSeed(7),
		confbench.WithGuestMemoryMB(8),
		confbench.WithWorkers(4),
		confbench.WithLeastLoaded(),
		confbench.WithObsRegistry(reg),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := c.Kinds(); len(got) != 1 || got[0] != confbench.KindSEV {
		t.Errorf("kinds = %v", got)
	}
	if c.Workers() != 4 {
		t.Errorf("workers = %d", c.Workers())
	}
	if c.Obs() != reg {
		t.Error("cluster not using the supplied registry")
	}
	pools, err := c.Client().Pools(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if pools[0].Policy != "least-loaded" {
		t.Errorf("policy = %s", pools[0].Policy)
	}
}

func TestRootReexportsAreUsableEndToEnd(t *testing.T) {
	// The re-exported aliases must interoperate with values produced by
	// the internal packages — the quickstart example depends on it.
	c, err := confbench.New(
		confbench.WithTEEs(confbench.KindTDX),
		confbench.WithGuestMemoryMB(8),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	var client *confbench.Client = c.Client()
	fn := confbench.Function{Name: "alias", Language: "python", Workload: "factors"}
	if err := client.Upload(ctx, fn); err != nil {
		t.Fatal(err)
	}
	var resp confbench.InvokeResponse
	resp, err = client.Invoke(ctx, confbench.InvokeRequest{
		Function: "alias", Secure: true, TEE: confbench.KindTDX, Scale: 5040, Trace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var tr *confbench.SpanData = resp.Trace
	if tr == nil {
		t.Fatal("no trace on traced invoke")
	}
	out := confbench.RenderTrace(tr)
	if !strings.Contains(out, "[gateway]") || !strings.Contains(out, "[vm]") {
		t.Errorf("rendered trace missing layers:\n%s", out)
	}
}
