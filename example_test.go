package confbench_test

import (
	"context"
	"fmt"
	"log"

	"confbench"
	"confbench/internal/api"
	"confbench/internal/faas"
	"confbench/internal/tee"
)

// ExampleNewCluster walks the paper's §III-C example run: upload a
// function to the gateway, request its execution in a TDX trusted
// domain, and receive the result back — here with the function's
// deterministic output.
func ExampleNewCluster() {
	cluster, err := confbench.NewCluster(confbench.ClusterConfig{
		TEEs:          []tee.Kind{tee.KindTDX},
		GuestMemoryMB: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	client := cluster.Client()
	// Step 1: the user uploads their function to the gateway.
	err = client.Upload(context.Background(), faas.Function{Name: "fib", Language: "go", Workload: "fib"})
	if err != nil {
		log.Fatal(err)
	}
	// Steps 2–5: request execution in a confidential VM on TDX; the
	// gateway routes to the host, the host relays to the TD, and the
	// result comes back with perf metrics piggybacked.
	resp, err := client.Invoke(context.Background(), api.InvokeRequest{
		Function: "fib", Secure: true, TEE: tee.KindTDX, Scale: 12,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(resp.Output, resp.Secure, resp.Platform)
	// Output: fib(12)=144 true tdx
}
