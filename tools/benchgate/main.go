// Command benchgate turns `go test -bench -benchmem` output into the
// committed perf trajectory (BENCH_relay.json) and enforces it.
//
// Update the baseline (refuses to commit a run that breaks the
// binary-vs-httpjson trajectory):
//
//	go test -run xxx -bench ... -benchmem -benchtime=2000x . | go run ./tools/benchgate -update -out BENCH_relay.json
//
// Gate a fresh run against the committed baseline:
//
//	go test -run xxx -bench ... -benchmem -benchtime=2000x . | go run ./tools/benchgate -gate -baseline BENCH_relay.json
//
// The gate fails when any benchmark's allocs/op regresses more than
// 10% or its invokes/s regresses more than 15% against the baseline,
// and when the end-to-end pair no longer shows the committed
// trajectory: binary at >= 2x httpjson's invoke rate with <= 25% of
// its allocations.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's parsed measurements. InvokesPerSec is 0
// for benchmarks that do not report the custom metric.
type Result struct {
	Iterations    int64   `json:"iterations"`
	NsPerOp       float64 `json:"ns_per_op"`
	BytesPerOp    float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp   float64 `json:"allocs_per_op,omitempty"`
	InvokesPerSec float64 `json:"invokes_per_sec,omitempty"`
}

// Baseline is the BENCH_relay.json schema.
type Baseline struct {
	// Note records how to regenerate the file.
	Note       string            `json:"note"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

const (
	regenNote = "regenerate with `make bench`; checked by `make bench-gate`"

	// The committed trajectory on the e2e invoke pair.
	e2eHTTPJSON = "BenchmarkWireTransportInvoke/httpjson"
	e2eBinary   = "BenchmarkWireTransportInvoke/binary"
	minSpeedup  = 2.0  // binary invokes/s >= 2x httpjson
	maxAllocs   = 0.25 // binary allocs/op <= 25% of httpjson

	// Regression tolerances for -gate.
	allocsSlack  = 0.10 // allocs/op may grow at most 10%
	invokesSlack = 0.15 // invokes/s may drop at most 15%
)

// gomaxprocsSuffix strips the trailing -N that `go test` appends for
// GOMAXPROCS, so baselines survive core-count changes.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	update := flag.Bool("update", false, "write a new baseline from stdin")
	gate := flag.Bool("gate", false, "check stdin against the baseline")
	out := flag.String("out", "BENCH_relay.json", "baseline file to write (-update)")
	baseline := flag.String("baseline", "BENCH_relay.json", "baseline file to check against (-gate)")
	flag.Parse()
	if *update == *gate {
		fmt.Fprintln(os.Stderr, "benchgate: exactly one of -update or -gate required")
		os.Exit(2)
	}

	results, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no benchmark lines on stdin")
		os.Exit(1)
	}

	if errs := checkTrajectory(results); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "benchgate: trajectory:", e)
		}
		os.Exit(1)
	}

	if *update {
		if err := write(*out, results); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(1)
		}
		fmt.Printf("benchgate: wrote %s (%d benchmarks)\n", *out, len(results))
		return
	}

	base, err := read(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
	if errs := checkRegression(base.Benchmarks, results); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "benchgate: FAIL:", e)
		}
		os.Exit(1)
	}
	fmt.Printf("benchgate: ok (%d benchmarks within tolerance of %s)\n", len(results), *baseline)
}

// parse extracts benchmark result lines from `go test -bench` output.
// Repeated names (-count=N) merge best-case per metric — min ns/op,
// bytes, and allocs, max invokes/s — so machine noise in any single
// sample neither poisons a baseline nor trips the gate.
func parse(r io.Reader) (map[string]Result, error) {
	results := make(map[string]Result)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		// Echo the raw output so the gate's log keeps the full run.
		fmt.Println(line)
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(fields[0], "")
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Iterations: iters}
		// The remainder is (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("%s: bad value %q", name, fields[i])
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			case "invokes/s":
				res.InvokesPerSec = v
			}
		}
		if prev, ok := results[name]; ok {
			res = bestOf(prev, res)
		}
		results[name] = res
	}
	return results, sc.Err()
}

// bestOf merges two samples of the same benchmark metric-by-metric.
func bestOf(a, b Result) Result {
	out := a
	if b.NsPerOp > 0 && (out.NsPerOp == 0 || b.NsPerOp < out.NsPerOp) {
		out.NsPerOp = b.NsPerOp
	}
	if b.BytesPerOp > 0 && (out.BytesPerOp == 0 || b.BytesPerOp < out.BytesPerOp) {
		out.BytesPerOp = b.BytesPerOp
	}
	if b.AllocsPerOp > 0 && (out.AllocsPerOp == 0 || b.AllocsPerOp < out.AllocsPerOp) {
		out.AllocsPerOp = b.AllocsPerOp
	}
	if b.InvokesPerSec > out.InvokesPerSec {
		out.InvokesPerSec = b.InvokesPerSec
	}
	return out
}

// checkTrajectory enforces the committed binary-vs-httpjson claim on
// the e2e pair, whenever both are present in the run.
func checkTrajectory(results map[string]Result) []string {
	httpjson, okH := results[e2eHTTPJSON]
	binary, okB := results[e2eBinary]
	if !okH || !okB {
		return []string{fmt.Sprintf("run missing the e2e pair %s / %s", e2eHTTPJSON, e2eBinary)}
	}
	var errs []string
	if httpjson.InvokesPerSec <= 0 || binary.InvokesPerSec <= 0 {
		errs = append(errs, "e2e pair did not report invokes/s")
		return errs
	}
	if speedup := binary.InvokesPerSec / httpjson.InvokesPerSec; speedup < minSpeedup {
		errs = append(errs, fmt.Sprintf("binary %.0f invokes/s is only %.2fx httpjson's %.0f (need >= %.1fx)",
			binary.InvokesPerSec, speedup, httpjson.InvokesPerSec, minSpeedup))
	}
	if httpjson.AllocsPerOp > 0 {
		if ratio := binary.AllocsPerOp / httpjson.AllocsPerOp; ratio > maxAllocs {
			errs = append(errs, fmt.Sprintf("binary %.0f allocs/op is %.0f%% of httpjson's %.0f (need <= %.0f%%)",
				binary.AllocsPerOp, ratio*100, httpjson.AllocsPerOp, maxAllocs*100))
		}
	}
	return errs
}

// checkRegression compares a fresh run to the committed baseline.
// Benchmarks new to either side are reported but not failed, so
// adding a benchmark does not require a lockstep baseline refresh.
func checkRegression(base, fresh map[string]Result) []string {
	var errs []string
	names := make([]string, 0, len(fresh))
	for name := range fresh {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		got := fresh[name]
		want, ok := base[name]
		if !ok {
			fmt.Printf("benchgate: note: %s not in baseline, skipping\n", name)
			continue
		}
		// A metric the baseline reports but the fresh run does not is a
		// hard failure, not a pass: a dropped -benchmem flag or renamed
		// custom metric would otherwise blind the gate silently.
		switch {
		case want.AllocsPerOp > 0 && got.AllocsPerOp == 0:
			errs = append(errs, fmt.Sprintf("%s: baseline reports %.0f allocs/op but the run reports none (dropped -benchmem?)",
				name, want.AllocsPerOp))
		case want.AllocsPerOp > 0 && got.AllocsPerOp > want.AllocsPerOp*(1+allocsSlack):
			errs = append(errs, fmt.Sprintf("%s: allocs/op %.0f regressed >%.0f%% over baseline %.0f",
				name, got.AllocsPerOp, allocsSlack*100, want.AllocsPerOp))
		}
		switch {
		case want.InvokesPerSec > 0 && got.InvokesPerSec == 0:
			errs = append(errs, fmt.Sprintf("%s: baseline reports %.0f invokes/s but the run reports none (metric renamed?)",
				name, want.InvokesPerSec))
		case want.InvokesPerSec > 0 && got.InvokesPerSec < want.InvokesPerSec*(1-invokesSlack):
			errs = append(errs, fmt.Sprintf("%s: invokes/s %.0f regressed >%.0f%% under baseline %.0f",
				name, got.InvokesPerSec, invokesSlack*100, want.InvokesPerSec))
		}
	}
	for name := range base {
		if _, ok := fresh[name]; !ok {
			errs = append(errs, fmt.Sprintf("%s: in baseline but missing from run", name))
		}
	}
	return errs
}

func write(path string, results map[string]Result) error {
	b, err := json.MarshalIndent(Baseline{Note: regenNote, Benchmarks: results}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func read(path string) (Baseline, error) {
	var base Baseline
	b, err := os.ReadFile(path)
	if err != nil {
		return base, fmt.Errorf("read baseline: %w (run `make bench` to create it)", err)
	}
	if err := json.Unmarshal(b, &base); err != nil {
		return base, fmt.Errorf("parse %s: %w", path, err)
	}
	return base, nil
}
