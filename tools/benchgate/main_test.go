package main

import (
	"strings"
	"testing"
)

func TestParseMergesBestOf(t *testing.T) {
	out := `goos: linux
BenchmarkWireTransportInvoke/httpjson-8   2000   52000 ns/op   19000 invokes/s   4100 B/op   61 allocs/op
BenchmarkWireTransportInvoke/httpjson-8   2000   61000 ns/op   16000 invokes/s   4300 B/op   64 allocs/op
BenchmarkWireTransportInvoke/binary-8     2000   11000 ns/op   90000 invokes/s    900 B/op   11 allocs/op
PASS
`
	results, err := parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(results))
	}
	// The GOMAXPROCS suffix is stripped; repeated samples merge
	// best-case per metric.
	hj, ok := results[e2eHTTPJSON]
	if !ok {
		t.Fatalf("missing %s in %v", e2eHTTPJSON, results)
	}
	if hj.NsPerOp != 52000 || hj.InvokesPerSec != 19000 || hj.AllocsPerOp != 61 || hj.BytesPerOp != 4100 {
		t.Fatalf("best-of merge = %+v", hj)
	}
}

func TestParseRejectsMalformedValue(t *testing.T) {
	if _, err := parse(strings.NewReader("BenchmarkX-8 100 oops ns/op\n")); err == nil {
		t.Fatal("malformed value parsed without error")
	}
}

func TestCheckRegressionWithinTolerance(t *testing.T) {
	base := map[string]Result{
		"BenchmarkA": {AllocsPerOp: 100, InvokesPerSec: 1000},
	}
	fresh := map[string]Result{
		"BenchmarkA": {AllocsPerOp: 105, InvokesPerSec: 900},
		"BenchmarkB": {AllocsPerOp: 7}, // new benchmark: noted, not failed
	}
	if errs := checkRegression(base, fresh); len(errs) != 0 {
		t.Fatalf("in-tolerance run failed the gate: %v", errs)
	}
}

func TestCheckRegressionCatchesRegressions(t *testing.T) {
	base := map[string]Result{
		"BenchmarkA": {AllocsPerOp: 100, InvokesPerSec: 1000},
	}
	fresh := map[string]Result{
		"BenchmarkA": {AllocsPerOp: 120, InvokesPerSec: 500},
	}
	errs := checkRegression(base, fresh)
	if len(errs) != 2 {
		t.Fatalf("errs = %v, want an allocs and an invokes regression", errs)
	}
}

// TestCheckRegressionFailsMissingBenchmark: a benchmark deleted or
// renamed out of the fresh run must fail the gate, not shrink it.
func TestCheckRegressionFailsMissingBenchmark(t *testing.T) {
	base := map[string]Result{
		"BenchmarkA": {AllocsPerOp: 100},
		"BenchmarkB": {AllocsPerOp: 50},
	}
	fresh := map[string]Result{
		"BenchmarkA": {AllocsPerOp: 100},
	}
	errs := checkRegression(base, fresh)
	if len(errs) != 1 || !strings.Contains(errs[0], "BenchmarkB") || !strings.Contains(errs[0], "missing from run") {
		t.Fatalf("errs = %v, want BenchmarkB missing-from-run failure", errs)
	}
}

// TestCheckRegressionFailsMissingMetric is the regression test for the
// silent-pass hole: a baseline-reported metric absent from the fresh
// run (allocs/op when -benchmem is dropped, invokes/s when the custom
// metric is renamed) used to compare 0 against the slack bound and
// pass.
func TestCheckRegressionFailsMissingMetric(t *testing.T) {
	base := map[string]Result{
		"BenchmarkA": {AllocsPerOp: 100},
		"BenchmarkB": {InvokesPerSec: 1000},
	}
	fresh := map[string]Result{
		"BenchmarkA": {NsPerOp: 10}, // no allocs/op reported
		"BenchmarkB": {NsPerOp: 10}, // no invokes/s reported
	}
	errs := checkRegression(base, fresh)
	if len(errs) != 2 {
		t.Fatalf("errs = %v, want one missing-metric failure per benchmark", errs)
	}
	if !strings.Contains(errs[0], "reports none") || !strings.Contains(errs[1], "reports none") {
		t.Fatalf("errs = %v, want missing-metric messages", errs)
	}
	// A baseline without the metric keeps not requiring it.
	if errs := checkRegression(map[string]Result{"BenchmarkC": {NsPerOp: 5}},
		map[string]Result{"BenchmarkC": {NsPerOp: 5}}); len(errs) != 0 {
		t.Fatalf("metric-free benchmark failed: %v", errs)
	}
}

func TestCheckTrajectory(t *testing.T) {
	good := map[string]Result{
		e2eHTTPJSON: {InvokesPerSec: 10000, AllocsPerOp: 100},
		e2eBinary:   {InvokesPerSec: 30000, AllocsPerOp: 20},
	}
	if errs := checkTrajectory(good); len(errs) != 0 {
		t.Fatalf("committed trajectory rejected: %v", errs)
	}
	slow := map[string]Result{
		e2eHTTPJSON: {InvokesPerSec: 10000, AllocsPerOp: 100},
		e2eBinary:   {InvokesPerSec: 15000, AllocsPerOp: 20},
	}
	if errs := checkTrajectory(slow); len(errs) != 1 {
		t.Fatalf("sub-2x speedup passed: %v", errs)
	}
	if errs := checkTrajectory(map[string]Result{e2eHTTPJSON: {InvokesPerSec: 1}}); len(errs) == 0 {
		t.Fatal("missing e2e pair passed")
	}
}
