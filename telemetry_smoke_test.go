package confbench_test

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"confbench"
	"confbench/internal/obs"
)

// This file is the end-to-end telemetry smoke behind `make
// telemetry-smoke`: federation over multiple host agents, the pinned
// windowed invoke rate, and the flight-recorder postmortem when an
// invoke exhausts its retry budget.

// bootTelemetry boots a two-host SEV cluster on a dedicated registry
// and runs n invokes.
func bootTelemetry(t *testing.T, seed int64, n int, transport string) *confbench.Cluster {
	t.Helper()
	c, err := confbench.New(
		confbench.WithTEEs(confbench.KindSEV),
		confbench.WithSeed(seed),
		confbench.WithGuestMemoryMB(8),
		confbench.WithObsRegistry(confbench.NewObsRegistry()),
		confbench.WithHostsPerTEE(2),
		confbench.WithTransport(transport),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	ctx := context.Background()
	client := c.Client()
	if err := client.Upload(ctx, confbench.Function{Name: "telemetry", Language: "go", Workload: "cpustress"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := client.Invoke(ctx, confbench.InvokeRequest{
			Function: "telemetry", Secure: i%2 == 0, TEE: confbench.KindSEV, Scale: 1,
		}); err != nil {
			t.Fatalf("invoke %d: %v", i, err)
		}
	}
	return c
}

// TestTelemetryClusterFederation hits GET /v1/obs/cluster on a
// two-host deployment and asserts the merged snapshot carries metrics
// from at least two distinct scraped host agents, each under its own
// host label.
func TestTelemetryClusterFederation(t *testing.T) {
	for _, transport := range smokeTransports {
		t.Run(transport, func(t *testing.T) { telemetryClusterFederation(t, transport) })
	}
}

func telemetryClusterFederation(t *testing.T, transport string) {
	c := bootTelemetry(t, 7, 10, transport)
	cs, err := c.Client().ObsCluster(context.Background(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.ScrapeErrors) != 0 {
		t.Fatalf("scrape errors against live hosts: %v", cs.ScrapeErrors)
	}
	// The sweep covers the gateway's own registry plus both SEV hosts.
	agents := make(map[string]bool)
	for _, h := range cs.Hosts {
		if h != "gateway" {
			agents[h] = true
		}
	}
	if len(agents) < 2 {
		t.Fatalf("scraped %d host agents (%v), want >= 2", len(agents), cs.Hosts)
	}
	// Each scraped agent's relay counters appear under its host label.
	labeled := make(map[string]bool)
	for id := range cs.Merged.Counters {
		family, labels := obs.ParseMetricID(id)
		if family == "confbench_relay_accepted_total" && agents[labels["host"]] {
			labeled[labels["host"]] = true
		}
	}
	if len(labeled) < 2 {
		t.Fatalf("relay counters carry host labels for %v, want both agents %v", labeled, agents)
	}
	// The flight recorder kept an event per invoke, exposed over the
	// events endpoint with the histogram-exemplar trace IDs.
	evs, err := c.Client().ObsEvents(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 10 {
		t.Fatalf("flight recorder holds %d events, want 10", len(evs))
	}
	for _, ev := range evs {
		if !strings.HasPrefix(ev.Trace, "inv-") {
			t.Fatalf("event trace %q, want inv- prefix", ev.Trace)
		}
	}
}

// telemetryRate boots a fresh cluster from seed, runs the same invoke
// schedule, and derives the windowed invoke rate from federation
// sweeps driven at synthetic instants — the full pipeline with every
// wall-clock input pinned.
func telemetryRate(t *testing.T, seed int64, transport string) float64 {
	t.Helper()
	c := bootTelemetry(t, seed, 0, transport)
	ctx := context.Background()
	client := c.Client()
	gw := c.Gateway()
	t0 := time.Unix(1_700_000_000, 0)
	// Interleave bursts of 3 invokes with scrapes one synthetic second
	// apart: the counter reads 3, 6, 9, 12 at the four samples.
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			if _, err := client.Invoke(ctx, confbench.InvokeRequest{
				Function: "telemetry", Secure: j%2 == 0, TEE: confbench.KindSEV, Scale: 1,
			}); err != nil {
				t.Fatal(err)
			}
		}
		gw.ScrapeOnce(ctx, t0.Add(time.Duration(i)*time.Second))
	}
	s := gw.Series().Get(obs.RateInvokesPerSec)
	if s == nil {
		t.Fatal("invoke-rate series missing")
	}
	return s.Rate(4)
}

// TestTelemetryWindowedRatePinned runs the telemetry pipeline twice
// from the same seed and demands the windowed invoke rate come out
// bit-identical — scrapes at synthetic instants leave no wall-clock
// residue in the series.
func TestTelemetryWindowedRatePinned(t *testing.T) {
	for _, transport := range smokeTransports {
		t.Run(transport, func(t *testing.T) {
			r1 := telemetryRate(t, 42, transport)
			r2 := telemetryRate(t, 42, transport)
			if r1 != r2 {
				t.Fatalf("same seed produced different windowed rates: %v vs %v", r1, r2)
			}
			// (12-3) invokes over 3 synthetic seconds: exactly 3/s.
			if r1 != 3 {
				t.Fatalf("windowed rate = %v, want exactly 3", r1)
			}
		})
	}
}

// TestTelemetryPostmortemOnExhaustedRetry arms a whole-fleet exec
// fault so every dispatch attempt fails, fires one invoke, and
// asserts the flight recorder flushed a postmortem naming the
// invoke's trace ID and the fault points that killed it.
func TestTelemetryPostmortemOnExhaustedRetry(t *testing.T) {
	for _, transport := range smokeTransports {
		t.Run(transport, func(t *testing.T) { telemetryPostmortem(t, transport) })
	}
}

func telemetryPostmortem(t *testing.T, transport string) {
	plane := confbench.NewFaultPlane(42)
	specs, err := confbench.ParseFaultSpecs("hostagent.exec:error:1.0")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range specs {
		if err := plane.Register(s); err != nil {
			t.Fatal(err)
		}
	}
	c, err := confbench.New(
		confbench.WithTEEs(confbench.KindSEV),
		confbench.WithSeed(42),
		confbench.WithGuestMemoryMB(8),
		confbench.WithObsRegistry(confbench.NewObsRegistry()),
		confbench.WithFaultPlane(plane),
		// Two hosts: the retry onto the sibling burns the whole budget
		// (the fleet-wide fault kills it too), which is what triggers
		// the postmortem flush.
		confbench.WithHostsPerTEE(2),
		confbench.WithTransport(transport),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var post bytes.Buffer
	c.Gateway().SetPostmortemWriter(&post)

	ctx := context.Background()
	client := c.Client()
	if err := client.Upload(ctx, confbench.Function{Name: "doomed", Language: "go", Workload: "cpustress"}); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Invoke(ctx, confbench.InvokeRequest{
		Function: "doomed", Secure: true, TEE: confbench.KindSEV, Scale: 1,
	}); err == nil {
		t.Fatal("invoke succeeded despite a 1.0 exec error spec")
	}

	evs, err := client.ObsEvents(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// The api.Client retries retryable failures, so one logical invoke
	// may record several gateway dispatches — every one exhausted.
	if len(evs) == 0 {
		t.Fatal("flight recorder empty after a failed invoke")
	}
	ev := evs[len(evs)-1]
	if ev.Error == "" || ev.Code == "" {
		t.Fatalf("failed invoke recorded without error/code: %+v", ev)
	}
	if ev.Retries == 0 {
		t.Fatalf("exhausted invoke recorded zero retries: %+v", ev)
	}
	found := false
	for _, fp := range ev.FaultPoints {
		found = found || fp == "hostagent.exec:error"
	}
	if !found {
		t.Fatalf("event fault points %v missing hostagent.exec:error", ev.FaultPoints)
	}

	out := post.String()
	if !strings.Contains(out, "confbench postmortem:") {
		t.Fatalf("no postmortem flushed; writer holds: %q", out)
	}
	if !strings.Contains(out, ev.Trace) {
		t.Fatalf("postmortem %q does not name the failing trace %s", out, ev.Trace)
	}
	if !strings.Contains(out, "hostagent.exec:error") {
		t.Fatalf("postmortem %q does not name the injected fault point", out)
	}
}
