// Package confbench is a tool for easy evaluation of confidential
// virtual machines, reproducing the system of the DSN 2025 paper
// "ConfBench: A Tool for Easy Evaluation of Confidential Virtual
// Machines".
//
// ConfBench executes Function-as-a-Service and classic workloads in
// confidential VMs backed by Intel TDX, AMD SEV-SNP, and (simulated)
// ARM CCA, side by side with normal VMs on the same hosts, and
// collects perf-style metrics so that secure/normal overhead ratios
// can be studied per workload, per language runtime, and per TEE.
//
// Because no TEE hardware is available in this environment, the three
// platforms are high-fidelity simulations (see internal/tee/...): the
// TDX module with SEAM transitions and TDREPORTs, the SEV-SNP RMP and
// AMD-SP with a real ECDSA VCEK chain, and the CCA RMM inside an FVP
// simulator model. Workloads perform real computation and meter their
// resource usage; machine profiles and TEE cost models convert that
// usage into virtual execution time, deterministically.
//
// The top-level entry point is Cluster, which boots the full paper
// architecture in-process: one host agent per TEE (each with a
// confidential and a normal VM reachable through socat-style port
// relays), the REST gateway with its TEE pools, and the attestation
// infrastructure (a DCAP quoting enclave plus a simulated Intel PCS
// for TDX, and the AMD-SP certificate chain for SEV-SNP).
//
//	cluster, err := confbench.New()
//	defer cluster.Close()
//	client := cluster.Client()
//	client.Upload(ctx, confbench.Function{Name: "hot", Language: "python", Workload: "cpustress"})
//	resp, err := client.Invoke(ctx, confbench.InvokeRequest{Function: "hot", Secure: true, TEE: confbench.KindTDX})
package confbench

import (
	"time"

	"confbench/internal/core"
	"confbench/internal/faultplane"
	"confbench/internal/fronttier"
	"confbench/internal/obs"
	"confbench/internal/tee"
)

// ClusterConfig parameterizes an in-process ConfBench deployment. See
// internal/core for the orchestration it drives.
type ClusterConfig = core.ClusterConfig

// Cluster is a running in-process ConfBench deployment: per-TEE host
// agents with their secure/normal VM pairs, the REST gateway with its
// TEE pools, and the attestation infrastructure.
type Cluster = core.Cluster

// Option configures a Cluster built by New.
type Option func(*ClusterConfig)

// WithTEEs selects the platforms to deploy (default: TDX, SEV-SNP,
// CCA — the paper's full test bed).
func WithTEEs(kinds ...tee.Kind) Option {
	return func(c *ClusterConfig) { c.TEEs = kinds }
}

// WithSeed sets the seed behind every deterministic noise source.
func WithSeed(seed int64) Option {
	return func(c *ClusterConfig) { c.Seed = seed }
}

// WithLeastLoaded switches pool load balancing from round-robin to
// least-loaded.
func WithLeastLoaded() Option {
	return func(c *ClusterConfig) { c.LeastLoaded = true }
}

// WithTDXFirmware overrides the TDX module version (the buggy
// pre-upgrade firmware reproduces the paper's 10× anomaly).
func WithTDXFirmware(version string) Option {
	return func(c *ClusterConfig) { c.TDXFirmware = version }
}

// WithGuestMemoryMB sizes the measured boot image of each guest.
func WithGuestMemoryMB(mb int) Option {
	return func(c *ClusterConfig) { c.GuestMemoryMB = mb }
}

// WithWorkers sets the default concurrency for benchmark harnesses
// built on the cluster (0 = serial, the deterministic bit-identical
// path).
func WithWorkers(n int) Option {
	return func(c *ClusterConfig) { c.Workers = n }
}

// WithObsRegistry points the whole deployment — gateway, pools, host
// agents, TEE backends — at a dedicated metrics registry instead of
// the process-wide default. Pair it with NewObsRegistry for isolated
// measurements.
func WithObsRegistry(r *ObsRegistry) Option {
	return func(c *ClusterConfig) { c.Obs = r }
}

// WithFaultPlane threads a deterministic fault-injection plane through
// every layer of the deployment — relays, host agents, and TEE guests.
// Build one with NewFaultPlane and register FaultSpecs on it (or parse
// a chaos spec string with ParseFaultSpecs).
func WithFaultPlane(p *FaultPlane) Option {
	return func(c *ClusterConfig) { c.Faults = p }
}

// WithHostsPerTEE deploys n host agents per platform, all serving the
// same pool. Chaos runs use ≥2 so a faulted host leaves a healthy
// alternate in rotation.
func WithHostsPerTEE(n int) Option {
	return func(c *ClusterConfig) { c.HostsPerTEE = n }
}

// WithObsScrapeInterval enables the gateway's periodic federation
// sweeps: every interval it scrapes each host agent's registry over
// the relay hop, merges the snapshots under host labels, and feeds
// the time series behind windowed rate queries. Without it the sweep
// runs on demand, per GET /v1/obs/cluster request.
func WithObsScrapeInterval(d time.Duration) Option {
	return func(c *ClusterConfig) { c.ObsScrapeInterval = d }
}

// WithWarmPool serves every host's secure VM out of a prewarmed guest
// pool with high watermark n: guests are restored from cached snapshot
// images instead of cold-booted, and a background goroutine refills
// the pool as guests are taken. Enables the shared snapshot cache
// (sized by WithSnapshotCacheMB, default 256 MiB).
func WithWarmPool(n int) Option {
	return func(c *ClusterConfig) { c.WarmPool = n }
}

// WithSnapshotCacheMB sets the byte budget of the cluster-shared
// snapshot image cache used by warm pools.
func WithSnapshotCacheMB(mb int) Option {
	return func(c *ClusterConfig) { c.SnapshotCacheMB = mb }
}

// WithBreakerThreshold tunes the pools' per-endpoint circuit breakers:
// threshold consecutive retryable failures trip an endpoint out of
// rotation; after cooldown one half-open probe is allowed through.
// Zero values keep the gateway defaults.
func WithBreakerThreshold(threshold int, cooldown time.Duration) Option {
	return func(c *ClusterConfig) {
		c.BreakerThreshold = threshold
		c.BreakerCooldown = cooldown
	}
}

// WithShards deploys n gateway shards behind a front tier that
// consistent-hashes each invoke (function × tenant) across them on a
// bounded-load hash ring, fails over along the ring's successor walk
// when a shard's breaker opens, and serves the async invoke path
// (POST /v1/invoke/async + GET /v1/invoke/{id}). n <= 1 keeps the
// single-gateway deployment.
func WithShards(n int) Option {
	return func(c *ClusterConfig) { c.Shards = n }
}

// WithTenantQuota sets one tenant's front-tier admission limits: a
// token-bucket invoke rate and/or an in-flight cap. Over-quota
// requests shed with HTTP 503 and a Retry-After the client honors.
// Tenants without quotas are unlimited. Only meaningful with
// WithShards(n > 1).
func WithTenantQuota(tenant string, limits TenantLimits) Option {
	return func(c *ClusterConfig) {
		if c.TenantQuotas == nil {
			c.TenantQuotas = make(map[string]fronttier.TenantLimits)
		}
		c.TenantQuotas[tenant] = limits
	}
}

// WithTransport selects the carrier for every hop of the invoke
// pipeline — client→front door, tier→shard, gateway→guest. "httpjson"
// (the default) is one JSON-over-HTTP exchange per call; "binary"
// keeps a persistent multiplexed connection per peer pair carrying
// length-prefixed frames with out-of-order completion by correlation
// ID. Servers accept both carriers regardless, so mixed deployments
// interoperate.
func WithTransport(name string) Option {
	return func(c *ClusterConfig) { c.Transport = name }
}

// WithDurableDir roots the deployment's persistence plane at dir: each
// gateway (or shard, under its own subdirectory) spills federation
// sweeps and flight-recorder events to an append-only checksummed log
// and replays them on start, so windowed /v1/obs/cluster rates and
// /v1/obs/events span process restarts. Without it telemetry lives
// only in memory and dies with the process.
func WithDurableDir(dir string) Option {
	return func(c *ClusterConfig) { c.DurableDir = dir }
}

// WithSLOSpec declares service-level objectives for the deployment,
// in the slo package's comma-separated spec grammar — e.g.
// "invoke-availability:availability:success>=99.9%,tdx-latency:latency:p99<250ms:tee=tdx".
// The federating layer (front tier when sharded, gateway otherwise)
// evaluates them with multi-window burn-rate alerting on every
// federation sweep and serves GET /v1/obs/slo and /v1/obs/alerts.
func WithSLOSpec(spec string) Option {
	return func(c *ClusterConfig) { c.SLOSpec = spec }
}

// New boots a deployment configured by opts. Close it when done.
func New(opts ...Option) (*Cluster, error) {
	var cfg ClusterConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	return core.NewCluster(cfg)
}

// NewCluster boots a deployment from an explicit config.
//
// Deprecated: use New, which accepts functional options.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	return core.NewCluster(cfg)
}

// ObsRegistry is the observability-plane metrics registry (counters,
// gauges, latency histograms). See internal/obs.
type ObsRegistry = obs.Registry

// NewObsRegistry returns an empty metrics registry, for deployments
// that want isolation from the process-wide default.
func NewObsRegistry() *ObsRegistry { return obs.New() }

// FaultPlane is the deterministic, seedable fault-injection plane.
// See internal/faultplane.
type FaultPlane = faultplane.Plane

// FaultSpec describes one fault to inject: where (injection point,
// TEE/host filters), what (error, latency, drop, crash, slow I/O),
// and how often (seeded probability).
type FaultSpec = faultplane.Spec

// NewFaultPlane returns an empty fault plane whose probability draws
// derive from seed — the same seed reproduces the identical injected
// fault sequence.
func NewFaultPlane(seed int64) *FaultPlane { return faultplane.New(seed) }

// ParseFaultSpecs parses a comma-separated chaos spec string, e.g.
// "hostagent.exec:error:1.0:tee=snp,relay.accept:latency:0.25".
func ParseFaultSpecs(s string) ([]FaultSpec, error) { return faultplane.ParseSpecs(s) }
