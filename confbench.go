// Package confbench is a tool for easy evaluation of confidential
// virtual machines, reproducing the system of the DSN 2025 paper
// "ConfBench: A Tool for Easy Evaluation of Confidential Virtual
// Machines".
//
// ConfBench executes Function-as-a-Service and classic workloads in
// confidential VMs backed by Intel TDX, AMD SEV-SNP, and (simulated)
// ARM CCA, side by side with normal VMs on the same hosts, and
// collects perf-style metrics so that secure/normal overhead ratios
// can be studied per workload, per language runtime, and per TEE.
//
// Because no TEE hardware is available in this environment, the three
// platforms are high-fidelity simulations (see internal/tee/...): the
// TDX module with SEAM transitions and TDREPORTs, the SEV-SNP RMP and
// AMD-SP with a real ECDSA VCEK chain, and the CCA RMM inside an FVP
// simulator model. Workloads perform real computation and meter their
// resource usage; machine profiles and TEE cost models convert that
// usage into virtual execution time, deterministically.
//
// The top-level entry point is Cluster, which boots the full paper
// architecture in-process: one host agent per TEE (each with a
// confidential and a normal VM reachable through socat-style port
// relays), the REST gateway with its TEE pools, and the attestation
// infrastructure (a DCAP quoting enclave plus a simulated Intel PCS
// for TDX, and the AMD-SP certificate chain for SEV-SNP).
//
//	cluster, err := confbench.NewCluster(confbench.ClusterConfig{})
//	defer cluster.Close()
//	client := cluster.Client()
//	client.Upload(faas.Function{Name: "hot", Language: "python", Workload: "cpustress"})
//	resp, err := client.Invoke(api.InvokeRequest{Function: "hot", Secure: true, TEE: tee.KindTDX})
package confbench

import "confbench/internal/core"

// ClusterConfig parameterizes an in-process ConfBench deployment. See
// internal/core for the orchestration it drives.
type ClusterConfig = core.ClusterConfig

// Cluster is a running in-process ConfBench deployment: per-TEE host
// agents with their secure/normal VM pairs, the REST gateway with its
// TEE pools, and the attestation infrastructure.
type Cluster = core.Cluster

// NewCluster boots a deployment. Close it when done.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	return core.NewCluster(cfg)
}
