// Attestation walkthrough: produce and verify attestation evidence for
// the TDX and SEV-SNP confidential VMs, showing the two flows the
// paper benchmarks in Fig. 5 — the DCAP quote with network-fetched
// collateral versus the AMD-SP report with a hardware-local chain —
// and a tamper check proving the verifiers actually verify.
//
//	go run ./examples/attestation
package main

import (
	"context"
	"crypto/sha256"
	"fmt"
	"log"

	"confbench"
	"confbench/internal/attest"
	"confbench/internal/tee"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	cluster, err := confbench.NewCluster(confbench.ClusterConfig{
		TEEs: []tee.Kind{tee.KindTDX, tee.KindSEV}, GuestMemoryMB: 16,
	})
	if err != nil {
		return err
	}
	defer cluster.Close()

	// A 64-byte verifier challenge, bound into the evidence.
	nonce := make([]byte, attest.NonceSize)
	h := sha256.Sum256([]byte("confbench attestation example"))
	copy(nonce, h[:])
	copy(nonce[32:], h[:])

	fmt.Println("== Intel TDX: DCAP quote + PCS-backed verification ==")
	ta, tv, err := cluster.TDXAttestation()
	if err != nil {
		return err
	}
	if err := roundTrip(ctx, ta, tv, nonce); err != nil {
		return err
	}
	fmt.Printf("(the check phase fetched collateral from the simulated Intel PCS: %d HTTP requests so far)\n\n",
		cluster.PCS().Requests())

	fmt.Println("== AMD SEV-SNP: AMD-SP report + VCEK/ASK/ARK chain ==")
	sa, sv, err := cluster.SEVAttestation()
	if err != nil {
		return err
	}
	if err := roundTrip(ctx, sa, sv, nonce); err != nil {
		return err
	}

	fmt.Println("== Tamper check: a bit-flipped nonce must be rejected ==")
	ev, _, err := sa.Attest(ctx, nonce)
	if err != nil {
		return err
	}
	badNonce := append([]byte(nil), nonce...)
	badNonce[0] ^= 0xff
	if _, _, err := sv.Verify(ctx, ev, badNonce); err != nil {
		fmt.Printf("verification correctly failed: %v\n", err)
	} else {
		return fmt.Errorf("tampered nonce was accepted")
	}
	return nil
}

func roundTrip(ctx context.Context, a attest.Attester, v attest.Verifier, nonce []byte) error {
	ev, attestTiming, err := a.Attest(ctx, nonce)
	if err != nil {
		return fmt.Errorf("attest: %w", err)
	}
	verdict, checkTiming, err := v.Verify(ctx, ev, nonce)
	if err != nil {
		return fmt.Errorf("check: %w", err)
	}
	fmt.Printf("platform:    %s\n", verdict.Platform)
	fmt.Printf("measurement: %.32s…\n", verdict.Measurement)
	fmt.Printf("tcb status:  %s\n", verdict.TCBStatus)
	for _, d := range verdict.Details {
		fmt.Printf("  - %s\n", d)
	}
	fmt.Printf("attest: %v   check: %v\n\n", attestTiming.Total(), checkTiming.Total())
	return nil
}
