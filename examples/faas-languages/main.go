// FaaS language comparison: run the paper's six named functions
// (cpustress, memstress, iostress, logging, factors, filesystem) in
// all seven language runtimes on one TEE, reproducing a slice of the
// Fig. 6 heatmap and showing how runtime weight shapes TEE overhead.
//
//	go run ./examples/faas-languages [-tee tdx|sev-snp|cca]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"confbench"
	"confbench/internal/bench"
	"confbench/internal/tee"
)

func main() {
	teeFlag := flag.String("tee", "tdx", "platform to compare on")
	trials := flag.Int("trials", 5, "trials per cell")
	flag.Parse()
	if err := run(tee.Kind(*teeFlag), *trials); err != nil {
		log.Fatal(err)
	}
}

func run(kind tee.Kind, trials int) error {
	ctx := context.Background()
	cluster, err := confbench.NewCluster(confbench.ClusterConfig{
		TEEs: []tee.Kind{kind}, GuestMemoryMB: 16,
	})
	if err != nil {
		return err
	}
	defer cluster.Close()

	pair, err := cluster.Pair(kind)
	if err != nil {
		return err
	}
	res, err := bench.FaaS(ctx, pair, cluster.Catalog(), bench.FaaSOptions{
		Options: bench.Options{Trials: trials, ScaleDivisor: 4},
		Workloads: []string{
			"cpustress", "memstress", "iostress", "logging", "factors", "filesystem",
		},
	})
	if err != nil {
		return err
	}
	fmt.Print(bench.RenderHeatmap(res))

	// The paper's observation: heavyweight runtimes (Python, Node.js,
	// Ruby) apparently impose a heavier burden on TEE operation than
	// lightweight ones (Lua, LuaJIT, Go) — their boxed allocation and
	// GC traffic stress memory integrity checking. The effect lives in
	// the compute-bound cells (I/O cells are dominated by the shared
	// storage path and look alike across runtimes), so compare those.
	fmt.Println("\nper-runtime mean overhead over compute-bound cells:")
	for j, lang := range res.Languages {
		var sum float64
		var n int
		for i, w := range res.Workloads {
			if w == "cpustress" || w == "factors" {
				sum += res.Cells[i][j].Ratio
				n++
			}
		}
		fmt.Printf("  %-8s %.3f\n", lang, sum/float64(n))
	}
	return nil
}
