// Extensions showcase: the two capabilities built on top of the
// paper's design —
//
//  1. confidential containers (§V/§VI) as an additional execution-unit
//     type, composed over the TDX backend, reproducing the
//     "unpractical" I/O overheads the paper references; and
//
//  2. attested secure channels (§II): an ECDH key exchange bound into
//     SEV-SNP attestation evidence, ending in an AES-GCM-protected
//     message exchange between the confidential VM and a relying party.
//
//     go run ./examples/extensions
package main

import (
	"context"
	"crypto/rand"
	"fmt"
	"log"

	"confbench"
	"confbench/internal/attest"
	"confbench/internal/faas"
	"confbench/internal/tee"
	"confbench/internal/tee/container"
	"confbench/internal/vm"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cluster, err := confbench.NewCluster(confbench.ClusterConfig{
		TEEs: []tee.Kind{tee.KindTDX, tee.KindSEV}, GuestMemoryMB: 16,
	})
	if err != nil {
		return err
	}
	defer cluster.Close()

	if err := containersDemo(cluster); err != nil {
		return err
	}
	return attestedChannelDemo(cluster)
}

func containersDemo(cluster *confbench.Cluster) error {
	ctx := context.Background()
	fmt.Println("== Confidential containers (pluggable execution unit) ==")
	inner, err := cluster.Backend(tee.KindTDX)
	if err != nil {
		return err
	}
	ccBackend, err := container.NewBackend(inner, container.Options{})
	if err != nil {
		return err
	}
	ccPair, err := vm.NewPair(ccBackend, tee.GuestConfig{MemoryMB: 16}, cluster.Catalog())
	if err != nil {
		return err
	}
	defer ccPair.Stop()
	vmPair, err := cluster.Pair(tee.KindTDX)
	if err != nil {
		return err
	}

	fn := faas.Function{Name: "io", Language: "go", Workload: "iostress"}
	ccRes, err := ccPair.Secure.InvokeFunction(ctx, fn, 4)
	if err != nil {
		return err
	}
	vmRes, err := vmPair.Secure.InvokeFunction(ctx, fn, 4)
	if err != nil {
		return err
	}
	fmt.Printf("iostress in confidential VM:        %v\n", vmRes.Wall)
	fmt.Printf("iostress in confidential container: %v (%.1fx — the §V 'unpractical' overhead)\n\n",
		ccRes.Wall, ccRes.Wall.Seconds()/vmRes.Wall.Seconds())
	return nil
}

func attestedChannelDemo(cluster *confbench.Cluster) error {
	ctx := context.Background()
	fmt.Println("== Attested secure channel (SEV-SNP) ==")
	attester, verifier, err := cluster.SEVAttestation()
	if err != nil {
		return err
	}

	// Relying party picks a challenge; the guest binds a fresh ECDH
	// key into its attestation evidence.
	challenge := make([]byte, attest.ChallengeSize)
	if _, err := rand.Read(challenge); err != nil {
		return err
	}
	guest, offer, err := attest.NewGuestSession(ctx, attester, challenge)
	if err != nil {
		return err
	}
	fmt.Printf("guest offered %d bytes of evidence binding its ECDH key\n", len(offer.Evidence.Data))

	relying, relyingPub, verdict, err := attest.AcceptSession(ctx, verifier, offer, challenge)
	if err != nil {
		return err
	}
	fmt.Printf("relying party verified the guest: measurement %.24s…, TCB %s\n",
		verdict.Measurement, verdict.TCBStatus)

	guestSession, err := guest.Complete(relyingPub)
	if err != nil {
		return err
	}
	sealed, err := guestSession.Seal([]byte("secret result computed inside the confidential VM"))
	if err != nil {
		return err
	}
	opened, err := relying.Open(sealed)
	if err != nil {
		return err
	}
	fmt.Printf("sealed %d bytes crossed the channel; relying party read: %q\n", len(sealed), opened)
	return nil
}
