// Classic workloads: run the paper's three non-FaaS experiments —
// confidential ML inference (MobileNet-style), the confidential DBMS
// stress test (speedtest1-style), and the UnixBench OS suite — on
// every deployed TEE, printing the Fig. 3 / §IV-C / Fig. 4 views.
//
//	go run ./examples/classic-workloads [-quick]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"confbench"
	"confbench/internal/bench"
)

func main() {
	quick := flag.Bool("quick", true, "CI-sized run")
	flag.Parse()
	if err := run(*quick); err != nil {
		log.Fatal(err)
	}
}

func run(quick bool) error {
	ctx := context.Background()
	cluster, err := confbench.NewCluster(confbench.ClusterConfig{GuestMemoryMB: 16})
	if err != nil {
		return err
	}
	defer cluster.Close()

	images, dbSize, ubScale := 40, 100, 1.0
	if quick {
		images, dbSize, ubScale = 8, 20, 0.2
	}

	var mls []bench.MLResult
	var dbs []bench.DBMSResult
	var ubs []bench.UnixBenchResult
	for _, kind := range cluster.Kinds() {
		pair, err := cluster.Pair(kind)
		if err != nil {
			return err
		}
		ml, err := bench.ML(ctx, pair, bench.MLOptions{Images: images})
		if err != nil {
			return fmt.Errorf("ml on %s: %w", kind, err)
		}
		mls = append(mls, ml)

		db, err := bench.DBMS(ctx, pair, bench.DBMSOptions{Size: dbSize})
		if err != nil {
			return fmt.Errorf("dbms on %s: %w", kind, err)
		}
		dbs = append(dbs, db)

		ub, err := bench.UnixBench(ctx, pair, bench.UnixBenchOptions{Scale: ubScale})
		if err != nil {
			return fmt.Errorf("unixbench on %s: %w", kind, err)
		}
		ubs = append(ubs, ub)
	}

	fmt.Println(bench.RenderML(mls))
	fmt.Println(bench.RenderDBMS(dbs))
	fmt.Println(bench.RenderUnixBench(ubs))

	fmt.Println("headline (paper §IV-C):")
	for i, kind := range cluster.Kinds() {
		fmt.Printf("  %-8s ML ratio %.2f | DBMS avg %.2f (max %.2f) | UnixBench %.2f\n",
			kind, mls[i].Times.Ratio(), dbs[i].AvgRatio, dbs[i].MaxRatio, ubs[i].TimeRatio)
	}
	return nil
}
