// Quickstart: boot a full ConfBench deployment in-process, upload one
// function, and run it in a confidential and a normal VM on each TEE.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"confbench"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	// Boot the paper's full test bed: a TDX host, an SEV-SNP host,
	// and a (simulated-FVP) CCA host, each with a confidential and a
	// normal VM, fronted by the REST gateway.
	cluster, err := confbench.New(confbench.WithGuestMemoryMB(16))
	if err != nil {
		return err
	}
	defer cluster.Close()
	fmt.Printf("gateway up at %s, platforms: %v\n\n", cluster.GatewayURL(), cluster.Kinds())

	// Upload a function: a Python implementation of the cpustress
	// workload (intensive trigonometric and arithmetic operations).
	client := cluster.Client()
	fn := confbench.Function{
		Name:     "hot-loop",
		Language: "python",
		Workload: "cpustress",
		Source:   []byte("# def handler(scale): ... trigonometric loop ..."),
	}
	if err := client.Upload(ctx, fn); err != nil {
		return err
	}
	fmt.Printf("uploaded %q (%s)\n\n", fn.Name, fn.Language)

	// Run it on every platform, secure and normal, and report the
	// overhead ratio with the piggybacked perf metrics.
	for _, kind := range cluster.Kinds() {
		secure, err := client.Invoke(ctx, confbench.InvokeRequest{
			Function: "hot-loop", Secure: true, TEE: kind, Scale: 100_000,
		})
		if err != nil {
			return fmt.Errorf("secure invoke on %s: %w", kind, err)
		}
		normal, err := client.Invoke(ctx, confbench.InvokeRequest{
			Function: "hot-loop", Secure: false, TEE: kind, Scale: 100_000,
		})
		if err != nil {
			return fmt.Errorf("normal invoke on %s: %w", kind, err)
		}
		ratio := float64(secure.WallNs) / float64(normal.WallNs)
		fmt.Printf("[%s]\n", kind)
		fmt.Printf("  confidential VM: %-12v (monitor %s, %d TEE exits)\n",
			secure.Wall(), secure.Perf.Monitor, secure.Perf.TEEExits)
		fmt.Printf("  normal VM:       %-12v\n", normal.Wall())
		fmt.Printf("  overhead ratio:  %.3f\n\n", ratio)
	}
	return nil
}
