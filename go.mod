module confbench

go 1.22
